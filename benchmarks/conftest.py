"""Shared fixtures for the benchmark harness.

The benchmarks reproduce the paper's tables and figures on a paper-scale
dataset: the 11-PoP Abilene topology with one full week of 5-minute bins
(n = 2016, p = 121) and a randomized anomaly schedule covering every
Table 2 anomaly type.  The paper uses four weeks; one week keeps each
benchmark in the tens-of-seconds range while preserving every structural
claim (the four-week run is a matter of looping the same harness).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.datasets import DatasetConfig, generate_abilene_dataset

#: Seed used by every benchmark so the reported numbers are reproducible.
BENCHMARK_SEED = 2004

#: The committed perf trajectory (see ``tools/bench_trajectory.py``).
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_streaming.json"

#: Safety margin applied to a measured speedup before it becomes a floor.
FLOOR_MARGIN = 0.8


def trajectory_floor(benchmark_name: str, metric: str, default: float) -> float:
    """Speedup floor self-baselined from the committed trajectory.

    When the committed ``BENCH_streaming.json`` record for *benchmark_name*
    was measured with its gate **enforced** (a real multi-core box, no
    ``*_NO_GATE`` escape hatch), the floor is the measured ratio scaled by
    :data:`FLOOR_MARGIN` — so the gate tightens automatically once a
    trustworthy measurement is committed, instead of trusting a hand-picked
    constant forever.  Otherwise (no trajectory, record missing, or the
    committed number came from an un-baselined machine) *default* applies.
    The floor never drops below *default*.
    """
    try:
        record = json.loads(TRAJECTORY_PATH.read_text())[
            "benchmarks"][benchmark_name]
    except (OSError, KeyError, ValueError):
        return default
    gate = record.get("gate")
    measured = record.get(metric)
    if (isinstance(gate, dict) and gate.get("enforced")
            and isinstance(measured, (int, float))):
        return max(default, round(FLOOR_MARGIN * float(measured), 3))
    return default


def artifact_path(filename: str) -> Path:
    """Where a benchmark writes its JSON artifact.

    ``benchmarks/artifacts/<filename>`` by default, overridable with
    ``$BENCH_ARTIFACT_DIR``; ``tools/bench_trajectory.py`` consolidates
    everything in that directory into the repo-root trajectory.
    """
    directory = Path(os.environ.get("BENCH_ARTIFACT_DIR",
                                    Path(__file__).parent / "artifacts"))
    directory.mkdir(parents=True, exist_ok=True)
    return directory / filename


def timed(function, *args):
    """``(elapsed_seconds, result)`` of one call."""
    start = time.perf_counter()
    result = function(*args)
    return time.perf_counter() - start, result


def best_of(n, function, *args):
    """``(min elapsed over n calls, last result)`` — scheduler-noise guard."""
    times, result = [], None
    for _ in range(n):
        elapsed, result = timed(function, *args)
        times.append(elapsed)
    return min(times), result


@pytest.fixture(scope="session")
def week_dataset():
    """One week of synthetic Abilene traffic with injected anomalies."""
    return generate_abilene_dataset(DatasetConfig(weeks=1.0), seed=BENCHMARK_SEED)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive (seconds to minutes), so
    a single round is both sufficient and necessary to keep the harness
    usable; pytest-benchmark still records the wall-clock time.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
