"""Shared fixtures for the benchmark harness.

The benchmarks reproduce the paper's tables and figures on a paper-scale
dataset: the 11-PoP Abilene topology with one full week of 5-minute bins
(n = 2016, p = 121) and a randomized anomaly schedule covering every
Table 2 anomaly type.  The paper uses four weeks; one week keeps each
benchmark in the tens-of-seconds range while preserving every structural
claim (the four-week run is a matter of looping the same harness).
"""

from __future__ import annotations

import pytest

from repro.datasets import DatasetConfig, generate_abilene_dataset

#: Seed used by every benchmark so the reported numbers are reproducible.
BENCHMARK_SEED = 2004


@pytest.fixture(scope="session")
def week_dataset():
    """One week of synthetic Abilene traffic with injected anomalies."""
    return generate_abilene_dataset(DatasetConfig(weeks=1.0), seed=BENCHMARK_SEED)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive (seconds to minutes), so
    a single round is both sufficient and necessary to keep the harness
    usable; pytest-benchmark still records the wall-clock time.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
