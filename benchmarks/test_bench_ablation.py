"""Benchmarks E6/E7 — ablations of the subspace method's design choices.

E6 measures the contribution of the T² test on the normal subspace (the
paper's §2.2 extension over the SPE-only detector of the earlier SIGCOMM
paper).  E7 sweeps the normal-subspace dimension k around the paper's
choice of k = 4.
"""

from conftest import run_once

from repro.evaluation.experiments import run_ablation_k, run_ablation_t2


def test_ablation_t2_extension(benchmark, week_dataset):
    result = run_once(benchmark, run_ablation_t2, week_dataset)

    print()
    print(result.render())

    # The T² test never hurts and the combined detector keeps a high rate.
    assert result.with_t2.n_detected >= result.without_t2.n_detected
    assert result.with_t2.detection_rate > 0.75


def test_ablation_normal_subspace_dimension(benchmark, week_dataset):
    result = run_once(benchmark, run_ablation_k, week_dataset, k_values=(2, 4, 8))

    print()
    print(result.render())

    metrics = result.metrics_by_k
    assert set(metrics) == {2, 4, 8}
    # The paper's choice k = 4 sits on the good part of the curve: detection
    # within a few percent of the best setting in the sweep.
    best_rate = max(m.detection_rate for m in metrics.values())
    assert metrics[4].detection_rate >= best_rate - 0.10
