"""Benchmark E8 — the subspace method versus per-flow baselines.

Quantifies the paper's central argument: analyzing the whole OD-flow
ensemble jointly (the subspace method) finds more of the injected anomalies
than per-flow detectors (EWMA, wavelet, Fourier) granted a comparable event
budget.
"""

from conftest import run_once

from repro.evaluation.experiments import run_baseline_comparison


def test_baseline_comparison(benchmark, week_dataset):
    result = run_once(benchmark, run_baseline_comparison, week_dataset)

    print()
    print(result.render())

    assert len(result.baselines) == 3
    assert result.subspace.detection_rate > 0.75
    # No per-flow baseline Pareto-dominates the subspace method: matching its
    # coverage costs the baselines more false-alarm events.
    assert result.subspace_wins()
    # The subspace method keeps false alarms below every baseline that
    # reaches comparable coverage.
    for metrics in result.baselines.values():
        if metrics.detection_rate >= result.subspace.detection_rate:
            assert metrics.n_false_alarms >= result.subspace.n_false_alarms
    # And it does so with a modest number of events (not by flagging everything).
    assert result.subspace.n_events < 10 * max(1, result.subspace.n_detected)
