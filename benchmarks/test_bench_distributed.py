"""Benchmark E11 — distributed ingestion plane: shard workers & hierarchy.

Measures, on the one-week trace (n = 2016, p = 121, 3 traffic types), the
three ways this repo can spread one stream over processes:

* **type-parallel** (``mode="type"``) — one worker per traffic type over
  the shared-memory chunk bus; parallelism saturates at 3;
* **shard-parallel** (``mode="shard"``) — K workers each own a column
  shard of *every* detector, the coordinator assembles the scatter through
  the Chan merge algebra at calibration; parallelism follows K;
* **hierarchical** — per-PoP ingestion leaves folded into one global
  detector by merging models (single process here; the point is parity
  and the cost of the merge, not process scaling).

All three must reproduce the single-process ``stream_detect`` event list
exactly — parity is asserted unconditionally.  The speedup gates (shard
mode beats the baseline by ≥ the floor, and beats type mode, i.e. scales
past the 3-type ceiling) are enforced only on machines with at least
``MIN_CORES_FOR_GATE`` cores; ``BENCH_DISTRIBUTED_MIN_SPEEDUP`` overrides
the floor and ``BENCH_DISTRIBUTED_NO_GATE=1`` downgrades the gates to
recorded-only numbers.  Like the sharded bench, the floor self-baselines
from the committed ``BENCH_streaming.json`` once a gate-enforced
measurement lands there.  Every run writes
``benchmarks/artifacts/bench_distributed.json`` for the perf trajectory.
"""

import json
import os

from conftest import artifact_path, best_of, run_once, trajectory_floor

from repro.evaluation import event_parity, report_parity
from repro.streaming import (
    HierarchicalNetworkDetector,
    StreamingConfig,
    chunk_series,
    parallel_stream_detect,
    stream_detect,
)

#: Chunk size (bins) of the simulated live feed, as in the streaming bench.
CHUNK_BINS = 32
#: Recalibration cadence (bins) of every streaming model.
RECALIBRATE_BINS = 96
#: Warmup bins before detection starts.
WARMUP_BINS = 128
#: Worker processes of both parallel modes (type mode caps at the 3 types).
N_WORKERS = 4
#: Per-PoP ingestion leaves of the hierarchical run.
N_POPS = 2
#: Fallback floor on the shard-parallel-vs-baseline speedup (self-baselines
#: from BENCH_streaming.json once a gate-enforced measurement is committed).
MIN_SHARD_SPEEDUP = 1.5
#: The speedup gates need real parallelism; below this the numbers are
#: recorded but the assertions are skipped (parity is always enforced).
MIN_CORES_FOR_GATE = 4


def test_distributed_modes_speedup_and_parity(benchmark, week_dataset):
    """Shard workers beat the 3-type ceiling; every mode is event-identical."""
    series = week_dataset.series
    config = StreamingConfig(min_train_bins=WARMUP_BINS,
                             recalibrate_every_bins=RECALIBRATE_BINS)

    def run_single():
        return stream_detect(chunk_series(series, CHUNK_BINS), config)

    def run_type_parallel():
        return parallel_stream_detect(chunk_series(series, CHUNK_BINS),
                                      config, mode="type",
                                      n_workers=N_WORKERS)

    def run_shard_parallel():
        return parallel_stream_detect(chunk_series(series, CHUNK_BINS),
                                      config, mode="shard",
                                      n_workers=N_WORKERS)

    def run_hierarchy():
        detector = HierarchicalNetworkDetector(config, n_pops=N_POPS)
        for chunk in chunk_series(series, CHUNK_BINS):
            detector.process_chunk(chunk)
        return detector.finish()

    single_time, baseline = best_of(2, run_single)
    type_time, by_type = best_of(2, run_type_parallel)
    shard_time, by_shard = best_of(3, run_shard_parallel)
    hier_time, by_hier = best_of(2, run_hierarchy)
    run_once(benchmark, run_shard_parallel)

    parities = {
        "type_parallel": event_parity(baseline.events, by_type.events),
        "shard_parallel": event_parity(baseline.events, by_shard.events),
        "hierarchical": event_parity(baseline.events, by_hier.events),
    }
    bins = series.n_bins
    shard_speedup = single_time / shard_time
    shard_vs_type = type_time / shard_time
    cores = os.cpu_count() or 1
    min_speedup = float(os.environ.get(
        "BENCH_DISTRIBUTED_MIN_SPEEDUP",
        trajectory_floor("bench_distributed", "shard_speedup_vs_baseline",
                         MIN_SHARD_SPEEDUP)))
    gate_enforced = (cores >= MIN_CORES_FOR_GATE
                     and not os.environ.get("BENCH_DISTRIBUTED_NO_GATE"))

    record = {
        "benchmark": "bench_distributed",
        "n_bins": bins,
        "n_od_pairs": series.n_od_pairs,
        "n_traffic_types": len(series.traffic_types),
        "chunk_bins": CHUNK_BINS,
        "n_workers": N_WORKERS,
        "n_pops": N_POPS,
        "cpu_count": cores,
        "baseline_bins_per_sec": round(bins / single_time, 1),
        "type_parallel_bins_per_sec": round(bins / type_time, 1),
        "shard_parallel_bins_per_sec": round(bins / shard_time, 1),
        "hierarchical_bins_per_sec": round(bins / hier_time, 1),
        "shard_speedup_vs_baseline": round(shard_speedup, 3),
        "shard_speedup_vs_type_parallel": round(shard_vs_type, 3),
        "n_events": baseline.n_events,
        # Mismatching events are embedded in full (EventParityReport.to_dict)
        # so a failed parity gate is diagnosable from the artifact alone.
        "parity": {name: parity.to_dict()
                   for name, parity in parities.items()},
        "gate": {
            "min_speedup": min_speedup,
            "min_cores": MIN_CORES_FOR_GATE,
            "enforced": gate_enforced,
        },
    }
    # Written BEFORE any assert: when a gate fails, the artifact holding the
    # evidence must still exist (CI uploads it with if: always()).
    artifact = artifact_path("bench_distributed.json")
    artifact.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    benchmark.extra_info.update(
        {k: v for k, v in record.items() if isinstance(v, (int, float))})
    print(f"\ndistributed modes over {bins} bins on {cores} core(s): "
          f"single {single_time:.2f}s, type-parallel {type_time:.2f}s, "
          f"K={N_WORKERS} shard-parallel {shard_time:.2f}s "
          f"({shard_speedup:.2f}x vs single, {shard_vs_type:.2f}x vs type), "
          f"{N_POPS}-PoP hierarchy {hier_time:.2f}s; "
          f"BENCH artifact: {artifact}")

    # The repo's core guarantee, at paper scale, for every distribution
    # strategy — never disabled by BENCH_DISTRIBUTED_NO_GATE.
    for name, parity in parities.items():
        assert parity.exact, (name, parity.to_dict())
    for name, candidate in (("type_parallel", by_type),
                            ("shard_parallel", by_shard),
                            ("hierarchical", by_hier)):
        full = report_parity(baseline, candidate)
        assert all(full["equal"].values()), (name, full["equal"])

    if gate_enforced:
        assert shard_speedup >= min_speedup, (
            f"shard-parallel speedup {shard_speedup:.2f}x is below the "
            f"{min_speedup}x floor on a {cores}-core machine")
        # The whole point of shard mode: with K > n_types workers it must
        # beat the type-parallel driver's 3-type ceiling.
        assert shard_vs_type > 1.0, (
            f"shard-parallel ({bins / shard_time:,.0f} bins/s) did not beat "
            f"type-parallel ({bins / type_time:,.0f} bins/s) with "
            f"{N_WORKERS} workers on a {cores}-core machine")
    else:
        print(f"speedup gates not enforced (cores={cores}, "
              f"BENCH_DISTRIBUTED_NO_GATE="
              f"{os.environ.get('BENCH_DISTRIBUTED_NO_GATE', '')!r}); "
              f"parity still verified")
