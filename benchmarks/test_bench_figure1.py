"""Benchmark E1 — Figure 1: the subspace method on the three traffic types.

Regenerates the three rows of Figure 1 (state vector, residual vector with
the Q-statistic threshold, t² with the T² threshold) over a 3.5-day window
and checks the figure's qualitative claims: the residual statistics remove
the diurnal periodicity of the raw traffic, and anomalies stand out as
spikes above the thresholds.
"""

from conftest import run_once

from repro.evaluation.experiments import run_figure1
from repro.flows.timeseries import TrafficType


def test_figure1_subspace_statistics(benchmark, week_dataset):
    result = run_once(benchmark, run_figure1, week_dataset, window_days=3.5)

    print()
    print(result.render())

    for traffic_type in TrafficType.all():
        detection = result.results[traffic_type]
        # Thresholds exist and the statistics are finite.
        assert detection.spe_threshold > 0
        assert detection.t2_threshold > 0
        # Periodicity of the raw traffic is largely removed from the residual.
        assert result.periodicity_removed(traffic_type)
        # Anomalies appear as spikes: some but few bins exceed the thresholds.
        n_flagged = len(detection.anomalous_bins)
        assert 0 < n_flagged < 0.1 * detection.n_bins

    # The three traffic types flag noticeably different bin sets (the paper's
    # argument for analyzing all three).
    bins_by_type = {t: set(result.results[t].anomalous_bins)
                    for t in TrafficType.all()}
    assert bins_by_type[TrafficType.BYTES] != bins_by_type[TrafficType.FLOWS]
