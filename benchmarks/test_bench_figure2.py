"""Benchmark E3 — Figure 2: anomaly duration and spatial-extent histograms.

Histograms the aggregated anomaly events by duration (minutes) and by number
of OD flows involved, and checks the paper's observation that most anomalies
are small in both time and space while a non-negligible tail is large.
"""

from conftest import run_once

from repro.evaluation.experiments import run_figure2


def test_figure2_anomaly_scope_histograms(benchmark, week_dataset):
    result = run_once(benchmark, run_figure2, week_dataset)

    print()
    print(result.render())

    assert result.n_events > 20
    # Most anomalies are short (the paper's histogram peaks below 20 minutes;
    # we allow up to an hour to absorb event-merging differences).
    assert result.fraction_short(60.0) > 0.6
    # Most anomalies involve few OD flows.
    assert result.median_od_flows() <= 4
    # ... but a non-negligible number are large (the heavy tail).
    assert max(result.od_flow_counts) >= 4 or max(result.durations_minutes) >= 60
