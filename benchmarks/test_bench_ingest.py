"""Benchmark E12 — bulk flow-record ingestion: CSV → chunks vs detection.

The ingestion plane is fast enough exactly when the parser/binner emits
OD-matrix bins faster than the 3-type detection pipeline consumes them —
then a service fed from flow-record exports is detection-bound, not
ingest-bound.  This benchmark measures, on one synthetic Abilene day
(288 bins, p = 121, ~46k flow records):

* **ingest throughput** — ``FlowCsvSource`` end to end (vectorized CSV
  parse → PoP resolve → watermark binning), in bins/sec and records/sec;
* **detect throughput** — single-process ``stream_detect`` over the same
  day, in bins/sec;
* **ingest_vs_detect_speedup** — the ratio the gate guards (≥ the floor
  on machines with at least ``MIN_CORES_FOR_GATE`` cores;
  ``BENCH_INGEST_MIN_SPEEDUP`` overrides, ``BENCH_INGEST_NO_GATE=1``
  downgrades the gate to recorded-only numbers).

Round-trip parity (export → parse → bin ≡ in-memory aggregation, byte
for byte, identical events) is asserted unconditionally — a fast parser
that changes the bits is worthless.  Every run writes
``benchmarks/artifacts/bench_ingest.json`` for the perf trajectory.
"""

import json
import os

from conftest import (
    BENCHMARK_SEED,
    artifact_path,
    best_of,
    run_once,
    trajectory_floor,
)

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.ingest import (
    FlowCsvSource,
    IngestConfig,
    export_series_records,
    round_trip_check,
)
from repro.streaming import ChunkedSeriesSource, StreamingConfig, stream_detect
from repro.topology import abilene_topology

#: Chunk size (bins) of the simulated live feed, as in the streaming bench.
CHUNK_BINS = 32
#: Recalibration cadence (bins) of the detection pipeline.
RECALIBRATE_BINS = 96
#: Warmup bins before detection starts.
WARMUP_BINS = 128
#: Flow records synthesized per (bin, OD pair) cell of the export.
FLOWS_PER_CELL = 2
#: Fallback floor on ingest-vs-detect: the parser must at least keep up.
MIN_INGEST_SPEEDUP = 1.0
#: The speedup gate needs an unloaded multi-core box; below this the
#: numbers are recorded but the assertion is skipped (parity always runs).
MIN_CORES_FOR_GATE = 4
#: Bins of the (smaller) round-trip parity proof.
PARITY_BINS = 192


def test_ingest_outruns_detection_and_round_trips(benchmark, tmp_path):
    """CSV ingest sustains more bins/sec than detection; bits identical."""
    network = abilene_topology()
    dataset = generate_abilene_dataset(DatasetConfig(weeks=1.0 / 7.0),
                                       seed=BENCHMARK_SEED)
    series = dataset.series
    csv_path = str(tmp_path / "flows_day.csv")
    records = export_series_records(series, network, csv_path,
                                    seed=BENCHMARK_SEED,
                                    max_flows_per_cell=FLOWS_PER_CELL)

    cores = os.cpu_count() or 1
    parse_workers = 1 if cores < MIN_CORES_FOR_GATE else 4
    ingest_config = IngestConfig(
        chunk_size=CHUNK_BINS,
        bin_seconds=series.binning.bin_seconds,
        start_seconds=series.binning.start_seconds,
        n_bins=series.n_bins,
        parse_workers=parse_workers,
    )
    source = FlowCsvSource(csv_path, network=network, config=ingest_config)
    detect_config = StreamingConfig(min_train_bins=WARMUP_BINS,
                                    recalibrate_every_bins=RECALIBRATE_BINS)

    def run_ingest():
        chunks = list(source)
        return chunks, source.stats

    def run_detect():
        return stream_detect(ChunkedSeriesSource(series, CHUNK_BINS),
                             detect_config)

    ingest_time, (chunks, ingest_stats) = best_of(3, run_ingest)
    detect_time, report = best_of(2, run_detect)
    run_once(benchmark, run_ingest)

    bins = series.n_bins
    assert sum(c.n_bins for c in chunks) == bins
    ingest_bins_per_sec = bins / ingest_time
    detect_bins_per_sec = bins / detect_time
    records_per_sec = ingest_stats.parse.records / ingest_time
    speedup = ingest_bins_per_sec / detect_bins_per_sec

    # The parity proof rides along on a smaller window so the benchmark
    # stays in the tens of seconds; it is never gated off.
    parity = round_trip_check(
        series.window(0, PARITY_BINS), network,
        str(tmp_path / "flows_parity.csv"), seed=BENCHMARK_SEED,
        max_flows_per_cell=FLOWS_PER_CELL,
        streaming_config=StreamingConfig(min_train_bins=96,
                                         recalibrate_every_bins=48))

    min_speedup = float(os.environ.get(
        "BENCH_INGEST_MIN_SPEEDUP",
        trajectory_floor("bench_ingest", "ingest_vs_detect_speedup",
                         MIN_INGEST_SPEEDUP)))
    gate_enforced = (cores >= MIN_CORES_FOR_GATE
                     and not os.environ.get("BENCH_INGEST_NO_GATE"))

    record = {
        "benchmark": "bench_ingest",
        "n_bins": bins,
        "n_od_pairs": series.n_od_pairs,
        "n_records": len(records),
        "chunk_bins": CHUNK_BINS,
        "parse_workers": parse_workers,
        "cpu_count": cores,
        "ingest_bins_per_sec": round(ingest_bins_per_sec, 1),
        "ingest_records_per_sec": round(records_per_sec, 1),
        "detect_bins_per_sec": round(detect_bins_per_sec, 1),
        "ingest_vs_detect_speedup": round(speedup, 3),
        "n_events": report.n_events,
        "parity": {
            "matrices_identical": parity.matrices_identical,
            "events_identical": parity.events_identical,
            "max_abs_difference": parity.max_abs_difference,
            "n_records_exported": parity.n_records_exported,
            "n_direct_events": parity.n_direct_events,
            "n_ingest_events": parity.n_ingest_events,
        },
        "gate": {
            "min_speedup": min_speedup,
            "min_cores": MIN_CORES_FOR_GATE,
            "enforced": gate_enforced,
        },
    }
    # Written BEFORE any assert: when a gate fails, the artifact holding
    # the evidence must still exist (CI uploads it with if: always()).
    artifact = artifact_path("bench_ingest.json")
    artifact.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    benchmark.extra_info.update(
        {k: v for k, v in record.items() if isinstance(v, (int, float))})
    print(f"\ningest over {bins} bins / {len(records):,} records on {cores} "
          f"core(s): parse+bin {ingest_time:.2f}s "
          f"({ingest_bins_per_sec:,.0f} bins/s, {records_per_sec:,.0f} "
          f"records/s, workers={parse_workers}), detect {detect_time:.2f}s "
          f"({detect_bins_per_sec:,.0f} bins/s), "
          f"ingest-vs-detect {speedup:.2f}x; BENCH artifact: {artifact}")

    # The repo's core guarantee — never disabled by BENCH_INGEST_NO_GATE.
    assert parity.ok, record["parity"]
    assert parity.max_abs_difference == 0.0

    if gate_enforced:
        assert speedup >= min_speedup, (
            f"ingest ({ingest_bins_per_sec:,.0f} bins/s) fell behind "
            f"detection ({detect_bins_per_sec:,.0f} bins/s): "
            f"{speedup:.2f}x is below the {min_speedup}x floor on a "
            f"{cores}-core machine")
    else:
        print(f"ingest speedup gate not enforced (cores={cores}, "
              f"BENCH_INGEST_NO_GATE="
              f"{os.environ.get('BENCH_INGEST_NO_GATE', '')!r}); "
              f"parity still verified")
