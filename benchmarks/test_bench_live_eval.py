"""Benchmark E12 — live-mode evaluation quality and adaptive thresholds.

Two measurements, both about *detection quality* of the production
streaming path rather than throughput:

* **Live vs batch Table 1/3 analogues** (labeled Abilene week): the
  single-pass streaming pipeline — all three engines: exact, sharded,
  low-rank — replays the labeled week and its Table 1-analogue counts and
  Table 3-analogue metrics (detection rate, false-alarm rate, per-type
  recall) are compared against the batch reference over identical windows
  and matcher.  Gates (machine-independent, never disabled): each engine's
  live detection rate within {MAX_DETECTION_DROP} of batch, live
  false-alarm rate at most {MAX_LIVE_FAR}, and live-vs-batch event span
  recall at least {SPAN_RECALL_FLOOR}.
* **Adaptive vs fixed control limits** (drifting synthetic week: diurnal
  mean ramping, noise variance ramping): ``StreamingConfig(limits=
  "adaptive")`` must produce a false-alarm rate no worse than the fixed
  99.9% limits under both infinite memory and a one-day forgetting
  half-life, while its ground-truth recall stays within
  {MAX_RECALL_DROP} of the fixed policy's.

Every run writes ``benchmarks/artifacts/bench_live_eval.json`` (or
``$BENCH_ARTIFACT_DIR``) before any gate can fail, so CI uploads always
carry the evidence; ``tools/bench_trajectory.py`` folds it into the
``BENCH_streaming.json`` trajectory at the repo root.
"""

import json

import pytest

from conftest import BENCHMARK_SEED, artifact_path, run_once, timed

from repro.datasets import DatasetConfig, generate_drifting_dataset
from repro.evaluation import match_events
from repro.evaluation.live import (
    LIVE_ENGINES,
    batch_reference,
    compare_batch_live,
    run_live_evaluation,
)
from repro.streaming import (
    StreamingConfig,
    chunk_series,
    forgetting_from_half_life,
    stream_detect,
)

#: Warmup / recalibration cadence of the live runs (matches bench_lowrank).
WARMUP_BINS = 128
RECALIBRATE_BINS = 96
CHUNK_BINS = 32
#: Live detection rate may trail batch by at most this much.
MAX_DETECTION_DROP = 0.15
#: Ceiling on the live false-alarm rate on the stationary labeled week.
MAX_LIVE_FAR = 0.15
#: Floor on live-vs-batch event span recall (per engine).
SPAN_RECALL_FLOOR = 0.70
#: Floor on live-vs-batch exact-event recall (per engine).
RECALL_FLOOR = 0.55
#: Adaptive recall may trail fixed-limit recall by at most this much.
MAX_RECALL_DROP = 0.05


def _live_config(**overrides):
    return StreamingConfig(min_train_bins=WARMUP_BINS,
                           recalibrate_every_bins=RECALIBRATE_BINS,
                           **overrides)


def _write_section(section, record):
    artifact = artifact_path("bench_live_eval.json")
    existing = json.loads(artifact.read_text()) if artifact.is_file() else {}
    existing[section] = record
    artifact.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    return artifact


def test_live_table_analogues_vs_batch(benchmark, week_dataset):
    """All three engines reproduce the batch Table 1/3 numbers live."""
    batch_time, batch = timed(batch_reference, week_dataset)
    config = _live_config()

    deltas = {}
    live_times = {}
    for engine in LIVE_ENGINES:
        elapsed, live = timed(run_live_evaluation, week_dataset, config,
                              CHUNK_BINS, engine)
        live_times[engine] = elapsed
        deltas[engine] = compare_batch_live(batch, live)
    run_once(benchmark, run_live_evaluation, week_dataset, config,
             CHUNK_BINS, "exact")

    record = {
        "benchmark": "bench_live_eval",
        "n_bins": week_dataset.n_bins,
        "n_od_pairs": week_dataset.n_od_pairs,
        "n_injected_anomalies": len(week_dataset.ground_truth),
        "chunk_bins": CHUNK_BINS,
        "warmup_bins": WARMUP_BINS,
        "recalibrate_every_bins": RECALIBRATE_BINS,
        "batch_seconds": round(batch_time, 3),
        "live_seconds": {k: round(v, 3) for k, v in live_times.items()},
        "batch": batch.to_dict(),
        "engines": {name: delta.to_dict() for name, delta in deltas.items()},
        "parity": {name: delta.parity() for name, delta in deltas.items()},
        "gate": {
            "max_detection_drop": MAX_DETECTION_DROP,
            "max_live_false_alarm_rate": MAX_LIVE_FAR,
            "span_recall_floor": SPAN_RECALL_FLOOR,
            "recall_floor": RECALL_FLOOR,
        },
    }
    artifact = _write_section("live_vs_batch", record)

    print(f"\nbatch: {batch.total_events} events, detection "
          f"{batch.metrics.detection_rate:.3f}, far "
          f"{batch.metrics.false_alarm_rate:.3f}")
    for engine, delta in deltas.items():
        parity = delta.parity()
        print(f"{engine}: {delta.live.total_events} events, detection "
              f"{delta.live.metrics.detection_rate:.3f} "
              f"({delta.detection_rate_delta:+.3f}), far "
              f"{delta.live.metrics.false_alarm_rate:.3f}, span recall "
              f"{parity['span_recall']:.3f}")
    print(f"BENCH artifact: {artifact}")

    # Quality gates — machine-independent, never disabled.
    for engine, delta in deltas.items():
        parity = delta.parity()
        assert delta.detection_rate_delta >= -MAX_DETECTION_DROP, (
            engine, delta.to_dict()["delta"])
        assert delta.live.metrics.false_alarm_rate <= MAX_LIVE_FAR, (
            engine, delta.live.metrics.as_dict())
        assert parity["span_recall"] >= SPAN_RECALL_FLOOR, (engine, parity)
        assert parity["recall"] >= RECALL_FLOOR, (engine, parity)


@pytest.fixture(scope="module")
def drifting_week():
    """A non-stationary labeled week: mean +15%/day, noise sigma +35%/day."""
    return generate_drifting_dataset(DatasetConfig(weeks=1.0),
                                     seed=BENCHMARK_SEED)


def _score(dataset, config):
    report = stream_detect(chunk_series(dataset.series, CHUNK_BINS), config)
    match = match_events(report.events, dataset.ground_truth,
                         series=dataset.series)
    return {
        "n_events": report.n_events,
        "detection_rate": round(match.detection_rate, 4),
        "false_alarm_rate": round(match.false_alarm_rate, 4),
    }


def test_adaptive_limits_on_drifting_week(benchmark, drifting_week):
    """Adaptive quantile thresholds beat fixed limits under drift."""
    day_half_life = forgetting_from_half_life(288)
    scenarios = {
        "infinite_memory": {},
        "one_day_half_life": {"forgetting": day_half_life},
    }

    results = {}
    for name, knobs in scenarios.items():
        results[name] = {
            "fixed": _score(drifting_week, _live_config(**knobs)),
            "adaptive": _score(drifting_week,
                               _live_config(limits="adaptive", **knobs)),
        }
    run_once(benchmark, _score, drifting_week,
             _live_config(limits="adaptive"))

    record = {
        "benchmark": "bench_adaptive_limits",
        "n_bins": drifting_week.n_bins,
        "n_injected_anomalies": len(drifting_week.ground_truth),
        "chunk_bins": CHUNK_BINS,
        "warmup_bins": WARMUP_BINS,
        "recalibrate_every_bins": RECALIBRATE_BINS,
        "drift": {"level_drift_per_day": 0.15, "variance_ramp_per_day": 0.35},
        "scenarios": results,
        "gate": {"max_recall_drop": MAX_RECALL_DROP},
    }
    artifact = _write_section("adaptive_limits", record)

    for name, scores in results.items():
        fixed, adaptive = scores["fixed"], scores["adaptive"]
        print(f"\n{name}: fixed far {fixed['false_alarm_rate']:.3f} "
              f"recall {fixed['detection_rate']:.3f} "
              f"({fixed['n_events']} events) -> adaptive far "
              f"{adaptive['false_alarm_rate']:.3f} recall "
              f"{adaptive['detection_rate']:.3f} "
              f"({adaptive['n_events']} events)")
    print(f"BENCH artifact: {artifact}")

    # The tentpole gates — machine-independent, never disabled: adaptive
    # must not false-alarm more than fixed on the drifting week, and must
    # not give up more than MAX_RECALL_DROP of ground-truth recall.
    for name, scores in results.items():
        fixed, adaptive = scores["fixed"], scores["adaptive"]
        assert (adaptive["false_alarm_rate"]
                <= fixed["false_alarm_rate"]), (name, scores)
        assert (adaptive["detection_rate"]
                >= fixed["detection_rate"] - MAX_RECALL_DROP), (name, scores)
        # The drift must actually stress the fixed policy, or the
        # comparison is vacuous.
        assert fixed["false_alarm_rate"] >= 0.2, (name, scores)
