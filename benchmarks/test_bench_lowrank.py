"""Benchmark E11 — low-rank eigenbasis tracking vs the exact eigh path.

Two measurements:

* **Recalibration path at scale** (``p = {P_LARGE}`` synthetic OD flows,
  far past the 121-flow Abilene matrix): per chunk, the exact engine pays
  ``O(m p²)`` scatter maintenance plus an ``O(p³)`` ``eigh_descending``
  refresh, while the :class:`LowRankEigenTracker` folds the refresh into an
  ``O(m·p·r + r³)`` update.  The ≥{MIN_SPEEDUP}x speedup floor is enforced
  unless ``BENCH_LOWRANK_NO_GATE=1`` (override the floor with
  ``BENCH_LOWRANK_MIN_SPEEDUP``); the tracked top-``k`` subspace must also
  agree with the exact engine to a small principal angle — a fast wrong
  basis would be worthless.
* **Detection parity on the Abilene week** (n = 2016, p = 121): the full
  3-type live pipeline with the low-rank engine must recover the exact
  engine's anomaly events within the documented span tolerance
  (``span recall ≥ {SPAN_RECALL_FLOOR}``); the tracked top subspace is
  ~1e-8 accurate, so the only expected deviations are events whose
  statistic grazes the SPE limit (whose tail moments φ₂/φ₃ are
  approximated from the residual-energy scalar — φ₁ itself is exact).

Every run writes ``benchmarks/artifacts/bench_lowrank.json`` (or
``$BENCH_ARTIFACT_DIR``) before any gate can fail, so CI uploads always
carry the evidence; ``tools/bench_trajectory.py`` folds it into the
``BENCH_streaming.json`` trajectory at the repo root.
"""

import json
import os

import numpy as np

from conftest import artifact_path, run_once, timed

from repro.evaluation import event_parity
from repro.streaming import (
    LowRankEigenTracker,
    OnlinePCA,
    StreamingConfig,
    chunk_series,
    stream_detect,
)

#: Synthetic scale of the recalibration benchmark (OD flows).
P_LARGE = 1024
#: Dominant signal dimensionality of the synthetic stream.
SIGNAL_RANK = 8
#: Tracked eigenpairs of the low-rank engine (n_normal 4 + slack 12).
TRACKED_RANK = 16
#: Chunk size (bins) of the simulated live feed.
CHUNK_BINS = 64
#: Chunks streamed through each engine (every chunk recalibrates).
N_CHUNKS = 8
#: Acceptance floor on the recalibration-path speedup.
MIN_SPEEDUP = 5.0
#: Acceptance floor on Abilene-week event-span recall vs the exact engine.
SPAN_RECALL_FLOOR = 0.85
#: Warmup / recalibration cadence of the week-scale parity run.
WEEK_WARMUP_BINS = 128
WEEK_RECALIBRATE_BINS = 96
WEEK_CHUNK_BINS = 32


def _synthetic_chunks(seed: int = 2004):
    """A seeded stream with a dominant low-rank signal plus noise."""
    rng = np.random.default_rng(seed)
    amplitudes = np.linspace(12.0, 3.0, SIGNAL_RANK)
    mixing = rng.normal(size=(SIGNAL_RANK, P_LARGE)) * amplitudes[:, None]
    chunks = []
    for _ in range(N_CHUNKS):
        latent = rng.normal(size=(CHUNK_BINS, SIGNAL_RANK))
        chunks.append(latent @ mixing
                      + 0.05 * rng.normal(size=(CHUNK_BINS, P_LARGE)))
    return chunks


def _recalibration_pass(engine, chunks):
    """The streaming hot path: fold each chunk, refresh the eigenbasis."""
    for chunk in chunks:
        engine.partial_fit(chunk)
        engine.eigenbasis()
    return engine


def _max_sin_angle(axes_a, axes_b, k):
    cosines = np.linalg.svd(axes_a[:, :k].T @ axes_b[:, :k], compute_uv=False)
    return float(np.sqrt(max(0.0, 1.0 - min(cosines) ** 2)))


def test_lowrank_recalibration_speedup_at_scale(benchmark):
    """≥5x over the exact eigh path at p = 1024, with a matching basis."""
    chunks = _synthetic_chunks()

    exact_time, exact = timed(_recalibration_pass, OnlinePCA(), chunks)
    lowrank_time, tracker = timed(
        _recalibration_pass, LowRankEigenTracker(rank=TRACKED_RANK), chunks)
    run_once(benchmark, _recalibration_pass,
             LowRankEigenTracker(rank=TRACKED_RANK), list(chunks))

    # The speedup is worthless if the maintained basis is wrong: the
    # tracked top-4 subspace must match the exact engine's.
    exact_values, exact_axes = exact.eigenbasis()
    values, axes = tracker.eigenbasis()
    max_angle = _max_sin_angle(exact_axes, axes, 4)
    eigval_rel_err = float(np.max(
        np.abs(values[:SIGNAL_RANK] - exact_values[:SIGNAL_RANK])
        / exact_values[:SIGNAL_RANK]))
    trace_rel_err = abs(
        float(np.sum(values)) - float(np.sum(exact_values))
    ) / float(np.sum(exact_values))

    bins = CHUNK_BINS * N_CHUNKS
    speedup = exact_time / lowrank_time
    min_speedup = float(os.environ.get("BENCH_LOWRANK_MIN_SPEEDUP",
                                       MIN_SPEEDUP))
    gate_enforced = not os.environ.get("BENCH_LOWRANK_NO_GATE")

    record = {
        "benchmark": "bench_lowrank_recalibration",
        "n_od_pairs": P_LARGE,
        "chunk_bins": CHUNK_BINS,
        "n_chunks": N_CHUNKS,
        "tracked_rank": TRACKED_RANK,
        "exact_bins_per_sec": round(bins / exact_time, 1),
        "lowrank_bins_per_sec": round(bins / lowrank_time, 1),
        "lowrank_speedup": round(speedup, 3),
        "max_sin_principal_angle_top4": max_angle,
        "top_eigenvalue_rel_err": eigval_rel_err,
        "trace_rel_err": trace_rel_err,
        "n_reorthogonalizations": tracker.n_reorthogonalizations,
        "gate": {"min_speedup": min_speedup, "enforced": gate_enforced},
    }
    artifact = artifact_path("bench_lowrank.json")
    existing = (json.loads(artifact.read_text())
                if artifact.is_file() else {})
    existing["recalibration"] = record
    artifact.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    benchmark.extra_info.update(
        {k: v for k, v in record.items() if isinstance(v, (int, float))})
    print(f"\nrecalibration path over {bins} bins at p={P_LARGE}: "
          f"exact {exact_time:.2f}s ({bins / exact_time:,.0f} bins/sec), "
          f"low-rank r={TRACKED_RANK} {lowrank_time:.3f}s "
          f"({bins / lowrank_time:,.0f} bins/sec) -> {speedup:.1f}x; "
          f"top-4 principal angle sin {max_angle:.2e}")

    # Accuracy gates are never disabled — a fast wrong basis must fail.
    assert max_angle < 1e-5
    assert eigval_rel_err < 1e-8
    assert trace_rel_err < 1e-10
    if gate_enforced:
        assert speedup >= min_speedup, (
            f"low-rank recalibration speedup {speedup:.2f}x is below the "
            f"{min_speedup}x floor at p={P_LARGE}")
    else:
        print(f"speedup gate not enforced (BENCH_LOWRANK_NO_GATE="
              f"{os.environ.get('BENCH_LOWRANK_NO_GATE', '')!r})")


def test_lowrank_week_event_parity(benchmark, week_dataset):
    """Abilene-week live detection: low-rank events match within tolerance."""
    series = week_dataset.series
    exact_config = StreamingConfig(min_train_bins=WEEK_WARMUP_BINS,
                                   recalibrate_every_bins=WEEK_RECALIBRATE_BINS)
    lowrank_config = StreamingConfig(min_train_bins=WEEK_WARMUP_BINS,
                                     recalibrate_every_bins=WEEK_RECALIBRATE_BINS,
                                     engine="lowrank", rank_slack=12)

    def run_exact():
        return stream_detect(chunk_series(series, WEEK_CHUNK_BINS),
                             exact_config)

    def run_lowrank():
        return stream_detect(chunk_series(series, WEEK_CHUNK_BINS),
                             lowrank_config)

    exact_time, exact = timed(run_exact)
    lowrank_time, lowrank = timed(run_lowrank)
    run_once(benchmark, run_lowrank)

    parity = event_parity(exact.events, lowrank.events)
    bins = series.n_bins
    record = {
        "benchmark": "bench_lowrank_week_parity",
        "n_bins": bins,
        "n_od_pairs": series.n_od_pairs,
        "n_traffic_types": len(series.traffic_types),
        "chunk_bins": WEEK_CHUNK_BINS,
        "recalibrate_every_bins": WEEK_RECALIBRATE_BINS,
        "rank": lowrank_config.n_normal + lowrank_config.rank_slack,
        "exact_bins_per_sec": round(bins / exact_time, 1),
        "lowrank_bins_per_sec": round(bins / lowrank_time, 1),
        "n_events_exact": exact.n_events,
        "n_events_lowrank": lowrank.n_events,
        "parity": parity.to_dict(),
        "gate": {"span_recall_floor": SPAN_RECALL_FLOOR},
    }
    artifact = artifact_path("bench_lowrank.json")
    existing = (json.loads(artifact.read_text())
                if artifact.is_file() else {})
    existing["week_parity"] = record
    artifact.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    benchmark.extra_info.update(
        {k: v for k, v in record.items() if isinstance(v, (int, float))})
    print(f"\n3-type week pipeline: exact {exact_time:.2f}s, low-rank "
          f"{lowrank_time:.2f}s; events {exact.n_events} vs "
          f"{lowrank.n_events}, span recall {parity.span_recall:.3f}; "
          f"BENCH artifact: {artifact}")

    # The parity floor is the documented tolerance of the tentpole and is
    # never disabled by the speedup-gate switch.
    assert parity.span_recall >= SPAN_RECALL_FLOOR, parity.to_dict()
    assert lowrank.n_bins_processed == exact.n_bins_processed
    assert lowrank.n_events >= 1
