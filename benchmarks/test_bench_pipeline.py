"""Benchmark E9 — the measurement pipeline's PoP-resolution rate.

Exercises the record-level path (flow synthesis → 1% packet sampling →
ingress/egress PoP resolution → re-aggregation) on a slice of the weekly
dataset and checks the paper's §2.1 claim: more than 93% of IP flows
(more than 90% of bytes) resolve to an OD pair.
"""

from conftest import run_once

from repro.evaluation.experiments import run_resolution_experiment
from repro.flows.sampling import SamplingConfig


def test_pipeline_resolution_rates(benchmark, week_dataset):
    result = run_once(
        benchmark,
        run_resolution_experiment,
        week_dataset,
        n_bins=6,
        volume_scale=2e-3,
        sampling=SamplingConfig(sampling_rate=0.1),
        unresolvable_fraction=0.05,
    )

    print()
    print(result.render())

    assert result.n_sampled_records > 500
    # The paper's resolution-rate targets.
    assert result.flow_resolution_rate > 0.93
    assert result.byte_resolution_rate > 0.90
    # The re-aggregated traffic matrix tracks the reference per-OD volumes.
    assert result.correlation_bytes > 0.5
