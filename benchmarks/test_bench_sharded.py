"""Benchmark E10 — sharded & multi-process streaming throughput.

Measures, on the one-week trace (n = 2016, p = 121):

* the **column-sharded moment engine** (K = 4) against the single
  :class:`OnlinePCA` — same arithmetic split across shard row blocks, so
  the covariance must agree while the per-shard work drops to ``1/K``;
* the **multi-process 3-type pipeline** (one worker per traffic type,
  bounded queues, K = 4 sharded engines inside the workers) against the
  single-process ``stream_detect`` baseline.

Both comparisons assert exact event/report parity — the merge-parity
guarantee at paper scale.  The ≥{MIN_PARALLEL_SPEEDUP}x throughput gate is
enforced when the machine has at least {MIN_CORES_FOR_GATE} cores;
single-core CI boxes still run the full parity check and record the
numbers.  Operators can tune the gate without editing the file:
``BENCH_SHARDED_MIN_SPEEDUP`` overrides the floor and
``BENCH_SHARDED_NO_GATE=1`` downgrades it to a recorded-only number (for
machines whose multi-core baseline has not been established yet).  Every
run writes a BENCH JSON artifact
(``benchmarks/artifacts/bench_sharded.json`` or ``$BENCH_ARTIFACT_DIR``)
so the perf trajectory is tracked per PR.
"""

import json
import os

import numpy as np

from conftest import artifact_path, best_of, run_once, trajectory_floor

from repro.evaluation import event_parity, report_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    OnlinePCA,
    ShardedOnlinePCA,
    StreamingConfig,
    chunk_series,
    parallel_stream_detect,
    stream_detect,
)

#: Chunk size (bins) of the simulated live feed, as in the streaming bench.
CHUNK_BINS = 32
#: Recalibration cadence (bins) of every streaming model.
RECALIBRATE_BINS = 96
#: Warmup bins before detection starts.
WARMUP_BINS = 128
#: Column shards of the sharded engine / workers of the parallel driver.
N_SHARDS = 4
#: Fallback acceptance floor on the parallel-vs-single-process pipeline
#: speedup, used until a gate-enforced (multi-core) measurement is committed
#: to BENCH_streaming.json — after that the floor self-baselines from the
#: committed ratio (see ``conftest.trajectory_floor``).
MIN_PARALLEL_SPEEDUP = 1.5
#: The speedup gate needs real parallelism; below this the numbers are
#: recorded but the assertion is skipped (parity is always enforced).
MIN_CORES_FOR_GATE = 4


def _engine_pass(engine_factory, matrix):
    engine = engine_factory()
    for start in range(0, matrix.shape[0], CHUNK_BINS):
        engine.partial_fit(matrix[start:start + CHUNK_BINS])
    return engine


def test_sharded_engine_matches_single_engine(benchmark, week_dataset):
    """K=4 column shards maintain the identical covariance on the week trace."""
    matrix = week_dataset.series.matrix(TrafficType.BYTES)

    single_time, single = best_of(3, _engine_pass, OnlinePCA, matrix)
    sharded_time, sharded = best_of(
        3, _engine_pass, lambda: ShardedOnlinePCA(n_shards=N_SHARDS), matrix)
    run_once(benchmark, _engine_pass,
             lambda: ShardedOnlinePCA(n_shards=N_SHARDS), matrix)

    np.testing.assert_allclose(sharded.covariance(), single.covariance(),
                               rtol=1e-9, atol=1e-6)
    np.testing.assert_array_equal(sharded.mean, single.mean)
    assert sharded.n_samples == single.n_samples

    bins = matrix.shape[0]
    benchmark.extra_info["single_engine_bins_per_sec"] = round(
        bins / single_time, 1)
    benchmark.extra_info["sharded_engine_bins_per_sec"] = round(
        bins / sharded_time, 1)
    print(f"\nmoment maintenance over {bins} bins: single {single_time:.3f}s, "
          f"K={N_SHARDS} shards {sharded_time:.3f}s (in-process)")
    # In one process the sharded engine does the same flops in K GEMMs; it
    # must stay within a small constant factor of the single engine.
    # BENCH_SHARDED_NO_GATE downgrades this (like the speedup gate) to a
    # recorded-only number on runners whose timing noise is un-baselined.
    if not os.environ.get("BENCH_SHARDED_NO_GATE"):
        assert sharded_time <= 3.0 * single_time


def test_parallel_pipeline_speedup_and_parity(benchmark, week_dataset):
    """Multi-process 3-type pipeline: exact parity, gated speedup, artifact."""
    series = week_dataset.series
    single_config = StreamingConfig(min_train_bins=WARMUP_BINS,
                                    recalibrate_every_bins=RECALIBRATE_BINS)
    sharded_config = StreamingConfig(min_train_bins=WARMUP_BINS,
                                     recalibrate_every_bins=RECALIBRATE_BINS,
                                     n_shards=N_SHARDS)

    def run_single():
        return stream_detect(chunk_series(series, CHUNK_BINS), single_config)

    def run_sharded_single_proc():
        return stream_detect(chunk_series(series, CHUNK_BINS), sharded_config)

    def run_parallel():
        return parallel_stream_detect(chunk_series(series, CHUNK_BINS),
                                      sharded_config, n_workers=N_SHARDS)

    single_time, baseline = best_of(2, run_single)
    sharded_time, sharded = best_of(2, run_sharded_single_proc)
    parallel_time, parallel = best_of(3, run_parallel)
    run_once(benchmark, run_parallel)

    sharded_parity = event_parity(baseline.events, sharded.events)
    parallel_parity = event_parity(baseline.events, parallel.events)
    bins = series.n_bins
    speedup = single_time / parallel_time
    cores = os.cpu_count() or 1
    min_speedup = float(os.environ.get(
        "BENCH_SHARDED_MIN_SPEEDUP",
        trajectory_floor("bench_sharded", "parallel_speedup_vs_baseline",
                         MIN_PARALLEL_SPEEDUP)))
    gate_enforced = (cores >= MIN_CORES_FOR_GATE
                     and not os.environ.get("BENCH_SHARDED_NO_GATE"))

    record = {
        "benchmark": "bench_sharded",
        "n_bins": bins,
        "n_od_pairs": series.n_od_pairs,
        "n_traffic_types": len(series.traffic_types),
        "chunk_bins": CHUNK_BINS,
        "n_shards": N_SHARDS,
        "n_workers_requested": N_SHARDS,
        # The pool caps workers at one per traffic type (a type's detector
        # lives in exactly one process) — this is the process count that ran.
        "n_workers_effective": min(N_SHARDS, len(series.traffic_types)),
        "cpu_count": cores,
        "baseline_bins_per_sec": round(bins / single_time, 1),
        "sharded_single_proc_bins_per_sec": round(bins / sharded_time, 1),
        "parallel_bins_per_sec": round(bins / parallel_time, 1),
        "parallel_speedup_vs_baseline": round(speedup, 3),
        "n_events": baseline.n_events,
        # Mismatching events are embedded in full (EventParityReport.to_dict)
        # so a failed parity gate is diagnosable from the artifact alone.
        "parity": {
            "sharded": sharded_parity.to_dict(),
            "parallel": parallel_parity.to_dict(),
        },
        "gate": {
            "min_speedup": min_speedup,
            "min_cores": MIN_CORES_FOR_GATE,
            "enforced": gate_enforced,
        },
    }
    # Written BEFORE any assert: when a gate fails, the artifact holding the
    # evidence must still exist (CI uploads it with if: always()).
    artifact = artifact_path("bench_sharded.json")
    artifact.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    benchmark.extra_info.update(
        {k: v for k, v in record.items() if isinstance(v, (int, float))})
    print(f"\n3-type pipeline over {bins} bins: single-process "
          f"{single_time:.2f}s ({bins / single_time:,.0f} bins/sec), "
          f"K={N_SHARDS} parallel {parallel_time:.2f}s "
          f"({bins / parallel_time:,.0f} bins/sec) -> {speedup:.2f}x "
          f"on {cores} core(s); BENCH artifact: {artifact}")

    # Merge parity at paper scale: sharded and parallel runs must reproduce
    # the single-process event list exactly (the repo's core guarantee —
    # not disabled by BENCH_SHARDED_NO_GATE).
    assert sharded_parity.exact, ("sharded", sharded_parity.to_dict())
    assert parallel_parity.exact, ("parallel", parallel_parity.to_dict())
    for name, candidate in (("sharded", sharded), ("parallel", parallel)):
        full = report_parity(baseline, candidate)
        assert all(full["equal"].values()), (name, full["equal"])

    if gate_enforced:
        assert speedup >= min_speedup, (
            f"parallel pipeline speedup {speedup:.2f}x is below the "
            f"{min_speedup}x floor on a {cores}-core machine")
    else:
        print(f"speedup gate not enforced (cores={cores}, "
              f"BENCH_SHARDED_NO_GATE="
              f"{os.environ.get('BENCH_SHARDED_NO_GATE', '')!r}); "
              f"parity still verified")
