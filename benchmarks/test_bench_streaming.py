"""Benchmark E9 — streaming subspace detection throughput.

Measures the online detector on one week of 5-minute bins (n = 2016,
p = 121) and records the two numbers future PRs must not regress:

* **streaming throughput** in bins/sec for the full three-type live
  pipeline (chunked ingestion, incremental PCA, control limits, event
  fusion);
* the **speedup of the incremental model maintenance** over the naive
  alternative — refitting a full SVD on all history at every chunk — which
  the acceptance bar pins at >= 5x.

Identification is disabled in the speedup comparison so both sides measure
model maintenance + detection (the naive path would otherwise spend most of
its time in the identical greedy identification code).
"""

from conftest import best_of, run_once

from repro.core import SubspaceDetector
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    StreamingConfig,
    StreamingSubspaceDetector,
    chunk_series,
    stream_detect,
)

#: Chunk size (bins) of the simulated live feed: 32 bins = ~2.7 hours.
CHUNK_BINS = 32
#: Recalibration cadence of the streaming model (bins): every 3 chunks.
RECALIBRATE_BINS = 96
#: Warmup before either strategy starts flagging (one day of bins); models
#: trained on less are too noisy for a meaningful detection comparison.
WARMUP_BINS = 288
#: Acceptance floor on the incremental-vs-refit speedup.
MIN_SPEEDUP = 5.0


def _naive_refit_pass(matrix):
    """Per-chunk full-SVD refit on all history seen so far (the baseline)."""
    n_detections = 0
    for start in range(0, matrix.shape[0], CHUNK_BINS):
        history = matrix[:start + CHUNK_BINS]
        if history.shape[0] < WARMUP_BINS:
            continue
        detector = SubspaceDetector()
        detector.fit(history)
        result = detector.detect(matrix[start:start + CHUNK_BINS])
        n_detections += len(result.detections)
    return n_detections


def _streaming_pass(matrix):
    """The same chunked detection with incrementally maintained moments."""
    config = StreamingConfig(identify=False, min_train_bins=WARMUP_BINS,
                             recalibrate_every_bins=RECALIBRATE_BINS)
    detector = StreamingSubspaceDetector(config)
    n_detections = 0
    for start in range(0, matrix.shape[0], CHUNK_BINS):
        result = detector.process_chunk(matrix[start:start + CHUNK_BINS])
        n_detections += len(result.detections)
    return n_detections


def test_streaming_pipeline_throughput(benchmark, week_dataset):
    """Full three-type live pipeline throughput in bins/sec."""
    series = week_dataset.series
    config = StreamingConfig(min_train_bins=128,
                             recalibrate_every_bins=RECALIBRATE_BINS)

    def run():
        return stream_detect(chunk_series(series, CHUNK_BINS), config)

    report = run_once(benchmark, run)
    elapsed = benchmark.stats.stats.mean
    bins_per_sec = series.n_bins / elapsed
    benchmark.extra_info["bins_per_sec"] = round(bins_per_sec, 1)
    benchmark.extra_info["n_events"] = report.n_events

    print(f"\nstreaming pipeline: {series.n_bins} bins x "
          f"{len(series.traffic_types)} traffic types in {elapsed:.2f}s "
          f"-> {bins_per_sec:,.0f} bins/sec, {report.n_events} events")

    assert report.n_bins_processed == series.n_bins
    assert report.n_events > 0
    # A week must process in far less than a week (real-time factor >> 1).
    assert bins_per_sec > 100


def test_streaming_speedup_over_full_refit(benchmark, week_dataset):
    """Incremental maintenance must beat per-chunk full-SVD refit >= 5x."""
    matrix = week_dataset.series.matrix(TrafficType.BYTES)

    # Warm the BLAS/LAPACK paths once, then take the best of 3 for both
    # sides so the asserted ratio is not at the mercy of scheduler noise.
    _streaming_pass(matrix)
    naive_time, _ = best_of(3, _naive_refit_pass, matrix)
    streaming_time, _ = best_of(3, _streaming_pass, matrix)

    def run():
        return _streaming_pass(matrix)

    streaming_detections = run_once(benchmark, run)
    naive_detections = _naive_refit_pass(matrix)

    speedup = naive_time / streaming_time
    benchmark.extra_info["speedup_vs_full_refit"] = round(speedup, 2)
    benchmark.extra_info["streaming_bins_per_sec"] = round(
        matrix.shape[0] / streaming_time, 1)

    print(f"\nnaive full-SVD refit: {naive_time:.3f}s, "
          f"incremental: {streaming_time:.3f}s -> {speedup:.1f}x speedup "
          f"({naive_detections} vs {streaming_detections} detections)")

    assert speedup >= MIN_SPEEDUP
    # Both maintenance strategies see essentially the same anomalies.
    assert streaming_detections > 0
    assert abs(streaming_detections - naive_detections) <= \
        0.25 * max(streaming_detections, naive_detections)
