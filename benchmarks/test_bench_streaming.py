"""Benchmark E9 — streaming subspace detection throughput.

Measures the online detector on one week of 5-minute bins (n = 2016,
p = 121) and records the two numbers future PRs must not regress:

* **streaming throughput** in bins/sec for the full three-type live
  pipeline (chunked ingestion, incremental PCA, control limits, event
  fusion);
* the **speedup of the incremental model maintenance** over the naive
  alternative — refitting a full SVD on all history at every chunk — which
  the acceptance bar pins at >= 5x.

Identification is disabled in the speedup comparison so both sides measure
model maintenance + detection (the naive path would otherwise spend most of
its time in the identical greedy identification code).

A third benchmark guards the **telemetry plane**: running the identical
pipeline with ``telemetry=True`` (metrics registry + sampled tracing +
periodic snapshots) must cost at most {MAX_TELEMETRY_OVERHEAD:.0%} extra
wall time and must not change a single event.  Tunable without editing the
file: ``BENCH_TELEMETRY_MAX_OVERHEAD`` overrides the ceiling and
``BENCH_TELEMETRY_NO_GATE=1`` downgrades it to a recorded-only number (for
noisy shared machines); the bit-identical-events check always runs.
"""

import dataclasses
import json
import os

from conftest import artifact_path, best_of, run_once

from repro.core import SubspaceDetector
from repro.core.events import count_by_label
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    StreamingConfig,
    StreamingSubspaceDetector,
    chunk_series,
    stream_detect,
)
from repro.telemetry import HealthSnapshot

#: Chunk size (bins) of the simulated live feed: 32 bins = ~2.7 hours.
CHUNK_BINS = 32
#: Recalibration cadence of the streaming model (bins): every 3 chunks.
RECALIBRATE_BINS = 96
#: Warmup before either strategy starts flagging (one day of bins); models
#: trained on less are too noisy for a meaningful detection comparison.
WARMUP_BINS = 288
#: Acceptance floor on the incremental-vs-refit speedup.
MIN_SPEEDUP = 5.0
#: Ceiling on the extra wall time of an instrumented run (fraction).
MAX_TELEMETRY_OVERHEAD = 0.10


def _naive_refit_pass(matrix):
    """Per-chunk full-SVD refit on all history seen so far (the baseline)."""
    n_detections = 0
    for start in range(0, matrix.shape[0], CHUNK_BINS):
        history = matrix[:start + CHUNK_BINS]
        if history.shape[0] < WARMUP_BINS:
            continue
        detector = SubspaceDetector()
        detector.fit(history)
        result = detector.detect(matrix[start:start + CHUNK_BINS])
        n_detections += len(result.detections)
    return n_detections


def _streaming_pass(matrix):
    """The same chunked detection with incrementally maintained moments."""
    config = StreamingConfig(identify=False, min_train_bins=WARMUP_BINS,
                             recalibrate_every_bins=RECALIBRATE_BINS)
    detector = StreamingSubspaceDetector(config)
    n_detections = 0
    for start in range(0, matrix.shape[0], CHUNK_BINS):
        result = detector.process_chunk(matrix[start:start + CHUNK_BINS])
        n_detections += len(result.detections)
    return n_detections


def test_streaming_pipeline_throughput(benchmark, week_dataset):
    """Full three-type live pipeline throughput in bins/sec."""
    series = week_dataset.series
    config = StreamingConfig(min_train_bins=128,
                             recalibrate_every_bins=RECALIBRATE_BINS)

    def run():
        return stream_detect(chunk_series(series, CHUNK_BINS), config)

    report = run_once(benchmark, run)
    elapsed = benchmark.stats.stats.mean
    bins_per_sec = series.n_bins / elapsed
    benchmark.extra_info["bins_per_sec"] = round(bins_per_sec, 1)
    benchmark.extra_info["n_events"] = report.n_events

    print(f"\nstreaming pipeline: {series.n_bins} bins x "
          f"{len(series.traffic_types)} traffic types in {elapsed:.2f}s "
          f"-> {bins_per_sec:,.0f} bins/sec, {report.n_events} events")

    assert report.n_bins_processed == series.n_bins
    assert report.n_events > 0
    # A week must process in far less than a week (real-time factor >> 1).
    assert bins_per_sec > 100


def test_streaming_speedup_over_full_refit(benchmark, week_dataset):
    """Incremental maintenance must beat per-chunk full-SVD refit >= 5x."""
    matrix = week_dataset.series.matrix(TrafficType.BYTES)

    # Warm the BLAS/LAPACK paths once, then take the best of 3 for both
    # sides so the asserted ratio is not at the mercy of scheduler noise.
    _streaming_pass(matrix)
    naive_time, _ = best_of(3, _naive_refit_pass, matrix)
    streaming_time, _ = best_of(3, _streaming_pass, matrix)

    def run():
        return _streaming_pass(matrix)

    streaming_detections = run_once(benchmark, run)
    naive_detections = _naive_refit_pass(matrix)

    speedup = naive_time / streaming_time
    benchmark.extra_info["speedup_vs_full_refit"] = round(speedup, 2)
    benchmark.extra_info["streaming_bins_per_sec"] = round(
        matrix.shape[0] / streaming_time, 1)

    print(f"\nnaive full-SVD refit: {naive_time:.3f}s, "
          f"incremental: {streaming_time:.3f}s -> {speedup:.1f}x speedup "
          f"({naive_detections} vs {streaming_detections} detections)")

    assert speedup >= MIN_SPEEDUP
    # Both maintenance strategies see essentially the same anomalies.
    assert streaming_detections > 0
    assert abs(streaming_detections - naive_detections) <= \
        0.25 * max(streaming_detections, naive_detections)


def test_streaming_telemetry_overhead(benchmark, week_dataset, tmp_path):
    """Instrumented pipeline: <= 10% overhead, bit-identical events."""
    series = week_dataset.series
    disabled_config = StreamingConfig(min_train_bins=128,
                                      recalibrate_every_bins=RECALIBRATE_BINS)
    instrumented_config = dataclasses.replace(
        disabled_config, telemetry=True,
        # Production-shaped settings: sparse trace sampling, periodic
        # snapshot writes — the overhead measured is the overhead shipped.
        telemetry_sample_rate=0.05,
        telemetry_trace_path=str(tmp_path / "trace.jsonl"),
        telemetry_snapshot_path=str(tmp_path / "health.json"),
        telemetry_snapshot_every_chunks=16)

    def run_disabled():
        return stream_detect(chunk_series(series, CHUNK_BINS),
                             disabled_config)

    def run_instrumented():
        return stream_detect(chunk_series(series, CHUNK_BINS),
                             instrumented_config)

    def measure(pairs):
        # Interleave the timed pairs: run-to-run scheduler drift (easily
        # +-20% on a shared box) then lands on both sides roughly equally,
        # and the min per side squeezes it out of the asserted ratio.
        disabled = instrumented = float("inf")
        for _ in range(pairs):
            disabled = min(disabled, best_of(1, run_disabled)[0])
            instrumented = min(instrumented, best_of(1, run_instrumented)[0])
        return disabled, instrumented

    plain = run_disabled()        # warm caches/BLAS once before timing,
    monitored = run_instrumented()  # and pin the (deterministic) reports
    disabled_time, instrumented_time = measure(pairs=5)
    if instrumented_time / disabled_time - 1.0 > MAX_TELEMETRY_OVERHEAD:
        # A transient load spike can fake >10% on a 0.5 s run; a genuine
        # regression also survives a longer second look, noise rarely does.
        print("\nfirst overhead measurement above the ceiling; re-measuring")
        disabled_time, instrumented_time = measure(pairs=9)
    run_once(benchmark, run_instrumented)

    overhead = instrumented_time / disabled_time - 1.0
    snapshot = HealthSnapshot.read(instrumented_config.telemetry_snapshot_path)
    max_overhead = float(os.environ.get("BENCH_TELEMETRY_MAX_OVERHEAD",
                                        MAX_TELEMETRY_OVERHEAD))
    gate_enforced = not os.environ.get("BENCH_TELEMETRY_NO_GATE")

    record = {
        "benchmark": "bench_telemetry",
        "n_bins": series.n_bins,
        "n_od_pairs": series.n_od_pairs,
        "n_traffic_types": len(series.traffic_types),
        "chunk_bins": CHUNK_BINS,
        "sample_rate": instrumented_config.telemetry_sample_rate,
        "disabled_bins_per_sec": round(series.n_bins / disabled_time, 1),
        "instrumented_bins_per_sec": round(
            series.n_bins / instrumented_time, 1),
        # NOTE: deliberately not named "*speedup*" — tools/bench_trajectory
        # gates those as must-not-fall ratios, and overhead is the inverse.
        "telemetry_overhead_fraction": round(overhead, 4),
        "events_identical": monitored.events == plain.events,
        "snapshot": {
            "bins_processed": snapshot.bins_processed,
            "events_total": snapshot.events_total,
            "recalibrations": snapshot.recalibrations,
        },
        "gate": {
            "max_overhead": max_overhead,
            "enforced": gate_enforced,
        },
    }
    # Written BEFORE any assert: when a gate fails, the artifact holding the
    # evidence must still exist (CI uploads it with if: always()).
    artifact = artifact_path("bench_telemetry.json")
    artifact.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    benchmark.extra_info.update(
        {k: v for k, v in record.items() if isinstance(v, (int, float))})
    print(f"\ntelemetry overhead over {series.n_bins} bins: disabled "
          f"{disabled_time:.2f}s, instrumented {instrumented_time:.2f}s "
          f"-> {overhead:+.1%} (ceiling {max_overhead:.0%}); "
          f"BENCH artifact: {artifact}")

    # The observability plane may never change an observation (not
    # disabled by BENCH_TELEMETRY_NO_GATE).
    assert monitored.events == plain.events
    assert monitored.detections == plain.detections
    # The merged snapshot must reconcile exactly with the report.
    assert snapshot.bins_processed == monitored.n_bins_processed
    assert snapshot.events_total == monitored.n_events
    assert snapshot.events_by_type == count_by_label(monitored.events)

    if gate_enforced:
        assert overhead <= max_overhead, (
            f"telemetry overhead {overhead:+.1%} exceeds the "
            f"{max_overhead:.0%} ceiling")
    else:
        print("overhead gate not enforced (BENCH_TELEMETRY_NO_GATE="
              f"{os.environ.get('BENCH_TELEMETRY_NO_GATE', '')!r}); "
              "event identity still verified")
