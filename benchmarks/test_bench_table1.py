"""Benchmark E2 — Table 1: anomalies found per traffic-type combination.

Runs the full diagnosis on one week of data and reports the event counts per
combination label next to the paper's four-week counts.  Checked shape
claims: each traffic type detects anomalies on its own, byte+flow-only (BF)
detections are (nearly) absent, and multi-type detections are the minority
relative to the dominant single-type classes in the paper's data.
"""

from conftest import run_once

from repro.evaluation.experiments import run_table1


def test_table1_counts_by_traffic_type(benchmark, week_dataset):
    result = run_once(benchmark, run_table1, week_dataset)

    print()
    print(result.render())

    assert result.total_events > 20
    # Every individual traffic type contributes detections of its own.
    assert result.each_type_contributes()
    # BF is empty in the paper; allow at most a stray event here.
    assert result.counts["BF"] <= 1
    # All seven combination labels are accounted for.
    assert set(result.counts) == {"B", "F", "P", "BF", "BP", "FP", "BFP"}
