"""Benchmark E4 — Table 2: per-anomaly-type signatures.

Verifies, for every injected anomaly type, that the detected events exhibit
the traffic-type and dominant-attribute signature the paper's Table 2
describes (ALPHA: byte/packet spike with dominant source and destination;
DOS: packet/flow spike toward a dominant destination with no dominant
source; SCAN/WORM: flow spikes; OUTAGE: a drop across all types; ...).
"""

from conftest import run_once

from repro.anomalies.types import AnomalyType
from repro.evaluation.experiments import run_table2


def test_table2_signatures(benchmark, week_dataset):
    result = run_once(benchmark, run_table2, week_dataset)

    print()
    print(result.render())

    # Overall, detected instances match the paper's stated signatures.
    assert result.overall_consistency() > 0.7

    alpha = result.observation(AnomalyType.ALPHA)
    assert alpha.detection_rate > 0.7
    assert alpha.dominant_src_count >= 0.8 * alpha.n_detected
    assert alpha.dominant_dst_count >= 0.8 * alpha.n_detected

    dos = result.observation(AnomalyType.DOS)
    assert dos.detection_rate > 0.6
    # DOS attacks concentrate on one victim but come from spoofed sources.
    assert dos.dominant_dst_count >= 0.8 * dos.n_detected
    assert dos.dominant_src_count <= 0.4 * max(dos.n_detected, 1)

    scan = result.observation(AnomalyType.SCAN)
    assert scan.n_detected > 0
    assert scan.dominant_src_count >= 0.7 * scan.n_detected
