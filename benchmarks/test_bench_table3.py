"""Benchmark E5 — Table 3: range of anomalies found for each traffic type.

Runs detection + classification + ground-truth matching over one week and
produces the classified-type x traffic-type cross-tab next to the paper's
numbers.  Checked shape claims: ALPHA events are detected through byte/packet
traffic, DOS attacks are never byte-only detections, SCAN and FLASH events
are detected through IP-flow counts, the false-alarm fraction is small
(paper: ~8%), and a minority of events remains unclassified (paper: ~10%).
"""

from conftest import run_once

from repro.evaluation.experiments import run_table3


def test_table3_classification_crosstab(benchmark, week_dataset):
    result = run_once(benchmark, run_table3, week_dataset)

    print()
    print(result.render())

    assert result.total_events() > 20
    # Detection quality against the injected ground truth.
    assert result.detection.detection_rate > 0.75
    # False alarms are a small fraction of all events (paper: ~8%).
    assert result.false_alarm_fraction() < 0.15
    # A minority of events stays unclassified (paper: ~10%).
    assert result.unknown_fraction() < 0.30
    # The classifier recovers the injected type for most matched events.
    assert result.classification_accuracy() > 0.6
    # ALPHA events are found through byte/packet traffic ...
    if result.column_total("ALPHA"):
        assert result.alpha_in_byte_rows_fraction() > 0.5
    # ... while DOS attacks are never byte-only detections.
    assert result.dos_in_byte_only_row() == 0
