#!/usr/bin/env python
"""Anomaly zoo: inject one anomaly of every type and watch it get diagnosed.

For each anomaly type in Table 2 of the paper (ALPHA, DOS, DDOS, FLASH
CROWD, SCAN, WORM, POINT-TO-MULTIPOINT, OUTAGE, INGRESS-SHIFT) this example
injects a single controlled instance into clean background traffic, runs
detection, and classifies the resulting events with the dominant-attribute
rules — printing, for each injected anomaly, whether it was detected, in
which traffic types, and what the classifier called it.

Run with::

    python examples/anomaly_zoo.py
"""

from repro.anomalies import (
    AlphaInjector,
    DosInjector,
    FlashCrowdInjector,
    IngressShiftInjector,
    OutageInjector,
    PointMultipointInjector,
    ScanInjector,
    WormInjector,
)
from repro.classification import DominanceAnalyzer, RuleBasedClassifier, extract_event_features
from repro.core import detect_network_anomalies
from repro.datasets import DatasetConfig, generate_abilene_dataset


def build_injectors():
    """One hand-tuned instance of every Table 2 anomaly type."""
    return [
        AlphaInjector(start_bin=60, duration_bins=2, od_pair=("LOSA", "NYCM"),
                      magnitude=7.0, dst_port=5001),
        DosInjector(start_bin=120, duration_bins=3, od_pairs=[("CHIN", "WASH")],
                    magnitude=7.0, target_port=0, packets_per_flow=3.0),
        DosInjector(start_bin=180, duration_bins=3,
                    od_pairs=[("STTL", "ATLA"), ("SNVA", "ATLA"), ("DNVR", "ATLA")],
                    magnitude=10.0, target_port=113, packets_per_flow=2.0),
        FlashCrowdInjector(start_bin=240, duration_bins=2, od_pair=("ATLA", "SNVA"),
                           magnitude=7.0, service_port=80),
        ScanInjector(start_bin=300, duration_bins=2, od_pair=("DNVR", "HSTN"),
                     magnitude=6.0, network_scan=True, target_port=139),
        WormInjector(start_bin=360, duration_bins=2,
                     od_pairs=[("CHIN", "ATLA"), ("NYCM", "LOSA"), ("STTL", "HSTN")],
                     magnitude=12.0, worm_port=1433),
        PointMultipointInjector(start_bin=420, duration_bins=2,
                                od_pairs=[("WASH", "LOSA"), ("WASH", "SNVA"),
                                          ("WASH", "CHIN")],
                                magnitude=9.0, content_port=119),
        OutageInjector(start_bin=480, duration_bins=12, pop="LOSA"),
        IngressShiftInjector(start_bin=560, duration_bins=12, from_pop="LOSA",
                             to_pop="SNVA", shifted_fraction=0.8, customer="CALREN"),
    ]


def main() -> None:
    dataset = generate_abilene_dataset(
        DatasetConfig(weeks=3.0 / 7.0, schedule=None),
        seed=21,
        injectors=build_injectors(),
    )
    print(f"injected {len(dataset.ground_truth)} anomalies into "
          f"{dataset.n_bins} bins of clean traffic\n")

    report = detect_network_anomalies(dataset.series)
    analyzer = DominanceAnalyzer(dataset.series, dataset.composition)
    classifier = RuleBasedClassifier()

    for anomaly in dataset.ground_truth:
        matching = [e for e in report.events if e.overlaps_bins(anomaly.bins)]
        print(f"{anomaly.anomaly_type.value.upper():<17} bins "
              f"{anomaly.start_bin}-{anomaly.end_bin}  ({anomaly.description})")
        if not matching:
            print("   -> NOT detected")
            continue
        for event in matching[:3]:
            features = extract_event_features(event, dataset.series, analyzer)
            verdict = classifier.classify(features)
            print(f"   -> detected as [{event.traffic_label}] event, "
                  f"bins {event.start_bin}-{event.end_bin}, "
                  f"classified {verdict.anomaly_type.value.upper()}"
                  f"  ({verdict.rationale})")
        print()


if __name__ == "__main__":
    main()
