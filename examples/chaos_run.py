#!/usr/bin/env python
"""Chaos demo: seeded faults against the fault-tolerant runtime.

Three recovery paths, each ending in exact parity with an undisturbed
run (the invariants ``tests/test_chaos.py`` enforces in CI):

1. a shard worker is **killed** mid-stream and the
   :class:`~repro.streaming.parallel.WorkerSupervisor` restarts it from
   the last good checkpoint, replaying the suffix — identical events;
2. the newest checkpoint generation is **truncated** (a torn write) and
   ``load_checkpoint(fallback=True)`` quarantines the damaged files and
   restores the previous verified generation — identical events after
   the suffix replay;
3. an ingestion **leaf goes silent** and the hierarchy quarantines it at
   its watermark deadline, continuing over the healthy sub-hierarchy.

Run with::

    python examples/chaos_run.py
"""

import tempfile
from pathlib import Path

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.evaluation import event_parity
from repro.faults import FaultPlan, corrupt_checkpoint
from repro.streaming import (
    ChunkedSeriesSource,
    StreamingConfig,
    StreamingNetworkDetector,
    WorkerSupervisor,
    chunk_series,
    load_checkpoint,
    parallel_stream_detect,
    save_checkpoint,
)
from repro.streaming.hierarchy import HierarchicalNetworkDetector
from repro.telemetry import MetricsRegistry

CHUNK = 48
SEED = 11


def main() -> None:
    dataset = generate_abilene_dataset(DatasetConfig(weeks=2.0 / 7.0),
                                       seed=SEED)
    series = dataset.series
    print(f"dataset: {series.n_bins} bins x {series.n_od_pairs} OD pairs")

    # ------------------------------------------------------------------ #
    # 1. Worker killed mid-stream: supervised restart, event parity.
    # ------------------------------------------------------------------ #
    config = StreamingConfig(min_train_bins=128, recalibrate_every_bins=32,
                             parallel_mode="shard")
    source = ChunkedSeriesSource(series, CHUNK)
    baseline = parallel_stream_detect(source, config, n_workers=2)
    print(f"undisturbed run:   {baseline.n_events} events")

    plan = FaultPlan().kill_worker(at_chunk=8, worker=0)
    print("fault plan:        " + "; ".join(plan.describe()))
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory() as tmp:
        supervisor = WorkerSupervisor(
            config, source, n_workers=2,
            checkpoint_dir=Path(tmp) / "ckpt", checkpoint_every_chunks=3,
            max_restarts=2, registry=registry, fault_hook=plan.hook)
        report = supervisor.run()
    parity = event_parity(baseline.events, report.events)
    print(f"supervised run:    {report.n_events} events after "
          f"{supervisor.restarts} restart(s), exact parity: {parity.exact}")

    # ------------------------------------------------------------------ #
    # 2. Torn checkpoint write: fallback to the previous generation.
    # ------------------------------------------------------------------ #
    flat_config = StreamingConfig(min_train_bins=128,
                                  recalibrate_every_bins=32)
    chunks = list(chunk_series(series, CHUNK))
    reference = StreamingNetworkDetector(flat_config)
    for chunk in chunks:
        reference.process_chunk(chunk)
    reference_report = reference.finish()

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "ckpt"
        detector = StreamingNetworkDetector(flat_config)
        for index, chunk in enumerate(chunks[:8]):
            detector.process_chunk(chunk)
            if (index + 1) % 2 == 0:
                save_checkpoint(detector, checkpoint_dir)
        (victim,) = corrupt_checkpoint(checkpoint_dir, mode="truncate")
        print(f"truncated newest checkpoint arrays: {Path(victim).name}")

        restore_registry = MetricsRegistry()
        restored = load_checkpoint(checkpoint_dir, fallback=True,
                                   registry=restore_registry)
        print(f"fallback restore:  resumed at chunk "
              f"{restored.report.n_chunks_processed}, "
              f"{int(restore_registry.value('checkpoints_quarantined'))} "
              f"file(s) quarantined (never deleted)")
        for chunk in chunks[restored.report.n_chunks_processed:]:
            restored.process_chunk(chunk)
        restored_report = restored.finish()
    parity = event_parity(reference_report.events, restored_report.events)
    print(f"replayed suffix:   {restored_report.n_events} events, "
          f"exact parity: {parity.exact}")

    # ------------------------------------------------------------------ #
    # 3. Silent leaf: quarantined at the watermark deadline.
    # ------------------------------------------------------------------ #
    hierarchy = HierarchicalNetworkDetector(flat_config, n_pops=2,
                                            leaf_deadline_bins=2 * CHUNK)
    healthy = [c for i, c in enumerate(chunks) if i % 2 == 0]
    for chunk in healthy:
        hierarchy.process_chunk(chunk, pop=0)  # pop 1 never reports
    report = hierarchy.finish()
    print(f"silent leaf:       pop(s) {sorted(hierarchy.quarantined_pops)} "
          f"quarantined, coverage {hierarchy.coverage:.2f}, detection "
          f"continued over {report.n_bins_processed} healthy bins")


if __name__ == "__main__":
    main()
