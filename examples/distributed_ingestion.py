#!/usr/bin/env python
"""The distributed ingestion plane, end to end.

Builds on ``examples/streaming_checkpoint.py`` with the pieces that spread
one live diagnosis over processes and sites:

1. **shard-parallel workers** over the shared-memory chunk bus
   (``parallel_stream_detect(mode="shard")``): each worker owns one column
   shard of *every* per-type detector, so the speedup follows the worker
   count instead of saturating at the 3 traffic types — with the identical
   event list, and periodic checkpoints that restore as ordinary flat
   detectors;
2. an **asyncio feed** (``AsyncChunkSource``): an async producer pushes
   chunks with bounded backpressure and watermarks while the synchronous
   driver consumes them unchanged;
3. a **2-PoP hierarchy** (``HierarchicalNetworkDetector``): each PoP
   ingests only its own chunks, the global detector folds the per-PoP
   moment engines with the exact parallel-moments merge — event-identical
   to the flat run — and **checkpointing the hierarchy checkpoints the
   merged state**: the saved directory restores as a flat detector that
   finishes the stream with the identical remaining events.

Run with::

    python examples/distributed_ingestion.py
"""

import asyncio
import tempfile
import threading
from pathlib import Path

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.evaluation import event_parity
from repro.streaming import (
    AsyncChunkSource,
    HierarchicalNetworkDetector,
    StreamingConfig,
    StreamingNetworkDetector,
    chunk_series,
    parallel_stream_detect,
    stream_detect,
)

CHUNK = 48


def main() -> None:
    dataset = generate_abilene_dataset(DatasetConfig(weeks=2.0 / 7.0), seed=7)
    series = dataset.series
    config = StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)
    print(f"dataset: {series.n_bins} bins x {series.n_od_pairs} OD pairs")

    # ------------------------------------------------------------------ #
    # Reference: single-process, single-engine live run.
    # ------------------------------------------------------------------ #
    baseline = stream_detect(chunk_series(series, CHUNK), config)
    print(f"baseline live run:    {baseline.n_events} events")

    # ------------------------------------------------------------------ #
    # 1. Shard-parallel workers over the shared-memory bus, with periodic
    #    checkpoints of the assembled (flat) state.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "shard-ckpt"
        sharded = parallel_stream_detect(
            chunk_series(series, CHUNK), config, mode="shard", n_workers=4,
            checkpoint_dir=checkpoint_dir, checkpoint_every_chunks=4)
        resumed = StreamingNetworkDetector.restore(checkpoint_dir)
        print(f"K=4 shard workers:    {sharded.n_events} events, "
              f"exact parity: "
              f"{event_parity(baseline.events, sharded.events).exact}; "
              f"last checkpoint restores at chunk "
              f"{resumed.report.n_chunks_processed} as a flat detector")

    # ------------------------------------------------------------------ #
    # 2. Asyncio feed: an async producer with bounded backpressure and
    #    watermarks, the same synchronous driver on the consuming side.
    # ------------------------------------------------------------------ #
    source = AsyncChunkSource(maxsize=4)

    def produce() -> None:
        async def pump():
            for chunk in chunk_series(series, CHUNK):
                await source.put(chunk)
            await source.aclose()
        asyncio.run(pump())

    producer = threading.Thread(target=produce, daemon=True)
    producer.start()
    live = stream_detect(source, config)
    producer.join()
    print(f"asyncio feed:         {live.n_events} events, exact parity: "
          f"{event_parity(baseline.events, live.events).exact} "
          f"(consumed watermark {source.consumed_watermark} bins)")

    # ------------------------------------------------------------------ #
    # 3. Two-PoP hierarchy: local ingestion, merged global model, and a
    #    checkpoint of the merged state that resumes as a flat run.
    # ------------------------------------------------------------------ #
    chunks = list(chunk_series(series, CHUNK))
    split = len(chunks) // 2
    hierarchy = HierarchicalNetworkDetector(config, n_pops=2)
    for i, chunk in enumerate(chunks[:split]):
        hierarchy.process_chunk(chunk, pop=i % 2)

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "merged-ckpt"
        hierarchy.save(checkpoint_dir)  # persists the *merged* flat state
        restored = StreamingNetworkDetector.restore(checkpoint_dir)
        for chunk in chunks[split:]:
            restored.process_chunk(chunk)
        report = restored.finish()
    print(f"2-PoP hierarchy:      resumed from the merged checkpoint, "
          f"{report.n_events} events, exact parity: "
          f"{event_parity(baseline.events, report.events).exact}")


if __name__ == "__main__":
    main()
