#!/usr/bin/env python
"""End-to-end measurement pipeline: from packets to OD-flow anomaly detection.

This example walks the full record-level path the paper's data went through:

1. synthesize individual 5-tuple flow records for a slice of OD-level
   traffic (customers of each PoP, realistic application-port mixture);
2. apply 1% random packet sampling with one-minute flow export (Juniper
   Traffic Sampling style);
3. resolve every sampled record to its ingress and egress PoP using router
   configurations and a BGP-style table (with the destination address
   anonymized by 11 bits, as in the Abilene data);
4. aggregate the resolved records into the 5-minute OD-flow traffic matrix;
5. hand the matrix to the subspace detector.

Run with::

    python examples/pipeline_end_to_end.py
"""

from repro.core import SubspaceDetector
from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.flows import TrafficType, aggregate_records, sample_flow_records
from repro.flows.sampling import SamplingConfig
from repro.routing import PoPResolver
from repro.traffic import FlowSynthesizer
from repro.utils.rng import spawn_rng


def main() -> None:
    # OD-level ground truth traffic for a short window (6 hours).
    dataset = generate_abilene_dataset(
        DatasetConfig(weeks=6.0 / (24 * 7), schedule=None), seed=5)
    window = dataset.series
    # Scale volumes down so the record-level expansion stays laptop-sized;
    # rates and structure are unchanged.
    scale = 2e-3
    scaled = window.copy()
    for traffic_type in scaled.traffic_types:
        scaled.matrix(traffic_type)[:] *= scale

    # 1. Expand OD volumes into individual flow records.
    synthesizer = FlowSynthesizer(dataset.network, unresolvable_fraction=0.05,
                                  max_flows_per_cell=150, seed=spawn_rng(5, stream="syn"))
    true_records = list(synthesizer.synthesize_series(scaled))
    print(f"synthesized {len(true_records)} true flow records")

    # 2. 1% packet sampling with per-minute export.
    sampled = sample_flow_records(true_records,
                                  SamplingConfig(sampling_rate=0.1),
                                  seed=spawn_rng(5, stream="sample"))
    print(f"{len(sampled)} records survive packet sampling")

    # 3. Ingress/egress PoP resolution (router configs + BGP, anonymized dst).
    resolver = PoPResolver(dataset.network)
    resolved, stats = resolver.resolve_records(sampled)
    print(f"resolved {stats.resolved_flows}/{stats.total_flows} records "
          f"({stats.flow_resolution_rate:.1%} of flows, "
          f"{stats.byte_resolution_rate:.1%} of bytes) "
          f"- paper reports >93% / >90%")

    # 4. Aggregate into the OD-flow traffic matrix.
    matrix_series = aggregate_records(resolved, scaled.od_pairs, scaled.binning)
    print(f"re-aggregated traffic matrix: {matrix_series.n_bins} bins x "
          f"{matrix_series.n_od_pairs} OD pairs")

    # 5. Run the subspace detector on the re-aggregated packet counts.
    detector = SubspaceDetector(n_normal=4, confidence=0.999)
    result = detector.fit_detect(matrix_series.matrix(TrafficType.PACKETS))
    print(f"subspace detector: {len(result.detections)} bins flagged "
          f"out of {result.n_bins} "
          f"(SPE threshold {result.spe_threshold:.3g}, "
          f"T² threshold {result.t2_threshold:.3g})")


if __name__ == "__main__":
    main()
