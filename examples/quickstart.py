#!/usr/bin/env python
"""Quickstart: detect network-wide anomalies in synthetic Abilene traffic.

Generates two days of Abilene-like OD-flow traffic with a randomized anomaly
schedule, runs the subspace method (PCA + Q-statistic + T²) on the byte,
packet, and IP-flow timeseries, and prints the aggregated anomaly events
next to the injected ground truth.

Run with::

    python examples/quickstart.py
"""

from repro.core import detect_network_anomalies
from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.evaluation import detection_metrics, match_events


def main() -> None:
    # 1. Generate a dataset: 11-PoP Abilene topology, 5-minute bins, two
    #    days of traffic, anomalies of every type injected at random times.
    config = DatasetConfig(weeks=2.0 / 7.0)
    dataset = generate_abilene_dataset(config, seed=7)
    print(f"dataset: {dataset.n_bins} bins x {dataset.n_od_pairs} OD pairs, "
          f"{len(dataset.ground_truth)} injected anomalies")

    # 2. Run the subspace method on all three traffic types.
    report = detect_network_anomalies(dataset.series, n_normal=4, confidence=0.999)
    print(f"detected {report.n_events} anomaly events")
    print("events per traffic-type combination:", report.label_counts())

    # 3. Compare against the injected ground truth.
    match = match_events(report.events, dataset.ground_truth, series=dataset.series)
    metrics = detection_metrics(match)
    print(f"detection rate: {metrics.detection_rate:.1%}  "
          f"false-alarm events: {metrics.n_false_alarms}")

    # 4. Show the first few events with their responsible OD flows.
    print("\nfirst detected events:")
    for event in report.events[:8]:
        od_pairs = [report.od_pair_of(flow) for flow in sorted(event.od_flows)][:3]
        pairs_text = ", ".join(f"{o}->{d}" for o, d in od_pairs)
        print(f"  bins {event.start_bin}-{event.end_bin}  "
              f"[{event.traffic_label:>3}]  {event.n_od_flows} OD flow(s): {pairs_text}")


if __name__ == "__main__":
    main()
