#!/usr/bin/env python
"""Reproduce every table and figure of the paper on a one-week dataset.

Runs the full experiment suite (Figure 1, Table 1, Figure 2, Table 2,
Table 3, the T²/k ablations, the baseline comparison, and the pipeline
resolution-rate experiment) and prints each artifact in the paper's layout.
This is the script behind EXPERIMENTS.md; expect a few minutes of runtime.

Run with::

    python examples/reproduce_paper_tables.py [--weeks 1] [--seed 2004]
"""

import argparse

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.evaluation.experiments import (
    run_ablation_k,
    run_ablation_t2,
    run_baseline_comparison,
    run_figure1,
    run_figure2,
    run_resolution_experiment,
    run_table1,
    run_table2,
    run_table3,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--weeks", type=float, default=1.0,
                        help="length of the synthetic dataset in weeks")
    parser.add_argument("--seed", type=int, default=2004, help="master seed")
    arguments = parser.parse_args()

    print(f"generating {arguments.weeks}-week Abilene-like dataset "
          f"(seed {arguments.seed}) ...")
    dataset = generate_abilene_dataset(DatasetConfig(weeks=arguments.weeks),
                                       seed=arguments.seed)
    print(f"injected ground truth: {len(dataset.ground_truth)} anomalies\n")

    sections = [
        ("Figure 1", lambda: run_figure1(dataset, window_days=3.5)),
        ("Table 1", lambda: run_table1(dataset)),
        ("Figure 2", lambda: run_figure2(dataset)),
        ("Table 2", lambda: run_table2(dataset)),
        ("Table 3", lambda: run_table3(dataset)),
        ("E6 - T2 ablation", lambda: run_ablation_t2(dataset)),
        ("E7 - k sweep", lambda: run_ablation_k(dataset, k_values=(2, 4, 8))),
        ("E8 - baselines", lambda: run_baseline_comparison(dataset)),
        ("E9 - pipeline", lambda: run_resolution_experiment(dataset)),
    ]
    for title, runner in sections:
        print("=" * 78)
        print(title)
        print("=" * 78)
        print(runner().render())
        print()


if __name__ == "__main__":
    main()
