#!/usr/bin/env python
"""The detection service end to end: store, alerts, SIGTERM, restart.

Walks the full detection-as-a-service lifecycle in one process:

1. run a :class:`~repro.service.DetectionService` over a synthetic
   Abilene feed — every closed anomaly event is upserted into a sqlite
   :class:`~repro.service.EventStore` and alerted through an
   :class:`~repro.service.AlertDispatcher` (JSON-lines sink here; webhook
   in production);
2. stop it mid-stream exactly like an init system would (the SIGTERM
   handler finishes the in-flight chunk, checkpoints, flushes, returns);
3. restart from the checkpoint, finish the stream, and verify the
   **service guarantee**: the event table is byte-identical to an
   uninterrupted run's, and no event was alerted twice across the
   restart.

Afterwards it shows the store's query surface (time windows, severity,
summaries) — what ``tools/serve_status.py`` exposes over HTTP.

Run with::

    python examples/service_run.py
"""

import json
import signal
import tempfile
from pathlib import Path

from repro.datasets.streaming import SyntheticChunkSource
from repro.datasets.synthetic import DatasetConfig
from repro.service import AlertDispatcher, DetectionService, EventStore, JsonLinesAlertSink
from repro.streaming import StreamingConfig

CHUNK = 48
DAYS = 3
SEED = 7
CONFIG = StreamingConfig(min_train_bins=256, recalibrate_every_bins=48)


def feed():
    """The deterministic synthetic Abilene feed (DAYS one-day blocks)."""
    return SyntheticChunkSource(
        chunk_size=CHUNK,
        block_config=DatasetConfig(weeks=1.0 / 7.0),
        seed=SEED,
        max_blocks=DAYS,
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="service-run-"))
    alerts_path = workdir / "alerts.jsonl"

    # ------------------------------------------------------------------ #
    # 1. a service that will be "SIGTERMed" mid-stream
    # ------------------------------------------------------------------ #
    store = EventStore(workdir / "events.sqlite")
    dispatcher = AlertDispatcher([JsonLinesAlertSink(str(alerts_path))],
                                 dead_letter_path=str(workdir / "dead.jsonl"))
    service = DetectionService(CONFIG, store=store, dispatcher=dispatcher,
                               checkpoint_dir=workdir / "ckpt")
    service.install_signal_handlers()

    def sigterm_after(chunks, n_chunks):
        """Deliver a real SIGTERM to ourselves after the n-th chunk."""
        for index, chunk in enumerate(chunks, start=1):
            yield chunk
            if index == n_chunks:
                signal.raise_signal(signal.SIGTERM)

    result = service.run(sigterm_after(feed(), 8))
    print(f"interrupted: {result.interrupted} after "
          f"{result.report.n_bins_processed} bins; "
          f"{store.count()} events stored, checkpoint at "
          f"{result.checkpoint_dir}")
    first_alerts = alerts_path.read_text().splitlines() \
        if alerts_path.exists() else []
    store.close()

    # ------------------------------------------------------------------ #
    # 2. restart: resume from the checkpoint, finish the stream
    # ------------------------------------------------------------------ #
    store = EventStore(workdir / "events.sqlite")
    dispatcher = AlertDispatcher([JsonLinesAlertSink(str(alerts_path))])
    resumed = DetectionService(store=store, dispatcher=dispatcher,
                               checkpoint_dir=workdir / "ckpt")
    print(f"restart resumes at bin {resumed.resume_bin}")
    # run() positions any resumable ChunkSource at resume_bin itself —
    # the restarted service is handed the *full* feed.
    final = resumed.run(feed())
    print(f"finished: {store.count()} events total "
          f"({final.events_stored} new after the restart)")

    # ------------------------------------------------------------------ #
    # 3. the guarantee: byte-identical to an uninterrupted run
    # ------------------------------------------------------------------ #
    reference_store = EventStore()
    DetectionService(CONFIG, store=reference_store).run(feed())
    assert store.table_digest() == reference_store.table_digest(), \
        "event tables diverged"
    print(f"byte-identical event table across the restart "
          f"(digest {store.table_digest()[:16]}...)")

    all_alerts = alerts_path.read_text().splitlines()
    keys = [json.loads(line)["key"] for line in all_alerts]
    assert len(keys) == len(set(keys)), "an event was alerted twice"
    print(f"{len(first_alerts)} alerts before the stop, "
          f"{len(all_alerts) - len(first_alerts)} after — no duplicates")

    # ------------------------------------------------------------------ #
    # 4. the query surface (what tools/serve_status.py serves)
    # ------------------------------------------------------------------ #
    print("\nmost recent events:")
    for event in store.recent(limit=3):
        print(f"  [{event.severity:>8}] {event.summary} "
              f"(confidence {event.confidence:.2f})")
    summary = store.summary()
    print(f"\nrun summary: {summary.total_events} events, "
          f"severities {summary.events_by_severity}, "
          f"mean confidence {summary.mean_confidence:.2f}")

    reference_store.close()
    resumed.close()


if __name__ == "__main__":
    main()
