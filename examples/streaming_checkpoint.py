#!/usr/bin/env python
"""Sharded, parallel, and restartable streaming diagnosis.

Builds on ``examples/streaming_quickstart.py`` with the three scale-out
pieces of the streaming subsystem:

1. a **column-sharded** moment engine (``StreamingConfig(n_shards=K)``)
   whose merged covariance — and therefore the emitted event list — is
   identical to the single engine;
2. a **checkpoint/restore** cycle: the detector is stopped mid-stream,
   persisted to an npz + JSON-manifest directory, restored, and fed the
   remaining chunks as a suffix source — emitting the identical remaining
   events;
3. the **multi-process driver** with bounded (backpressure-aware) queues,
   which parallelizes the three traffic types across workers without
   changing a single event.

Run with::

    python examples/streaming_checkpoint.py
"""

import tempfile
from pathlib import Path

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.evaluation import event_parity
from repro.streaming import (
    ChunkedSeriesSource,
    StreamingConfig,
    StreamingNetworkDetector,
    chunk_series,
    parallel_stream_detect,
    stream_detect,
)

CHUNK = 48


def main() -> None:
    dataset = generate_abilene_dataset(DatasetConfig(weeks=2.0 / 7.0), seed=7)
    series = dataset.series
    config = StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)
    print(f"dataset: {series.n_bins} bins x {series.n_od_pairs} OD pairs")

    # ------------------------------------------------------------------ #
    # Reference: single-process, single-engine live run.
    # ------------------------------------------------------------------ #
    baseline = stream_detect(chunk_series(series, CHUNK), config)
    print(f"baseline live run: {baseline.n_events} events")

    # ------------------------------------------------------------------ #
    # 1. Column-sharded engine: identical events, K-way split moments.
    # ------------------------------------------------------------------ #
    sharded_config = StreamingConfig(min_train_bins=128,
                                     recalibrate_every_bins=32, n_shards=4)
    sharded = stream_detect(chunk_series(series, CHUNK), sharded_config)
    print(f"K=4 sharded run:   {sharded.n_events} events, exact parity: "
          f"{event_parity(baseline.events, sharded.events).exact}")

    # ------------------------------------------------------------------ #
    # 2. Checkpoint mid-stream, restore, resume from a suffix source.
    # ------------------------------------------------------------------ #
    chunks = list(chunk_series(series, CHUNK))
    split = len(chunks) // 2
    detector = StreamingNetworkDetector(config)
    for chunk in chunks[:split]:
        detector.process_chunk(chunk)
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "ckpt"
        detector.save(checkpoint_dir)
        kinds = sorted("manifest.json" if p.name == "manifest.json"
                       else "state-<sha256>.npz"
                       for p in checkpoint_dir.iterdir())
        print(f"checkpoint after {split * CHUNK} bins: {kinds}")

        restored = StreamingNetworkDetector.restore(checkpoint_dir)
        resume_bin = split * CHUNK
        suffix = series.window(resume_bin, series.n_bins)
        for chunk in ChunkedSeriesSource(suffix, CHUNK, start_bin=resume_bin):
            restored.process_chunk(chunk)
        report = restored.finish()
    print(f"restored run:      {report.n_events} events, exact parity: "
          f"{event_parity(baseline.events, report.events).exact}")

    # ------------------------------------------------------------------ #
    # 3. Multi-process driver: one worker per traffic type, bounded queues.
    # ------------------------------------------------------------------ #
    parallel = parallel_stream_detect(chunk_series(series, CHUNK),
                                      sharded_config, n_workers=3,
                                      queue_depth=4)
    print(f"parallel run:      {parallel.n_events} events, exact parity: "
          f"{event_parity(baseline.events, parallel.events).exact}")


if __name__ == "__main__":
    main()
