#!/usr/bin/env python
"""Streaming quickstart: online subspace detection over a chunked feed.

Runs the same diagnosis as ``examples/quickstart.py`` but without ever
holding the full OD-flow history: chunks of 5-minute bins flow through the
online PCA engine and the incremental event aggregator.  Three parts:

1. a **two-pass replay** over the quickstart dataset, whose events match
   the batch pipeline exactly (the parity guarantee);
2. a **single-pass live run** with exponential forgetting — the mode that
   serves an unbounded feed, here driven from the block-wise synthetic
   chunk generator;
3. a look at the model state the detector maintains (effective window,
   thresholds).

Run with::

    python examples/streaming_quickstart.py
"""

import itertools

from repro.core import detect_network_anomalies
from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.datasets.streaming import SyntheticChunkSource
from repro.evaluation import event_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    StreamingConfig,
    StreamingNetworkDetector,
    forgetting_from_half_life,
    replay_network_anomalies,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Two-pass chunked replay == batch, with bounded memory.
    # ------------------------------------------------------------------ #
    config = DatasetConfig(weeks=2.0 / 7.0)
    dataset = generate_abilene_dataset(config, seed=7)
    print(f"dataset: {dataset.n_bins} bins x {dataset.n_od_pairs} OD pairs")

    batch = detect_network_anomalies(dataset.series)
    replay = replay_network_anomalies(dataset.series, chunk_size=64)
    parity = event_parity(batch.events, replay.events)
    print(f"replay over {replay.n_chunks_processed} chunks: "
          f"{replay.n_events} events, batch {batch.n_events}, "
          f"exact parity: {parity.exact}")

    # ------------------------------------------------------------------ #
    # 2. Live single-pass detection over an unbounded synthetic feed.
    # ------------------------------------------------------------------ #
    live_config = StreamingConfig(
        forgetting=forgetting_from_half_life(288),  # ~1-day half-life window
        min_train_bins=128,
        recalibrate_every_bins=32,
    )
    detector = StreamingNetworkDetector(live_config)
    feed = SyntheticChunkSource(chunk_size=32, seed=3,
                                block_config=DatasetConfig(weeks=1.0 / 7.0))
    for chunk in itertools.islice(feed, 18):  # consume 576 bins = 2 days
        closed = detector.process_chunk(chunk)
        for event in closed:
            print(f"  live event: bins {event.start_bin}-{event.end_bin} "
                  f"[{event.traffic_label:>3}] {event.n_od_flows} OD flow(s)")
    report = detector.finish()
    print(f"live run: {report.n_bins_processed} bins in "
          f"{report.n_chunks_processed} chunks -> {report.n_events} events "
          f"({report.n_warmup_bins} warmup bins)")

    # ------------------------------------------------------------------ #
    # 3. What the online model maintains.
    # ------------------------------------------------------------------ #
    bytes_detector = detector.detector(TrafficType.BYTES)
    snapshot = bytes_detector.snapshot
    engine = bytes_detector.engine
    print(f"\nbytes model: {engine.n_bins_seen} bins seen, "
          f"effective window {engine.effective_samples:.0f} bins, "
          f"SPE limit {snapshot.limits.spe:.3g}, "
          f"T2 limit {snapshot.limits.t2:.3g}")


if __name__ == "__main__":
    main()
