#!/usr/bin/env python
"""A monitored shard-parallel streaming run: metrics, traces, health.

Enables the telemetry plane (``StreamingConfig(telemetry=True)``) on the
multi-process shard driver and walks the three surfaces it produces:

1. the **merged health snapshot** — every worker ships its metrics
   registry back over the result pipe; the coordinator folds them with
   the same merge algebra as the sharded moments, so per-worker chunk
   counts, stage latency histograms, and recalibration counters all land
   in one JSON file that reconciles exactly with the run's
   ``StreamingReport``;
2. the **trace files** — sampled per-chunk spans (ingest → center →
   update → detect → aggregate) as JSON lines, one file per process
   (the coordinator's plus one ``.shard-K`` suffix per worker);
3. the **renderings** — the status table and Prometheus exposition that
   ``tools/status.py`` serves from the snapshot file.

The observability contract: the monitored run emits the bit-identical
event list of an unmonitored one.  This script checks that too.

Run with::

    python examples/telemetry_run.py
"""

import dataclasses
import json
import tempfile
from pathlib import Path

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.evaluation import event_parity
from repro.streaming import (
    StreamingConfig,
    chunk_series,
    parallel_stream_detect,
    stream_detect,
)
from repro.telemetry import (
    HealthSnapshot,
    prometheus_exposition,
    render_status_table,
)

CHUNK = 48
N_WORKERS = 3


def main() -> None:
    dataset = generate_abilene_dataset(DatasetConfig(weeks=2.0 / 7.0), seed=7)
    series = dataset.series
    base = StreamingConfig(min_train_bins=128, recalibrate_every_bins=96)
    print(f"dataset: {series.n_bins} bins x {series.n_od_pairs} OD pairs")

    # Reference: the same pipeline with telemetry off (the default).
    plain = stream_detect(chunk_series(series, CHUNK), base)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        config = dataclasses.replace(
            base,
            telemetry=True,
            telemetry_sample_rate=0.5,      # trace every other chunk
            telemetry_trace_path=str(tmp_path / "trace.jsonl"),
            telemetry_snapshot_path=str(tmp_path / "health.json"),
            telemetry_snapshot_every_chunks=4,
        )

        # ---------------------------------------------------------- #
        # Monitored shard-parallel run: K workers each own a column
        # shard of every per-type detector; each also owns a metrics
        # registry it ships back when the stream ends.
        # ---------------------------------------------------------- #
        report = parallel_stream_detect(
            chunk_series(series, CHUNK), config,
            n_workers=N_WORKERS, mode="shard")
        parity = event_parity(plain.events, report.events)
        print(f"monitored shard run: {report.n_events} events, "
              f"{report.bins_per_second:,.0f} bins/sec, "
              f"exact parity with unmonitored run: {parity.exact}")

        # ---------------------------------------------------------- #
        # 1. The merged snapshot reconciles with the report exactly.
        # ---------------------------------------------------------- #
        snapshot = HealthSnapshot.read(config.telemetry_snapshot_path)
        print(f"\nsnapshot: {snapshot.bins_processed} bins, "
              f"{snapshot.events_total} events, "
              f"{snapshot.recalibrations} recalibrations")
        print(f"per-worker chunk counts: {snapshot.workers}")
        assert snapshot.bins_processed == report.n_bins_processed
        assert snapshot.events_total == report.n_events

        # ---------------------------------------------------------- #
        # 2. Trace spans: the coordinator's file plus one per worker.
        # ---------------------------------------------------------- #
        trace_files = sorted(p.name for p in tmp_path.iterdir()
                             if p.name.startswith("trace.jsonl"))
        print(f"\ntrace files: {trace_files}")
        with open(config.telemetry_trace_path, encoding="utf-8") as handle:
            spans = [json.loads(line) for line in handle]
        slowest = max(spans, key=lambda s: s["duration_seconds"])
        print(f"coordinator spans: {len(spans)}; slowest: "
              f"{slowest['stage']} @ {slowest['duration_seconds'] * 1e3:.2f} ms"
              f" (chunk {slowest.get('chunk', '-')})")

        # ---------------------------------------------------------- #
        # 3. Render it: the status table and Prometheus text format
        # (the same output `tools/status.py <snapshot>` serves).
        # ---------------------------------------------------------- #
        print("\n" + render_status_table(snapshot))
        exposition = prometheus_exposition(snapshot.registry())
        print("prometheus exposition: "
              f"{len(exposition.splitlines())} lines, e.g.")
        for line in exposition.splitlines():
            if line.startswith("repro_bins_processed"):
                print(f"  {line}")


if __name__ == "__main__":
    main()
