"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments whose setuptools predates PEP 660 editable-wheel support
(``pip install -e . --no-use-pep517`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
