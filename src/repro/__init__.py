"""repro — network-wide traffic anomaly diagnosis via the subspace method.

A from-scratch reproduction of

    Lakhina, Crovella, Diot.
    "Characterization of Network-Wide Anomalies in Traffic Flows."
    IMC 2004 (BUCS-TR-2004-020).

The library contains the paper's primary contribution (the PCA subspace
method with Q-statistic and T² control limits applied to Origin-Destination
flow traffic) together with every substrate it depends on: an Abilene-like
backbone topology, IGP/BGP routing and PoP resolution, a sampled-NetFlow
measurement pipeline, a synthetic traffic and anomaly generator, the
dominant-attribute anomaly classifier, per-flow baseline detectors, and an
evaluation harness that regenerates every table and figure of the paper.

The curated public surface re-exported here covers the two pipelines:

* **batch** — :func:`detect_network_anomalies` over a
  :class:`TrafficMatrixSeries`;
* **streaming** — any :class:`ChunkSource` (synthetic
  :class:`SyntheticChunkSource`, in-memory :class:`ChunkedSeriesSource`,
  on-disk :class:`FlowCsvSource`) fed to :func:`stream_detect` or wrapped
  in a durable :class:`DetectionService`.

Quickstart
----------
>>> from repro.datasets import generate_abilene_dataset, DatasetConfig
>>> from repro.core import detect_network_anomalies
>>> dataset = generate_abilene_dataset(DatasetConfig(weeks=1), seed=0)
>>> report = detect_network_anomalies(dataset.series)
>>> report.n_events  # doctest: +SKIP
84
"""

from repro.core import (
    AnomalyEvent,
    DetectionResult,
    EigenflowDecomposition,
    NetworkAnomalyReport,
    SubspaceDetector,
    SubspaceModel,
    detect_network_anomalies,
)
from repro.datasets import (
    DatasetConfig,
    SyntheticChunkSource,
    SyntheticDataset,
    generate_abilene_dataset,
)
from repro.flows import TrafficMatrixSeries, TrafficType
from repro.ingest import FlowCsvSource, IngestConfig, round_trip_check
from repro.service import DetectionService
from repro.streaming import (
    ChunkSource,
    ChunkedSeriesSource,
    StreamingConfig,
    StreamingReport,
    TrafficChunk,
    as_chunk_source,
    load_checkpoint,
    parallel_stream_detect,
    save_checkpoint,
    stream_detect,
)
from repro.topology import abilene_topology

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # batch pipeline
    "EigenflowDecomposition",
    "SubspaceModel",
    "SubspaceDetector",
    "DetectionResult",
    "AnomalyEvent",
    "NetworkAnomalyReport",
    "detect_network_anomalies",
    # data model
    "TrafficMatrixSeries",
    "TrafficType",
    "abilene_topology",
    "DatasetConfig",
    "SyntheticDataset",
    "generate_abilene_dataset",
    # chunk sources
    "TrafficChunk",
    "ChunkSource",
    "as_chunk_source",
    "ChunkedSeriesSource",
    "SyntheticChunkSource",
    "FlowCsvSource",
    "IngestConfig",
    "round_trip_check",
    # streaming pipeline
    "StreamingConfig",
    "StreamingReport",
    "stream_detect",
    "parallel_stream_detect",
    "save_checkpoint",
    "load_checkpoint",
    "DetectionService",
]
