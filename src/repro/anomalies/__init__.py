"""Anomaly injection substrate.

Implements ground-truth anomaly events and injectors for every anomaly type
in Table 2 of the paper:

=================  =======================================================
ALPHA              unusually high-rate point-to-point byte transfer
DOS / DDOS         (distributed) denial of service against one victim
FLASH CROWD        sudden legitimate demand for one service
SCAN               port or network scanning
WORM               self-propagating code scanning a target port
POINT-MULTIPOINT   content distribution from one server to many clients
OUTAGE             equipment/maintenance outage (traffic drops to ~zero)
INGRESS SHIFT      customer shifts traffic to a different ingress PoP
=================  =======================================================

Each injector perturbs the OD-flow traffic matrices *and* registers the
corresponding 5-tuple flow groups with the
:class:`~repro.flows.composition.FlowCompositionModel`, so that detection
(volume based) and classification (dominant-attribute based) both see the
anomaly the way they would in real flow data.

The :class:`~repro.anomalies.schedule.AnomalyScheduler` draws a random
schedule of anomalies over a measurement period with configurable rates per
type, producing the ground truth that the evaluation harness scores
detections against.
"""

from repro.anomalies.types import (
    AnomalyType,
    GroundTruthAnomaly,
    GroundTruthLog,
)
from repro.anomalies.base import AnomalyInjector, InjectionContext
from repro.anomalies.volume import (
    AlphaInjector,
    DosInjector,
    FlashCrowdInjector,
    PointMultipointInjector,
    ScanInjector,
    WormInjector,
)
from repro.anomalies.operational import IngressShiftInjector, OutageInjector
from repro.anomalies.schedule import AnomalyScheduler, ScheduleConfig

__all__ = [
    "AnomalyType",
    "GroundTruthAnomaly",
    "GroundTruthLog",
    "AnomalyInjector",
    "InjectionContext",
    "AlphaInjector",
    "DosInjector",
    "FlashCrowdInjector",
    "ScanInjector",
    "WormInjector",
    "PointMultipointInjector",
    "OutageInjector",
    "IngressShiftInjector",
    "AnomalyScheduler",
    "ScheduleConfig",
]
