"""Base classes of the anomaly injection substrate.

An :class:`AnomalyInjector` perturbs a dataset in two coupled places:

* the OD-level traffic matrices (so volume-based detection sees the event);
* the per-bin flow composition (so dominant-attribute classification sees
  the event's 5-tuple signature).

Both live in the :class:`InjectionContext` passed to :meth:`inject`, which
also exposes the network, the time binning, and a per-injection RNG.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.anomalies.types import AnomalyType, GroundTruthAnomaly, GroundTruthLog
from repro.flows.composition import FlowCompositionModel
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.routing.prefixes import Prefix, random_address_in_prefix
from repro.topology.network import Network
from repro.utils.validation import require

__all__ = ["InjectionContext", "AnomalyInjector"]


@dataclass
class InjectionContext:
    """Everything an injector needs to modify a dataset in place."""

    network: Network
    series: TrafficMatrixSeries
    composition: FlowCompositionModel
    ground_truth: GroundTruthLog
    rng: np.random.Generator

    def od_mean(self, traffic_type: TrafficType, origin: str, destination: str) -> float:
        """Temporal mean of one OD flow in one traffic type."""
        return float(self.series.od_series(traffic_type, origin, destination).mean())

    def customer_prefix(self, pop: str) -> Prefix:
        """A (random) customer prefix announced at *pop*.

        PoPs without explicit customers fall back to a synthetic /16 so that
        injected flow groups always have plausible addresses.
        """
        customers = self.network.customers_at(pop)
        prefixes = [Prefix.parse(p) for c in customers for p in c.prefixes]
        if not prefixes:
            index = self.network.pop_names.index(pop)
            prefixes = [Prefix.parse(f"172.{16 + index}.0.0/16")]
        return prefixes[int(self.rng.integers(0, len(prefixes)))]

    def random_host(self, pop: str) -> int:
        """A random host address inside one of *pop*'s customer prefixes."""
        return random_address_in_prefix(self.customer_prefix(pop), self.rng)


class AnomalyInjector(abc.ABC):
    """Base class of all anomaly injectors.

    Subclasses are constructed with the parameters of one concrete anomaly
    instance (where, when, how big) and implement :meth:`inject`, which
    perturbs the context and returns the ground-truth record.

    Parameters
    ----------
    start_bin:
        First perturbed timebin.
    duration_bins:
        Number of consecutive perturbed bins.
    """

    #: The anomaly type produced by the injector (overridden by subclasses).
    anomaly_type: AnomalyType

    def __init__(self, start_bin: int, duration_bins: int) -> None:
        require(start_bin >= 0, "start_bin must be non-negative")
        require(duration_bins >= 1, "duration_bins must be >= 1")
        self.start_bin = int(start_bin)
        self.duration_bins = int(duration_bins)

    @property
    def end_bin(self) -> int:
        """Last perturbed timebin (inclusive)."""
        return self.start_bin + self.duration_bins - 1

    @property
    def bins(self) -> List[int]:
        """All perturbed timebins."""
        return list(range(self.start_bin, self.end_bin + 1))

    def validate_window(self, series: TrafficMatrixSeries) -> None:
        """Raise if the injection window falls outside the series."""
        require(self.end_bin < series.n_bins,
                f"injection window [{self.start_bin}, {self.end_bin}] exceeds "
                f"the series length {series.n_bins}")

    @abc.abstractmethod
    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        """Apply the anomaly to the dataset and return its ground truth."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _register_anomaly(
        self,
        context: InjectionContext,
        od_pairs: Sequence[Tuple[str, str]],
        expected: Sequence[TrafficType],
        description: str,
        attributes: Optional[dict] = None,
    ) -> GroundTruthAnomaly:
        """Record the injected anomaly in the ground-truth log."""
        anomaly = GroundTruthAnomaly(
            anomaly_id=context.ground_truth.next_id(),
            anomaly_type=self.anomaly_type,
            start_bin=self.start_bin,
            end_bin=self.end_bin,
            od_pairs=tuple(tuple(p) for p in od_pairs),
            expected_traffic_types=frozenset(TrafficType(t) for t in expected),
            description=description,
            attributes=dict(attributes or {}),
        )
        context.ground_truth.add(anomaly)
        return anomaly

    def _add_volume(
        self,
        context: InjectionContext,
        od_pair: Tuple[str, str],
        extra_bytes: float,
        extra_packets: float,
        extra_flows: float,
        ramp: Optional[Sequence[float]] = None,
    ) -> None:
        """Add per-bin volume to one OD pair over the injection window.

        *ramp* gives a per-bin multiplier (default: flat); volumes are the
        per-bin additions before the ramp.
        """
        factors = np.ones(self.duration_bins) if ramp is None else np.asarray(ramp, float)
        require(factors.size == self.duration_bins, "ramp length must match duration")
        origin, destination = od_pair
        for offset, bin_index in enumerate(self.bins):
            factor = float(factors[offset])
            context.series.add(TrafficType.BYTES, bin_index, origin, destination,
                               extra_bytes * factor)
            context.series.add(TrafficType.PACKETS, bin_index, origin, destination,
                               extra_packets * factor)
            context.series.add(TrafficType.FLOWS, bin_index, origin, destination,
                               extra_flows * factor)

    def _register_groups(
        self,
        context: InjectionContext,
        od_pair: Tuple[str, str],
        group_for_bin,
        ramp: Optional[Sequence[float]] = None,
    ) -> None:
        """Register one injected flow group per bin of the window.

        *group_for_bin* is a callable ``(bin_index, factor) -> FlowGroup``.
        """
        factors = np.ones(self.duration_bins) if ramp is None else np.asarray(ramp, float)
        for offset, bin_index in enumerate(self.bins):
            group = group_for_bin(bin_index, float(factors[offset]))
            context.composition.register_injected_groups(od_pair, bin_index, [group])
