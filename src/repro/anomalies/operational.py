"""Injectors for the operational anomaly types: OUTAGE and INGRESS-SHIFT.

Unlike the volume anomalies, these move or remove traffic rather than adding
it:

* **OUTAGE** scales the traffic of every OD flow touching a PoP down to
  (nearly) zero for an extended period — the paper's example is scheduled
  maintenance at the LOSA PoP;
* **INGRESS-SHIFT** moves a multihomed customer's traffic from one ingress
  PoP to another, producing a dip in one set of OD flows and a matching
  spike in another — the paper's example is CALREN shifting from LOSA to
  SNVA during the LOSA outage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.anomalies.base import AnomalyInjector, InjectionContext
from repro.anomalies.types import AnomalyType, GroundTruthAnomaly
from repro.flows.timeseries import TrafficType
from repro.utils.validation import require

__all__ = ["OutageInjector", "IngressShiftInjector"]


class OutageInjector(AnomalyInjector):
    """Equipment or maintenance outage at a PoP.

    Parameters
    ----------
    start_bin, duration_bins:
        Injection window (outages last hours: tens of bins).
    pop:
        The failed PoP; all OD flows with this PoP as origin or destination
        are affected.
    residual_fraction:
        Fraction of normal traffic that survives (0 is a complete outage;
        a small positive value models partial measurement loss).
    """

    anomaly_type = AnomalyType.OUTAGE

    def __init__(self, start_bin: int, duration_bins: int, pop: str,
                 residual_fraction: float = 0.02) -> None:
        super().__init__(start_bin, duration_bins)
        require(0.0 <= residual_fraction < 1.0, "residual_fraction must be in [0, 1)")
        self.pop = pop
        self.residual_fraction = float(residual_fraction)

    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        self.validate_window(context.series)
        context.network.pop(self.pop)  # validate the PoP exists
        affected = [pair for pair in context.series.od_pairs
                    if self.pop in pair and pair[0] != pair[1]]
        require(len(affected) >= 1, f"PoP {self.pop!r} has no OD flows to fail")

        for origin, destination in affected:
            for traffic_type in context.series.traffic_types:
                context.series.scale_od(traffic_type, origin, destination,
                                        self.bins, self.residual_fraction)
        return self._register_anomaly(
            context, affected,
            expected=[TrafficType.BYTES, TrafficType.PACKETS, TrafficType.FLOWS],
            description=(f"Outage at {self.pop} for {self.duration_bins} bins "
                         f"({self.duration_bins * 5} minutes)"),
            attributes={
                "pop": self.pop,
                "residual_fraction": self.residual_fraction,
                "n_affected_od_pairs": len(affected),
            },
        )


class IngressShiftInjector(AnomalyInjector):
    """A multihomed customer shifts its traffic to a different ingress PoP.

    Parameters
    ----------
    start_bin, duration_bins:
        Injection window.
    from_pop, to_pop:
        The old and new ingress PoPs.
    shifted_fraction:
        Fraction of the *from_pop*-originated traffic that moves (roughly
        the shifting customer's share of the PoP's traffic).
    destinations:
        Destination PoPs whose OD flows are affected (default: every other
        PoP, i.e. the customer reaches the whole network).
    customer:
        Optional customer name recorded in the ground truth (e.g. CALREN).
    """

    anomaly_type = AnomalyType.INGRESS_SHIFT

    def __init__(self, start_bin: int, duration_bins: int, from_pop: str, to_pop: str,
                 shifted_fraction: float = 0.5,
                 destinations: Optional[Sequence[str]] = None,
                 customer: str = "") -> None:
        super().__init__(start_bin, duration_bins)
        require(from_pop != to_pop, "from_pop and to_pop must differ")
        require(0.0 < shifted_fraction <= 1.0, "shifted_fraction must be in (0, 1]")
        self.from_pop = from_pop
        self.to_pop = to_pop
        self.shifted_fraction = float(shifted_fraction)
        self.destinations = list(destinations) if destinations is not None else None
        self.customer = customer

    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        self.validate_window(context.series)
        context.network.pop(self.from_pop)
        context.network.pop(self.to_pop)
        destinations = (self.destinations if self.destinations is not None
                        else [p for p in context.network.pop_names
                              if p not in (self.from_pop, self.to_pop)])
        require(len(destinations) >= 1, "at least one destination PoP is required")

        affected: List[Tuple[str, str]] = []
        bins = np.asarray(self.bins, dtype=int)
        for destination in destinations:
            source_pair = (self.from_pop, destination)
            target_pair = (self.to_pop, destination)
            affected.extend([source_pair, target_pair])
            for traffic_type in context.series.traffic_types:
                matrix = context.series.matrix(traffic_type)
                source_column = context.series.od_index(*source_pair)
                target_column = context.series.od_index(*target_pair)
                moved = matrix[bins, source_column] * self.shifted_fraction
                matrix[bins, source_column] -= moved
                matrix[bins, target_column] += moved

        customer_note = f" by {self.customer}" if self.customer else ""
        return self._register_anomaly(
            context, affected,
            expected=[TrafficType.FLOWS, TrafficType.BYTES, TrafficType.PACKETS],
            description=(f"Ingress shift{customer_note} from {self.from_pop} to "
                         f"{self.to_pop} ({self.shifted_fraction:.0%} of traffic)"),
            attributes={
                "from_pop": self.from_pop,
                "to_pop": self.to_pop,
                "shifted_fraction": self.shifted_fraction,
                "customer": self.customer,
                "n_destinations": len(destinations),
            },
        )
