"""Random anomaly scheduling over a measurement period.

:class:`AnomalyScheduler` draws a set of anomaly injectors whose type mix,
magnitudes, durations, and locations follow a configurable
:class:`ScheduleConfig`, and applies them to a dataset.  The default
configuration produces a weekly mix similar in spirit to the paper's
Table 3: ALPHA flows dominate (Abilene's bandwidth-measurement experiments),
scans and flash crowds are frequent, DOS attacks occur regularly, and
operational events (outages, ingress shifts) are rare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.anomalies.base import AnomalyInjector, InjectionContext
from repro.anomalies.operational import IngressShiftInjector, OutageInjector
from repro.anomalies.types import AnomalyType, GroundTruthLog
from repro.anomalies.volume import (
    AlphaInjector,
    DosInjector,
    FlashCrowdInjector,
    PointMultipointInjector,
    ScanInjector,
    WormInjector,
)
from repro.topology.network import Network
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.timebins import TimeBinning, bins_per_week

__all__ = ["ScheduleConfig", "AnomalyScheduler"]


@dataclass(frozen=True)
class ScheduleConfig:
    """Counts and parameter ranges of the random anomaly schedule.

    ``counts_per_week`` gives the expected number of injected anomalies of
    each type per week of data; the scheduler scales it by the dataset
    length.  ``magnitude_range`` and ``duration_range_bins`` give per-type
    uniform sampling ranges (durations in 5-minute bins).
    """

    counts_per_week: Mapping[AnomalyType, float] = field(default_factory=lambda: {
        AnomalyType.ALPHA: 30.0,
        AnomalyType.DOS: 8.0,
        AnomalyType.DDOS: 3.0,
        AnomalyType.SCAN: 13.0,
        AnomalyType.FLASH_CROWD: 15.0,
        AnomalyType.WORM: 1.0,
        AnomalyType.POINT_MULTIPOINT: 1.0,
        AnomalyType.OUTAGE: 1.0,
        AnomalyType.INGRESS_SHIFT: 1.0,
    })
    magnitude_range: Mapping[AnomalyType, Tuple[float, float]] = field(
        default_factory=lambda: {
            AnomalyType.ALPHA: (2.4, 9.0),
            AnomalyType.DOS: (3.0, 9.0),
            AnomalyType.DDOS: (4.0, 10.0),
            AnomalyType.SCAN: (3.0, 8.0),
            AnomalyType.FLASH_CROWD: (3.0, 9.0),
            AnomalyType.WORM: (6.0, 14.0),
            AnomalyType.POINT_MULTIPOINT: (5.0, 12.0),
        })
    duration_range_bins: Mapping[AnomalyType, Tuple[int, int]] = field(
        default_factory=lambda: {
            AnomalyType.ALPHA: (1, 2),
            AnomalyType.DOS: (1, 4),
            AnomalyType.DDOS: (1, 4),
            AnomalyType.SCAN: (1, 2),
            AnomalyType.FLASH_CROWD: (1, 3),
            AnomalyType.WORM: (1, 3),
            AnomalyType.POINT_MULTIPOINT: (1, 2),
            AnomalyType.OUTAGE: (12, 48),
            AnomalyType.INGRESS_SHIFT: (6, 24),
        })
    #: Minimum number of free bins kept between scheduled anomalies so that
    #: separate injections remain separate events.
    separation_bins: int = 2
    #: Margin kept free at the start/end of the dataset.
    edge_margin_bins: int = 6

    def scaled_counts(self, n_bins: int, bin_seconds: int) -> Dict[AnomalyType, int]:
        """Integer anomaly counts for a dataset of the given length."""
        weeks = n_bins / bins_per_week(bin_seconds)
        counts: Dict[AnomalyType, int] = {}
        for anomaly_type, per_week in self.counts_per_week.items():
            counts[AnomalyType(anomaly_type)] = int(round(per_week * weeks))
        return counts


class AnomalyScheduler:
    """Draws and applies a random anomaly schedule.

    Parameters
    ----------
    network:
        The backbone network (provides PoPs, customers, multihoming).
    config:
        Schedule configuration.
    seed:
        Randomness source for the schedule.
    """

    def __init__(self, network: Network, config: ScheduleConfig = ScheduleConfig(),
                 seed: RandomState = None) -> None:
        self._network = network
        self._config = config
        self._rng = spawn_rng(seed, stream="anomaly-schedule")

    @property
    def config(self) -> ScheduleConfig:
        """The schedule configuration."""
        return self._config

    # ------------------------------------------------------------------ #
    # schedule construction
    # ------------------------------------------------------------------ #
    def build_schedule(self, binning: TimeBinning) -> List[AnomalyInjector]:
        """Draw the list of injectors for a dataset covering *binning*."""
        counts = self._config.scaled_counts(binning.n_bins, binning.bin_seconds)
        occupied = np.zeros(binning.n_bins, dtype=bool)
        margin = self._config.edge_margin_bins
        if margin > 0:
            occupied[:margin] = True
            occupied[-margin:] = True

        injectors: List[AnomalyInjector] = []
        # Long-duration operational events are placed first so they find room.
        ordered_types = sorted(counts, key=lambda t: -self._max_duration(t))
        for anomaly_type in ordered_types:
            for _ in range(counts[anomaly_type]):
                injector = self._draw_injector(anomaly_type, binning, occupied)
                if injector is not None:
                    injectors.append(injector)
        injectors.sort(key=lambda inj: inj.start_bin)
        return injectors

    def apply(self, context: InjectionContext,
              injectors: Optional[Sequence[AnomalyInjector]] = None) -> GroundTruthLog:
        """Inject a schedule (drawing one if not given) into *context*."""
        if injectors is None:
            injectors = self.build_schedule(context.series.binning)
        for injector in injectors:
            injector.inject(context)
        return context.ground_truth

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _max_duration(self, anomaly_type: AnomalyType) -> int:
        low, high = self._config.duration_range_bins[anomaly_type]
        return high

    def _draw_duration(self, anomaly_type: AnomalyType) -> int:
        low, high = self._config.duration_range_bins[anomaly_type]
        return int(self._rng.integers(low, high + 1))

    def _draw_magnitude(self, anomaly_type: AnomalyType) -> float:
        low, high = self._config.magnitude_range[anomaly_type]
        return float(self._rng.uniform(low, high))

    def _reserve_window(self, binning: TimeBinning, occupied: np.ndarray,
                        duration: int) -> Optional[int]:
        """Find and reserve a free window; returns its start bin or ``None``."""
        separation = self._config.separation_bins
        needed = duration + 2 * separation
        candidates = []
        free = ~occupied
        run_start = None
        for index in range(binning.n_bins):
            if free[index]:
                if run_start is None:
                    run_start = index
            else:
                if run_start is not None and index - run_start >= needed:
                    candidates.append((run_start, index))
                run_start = None
        if run_start is not None and binning.n_bins - run_start >= needed:
            candidates.append((run_start, binning.n_bins))
        if not candidates:
            return None
        run_index = int(self._rng.integers(0, len(candidates)))
        run_start, run_end = candidates[run_index]
        latest_start = run_end - duration - separation
        start = int(self._rng.integers(run_start + separation, latest_start + 1))
        occupied[max(start - separation, 0):min(start + duration + separation,
                                                binning.n_bins)] = True
        return start

    def _random_od_pair(self) -> Tuple[str, str]:
        names = self._network.pop_names
        origin = names[int(self._rng.integers(0, len(names)))]
        destination = origin
        while destination == origin:
            destination = names[int(self._rng.integers(0, len(names)))]
        return origin, destination

    def _random_pops(self, count: int, exclude: Sequence[str] = ()) -> List[str]:
        names = [n for n in self._network.pop_names if n not in exclude]
        count = min(count, len(names))
        chosen = self._rng.choice(len(names), size=count, replace=False)
        return [names[int(i)] for i in chosen]

    def _draw_injector(self, anomaly_type: AnomalyType, binning: TimeBinning,
                       occupied: np.ndarray) -> Optional[AnomalyInjector]:
        duration = self._draw_duration(anomaly_type)
        start = self._reserve_window(binning, occupied, duration)
        if start is None:
            return None

        if anomaly_type is AnomalyType.ALPHA:
            return AlphaInjector(start, duration, self._random_od_pair(),
                                 magnitude=self._draw_magnitude(anomaly_type))
        if anomaly_type is AnomalyType.DOS:
            return DosInjector(start, duration, [self._random_od_pair()],
                               magnitude=self._draw_magnitude(anomaly_type))
        if anomaly_type is AnomalyType.DDOS:
            victim_pop = self._random_pops(1)[0]
            n_origins = int(self._rng.integers(2, 5))
            origins = self._random_pops(n_origins, exclude=[victim_pop])
            pairs = [(origin, victim_pop) for origin in origins]
            return DosInjector(start, duration, pairs,
                               magnitude=self._draw_magnitude(anomaly_type))
        if anomaly_type is AnomalyType.SCAN:
            network_scan = bool(self._rng.random() < 0.8)
            return ScanInjector(start, duration, self._random_od_pair(),
                                magnitude=self._draw_magnitude(anomaly_type),
                                network_scan=network_scan)
        if anomaly_type is AnomalyType.FLASH_CROWD:
            return FlashCrowdInjector(start, duration, self._random_od_pair(),
                                      magnitude=self._draw_magnitude(anomaly_type))
        if anomaly_type is AnomalyType.WORM:
            n_pairs = int(self._rng.integers(2, 5))
            pairs = [self._random_od_pair() for _ in range(n_pairs)]
            return WormInjector(start, duration, pairs,
                                magnitude=self._draw_magnitude(anomaly_type))
        if anomaly_type is AnomalyType.POINT_MULTIPOINT:
            server_pop = self._random_pops(1)[0]
            n_clients = int(self._rng.integers(2, 5))
            client_pops = self._random_pops(n_clients, exclude=[server_pop])
            pairs = [(server_pop, client) for client in client_pops]
            return PointMultipointInjector(start, duration, pairs,
                                           magnitude=self._draw_magnitude(anomaly_type))
        if anomaly_type is AnomalyType.OUTAGE:
            pop = self._random_pops(1)[0]
            return OutageInjector(start, duration, pop)
        if anomaly_type is AnomalyType.INGRESS_SHIFT:
            multihomed = [c for c in self._network.customers if c.multihomed_pops]
            if multihomed:
                index = int(self._rng.integers(0, len(multihomed)))
                customer = multihomed[index]
                from_pop = customer.pop
                to_pop = customer.multihomed_pops[0]
                name = customer.name
            else:
                from_pop, to_pop = self._random_od_pair()
                name = ""
            return IngressShiftInjector(start, duration, from_pop, to_pop,
                                        shifted_fraction=float(self._rng.uniform(0.5, 0.9)),
                                        customer=name)
        raise ValueError(f"unsupported anomaly type {anomaly_type!r}")
