"""Ground-truth anomaly types and event log.

:class:`AnomalyType` enumerates the taxonomy of Table 2;
:class:`GroundTruthAnomaly` records one injected event (its type, time span,
OD flows, and the traffic types it is expected to perturb);
:class:`GroundTruthLog` is the collection the evaluation harness scores
detections against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.flows.timeseries import TrafficType
from repro.utils.validation import require

__all__ = ["AnomalyType", "GroundTruthAnomaly", "GroundTruthLog"]


class AnomalyType(str, enum.Enum):
    """The anomaly taxonomy of Table 2 (plus the two bookkeeping labels)."""

    ALPHA = "alpha"
    DOS = "dos"
    DDOS = "ddos"
    FLASH_CROWD = "flash_crowd"
    SCAN = "scan"
    WORM = "worm"
    POINT_MULTIPOINT = "point_multipoint"
    OUTAGE = "outage"
    INGRESS_SHIFT = "ingress_shift"
    UNKNOWN = "unknown"
    FALSE_ALARM = "false_alarm"

    @property
    def table_label(self) -> str:
        """The column label used in Table 3 of the paper."""
        return {
            AnomalyType.ALPHA: "ALPHA",
            AnomalyType.DOS: "DOS",
            AnomalyType.DDOS: "DOS",          # Table 3 merges DOS and DDOS
            AnomalyType.FLASH_CROWD: "FLASH",
            AnomalyType.SCAN: "SCAN",
            AnomalyType.WORM: "WORM",
            AnomalyType.POINT_MULTIPOINT: "PT.-MULT.",
            AnomalyType.OUTAGE: "OUTAGE",
            AnomalyType.INGRESS_SHIFT: "INGR.-SHIFT",
            AnomalyType.UNKNOWN: "Unknown",
            AnomalyType.FALSE_ALARM: "False Alarm",
        }[self]

    @classmethod
    def injectable(cls) -> Tuple["AnomalyType", ...]:
        """The types the injection substrate can generate (Table 2 rows)."""
        return (
            cls.ALPHA, cls.DOS, cls.DDOS, cls.FLASH_CROWD, cls.SCAN,
            cls.WORM, cls.POINT_MULTIPOINT, cls.OUTAGE, cls.INGRESS_SHIFT,
        )


@dataclass(frozen=True)
class GroundTruthAnomaly:
    """One injected anomaly event.

    Parameters
    ----------
    anomaly_id:
        Unique identifier within a dataset.
    anomaly_type:
        The injected type.
    start_bin, end_bin:
        Inclusive timebin span of the injected perturbation.
    od_pairs:
        The OD pairs whose traffic was perturbed.
    expected_traffic_types:
        The traffic types in which the anomaly should primarily be visible
        (the "Features" column of Table 2).
    description:
        Human-readable description (mirrors the "Examples" column).
    attributes:
        Free-form metadata recorded by the injector (victim address, target
        port, magnitude, ...), used by tests and reports.
    """

    anomaly_id: int
    anomaly_type: AnomalyType
    start_bin: int
    end_bin: int
    od_pairs: Tuple[Tuple[str, str], ...]
    expected_traffic_types: FrozenSet[TrafficType]
    description: str = ""
    attributes: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(self.start_bin <= self.end_bin, "start_bin must be <= end_bin")
        require(len(self.od_pairs) >= 1, "an anomaly must involve at least one OD pair")
        require(len(self.expected_traffic_types) >= 1,
                "an anomaly must affect at least one traffic type")

    @property
    def bins(self) -> Tuple[int, ...]:
        """All timebins spanned by the anomaly."""
        return tuple(range(self.start_bin, self.end_bin + 1))

    @property
    def duration_bins(self) -> int:
        """Number of bins spanned."""
        return self.end_bin - self.start_bin + 1

    def duration_minutes(self, bin_seconds: int = 300) -> float:
        """Duration in minutes."""
        return self.duration_bins * bin_seconds / 60.0

    def overlaps_bins(self, bins: Iterable[int]) -> bool:
        """Whether the anomaly's span intersects *bins*."""
        span = set(self.bins)
        return any(b in span for b in bins)

    def overlaps_window(self, start_bin: int, end_bin: int) -> bool:
        """Whether the anomaly intersects the inclusive window [start, end]."""
        return not (end_bin < self.start_bin or start_bin > self.end_bin)


class GroundTruthLog:
    """The set of injected anomalies of one dataset."""

    def __init__(self, anomalies: Iterable[GroundTruthAnomaly] = ()) -> None:
        self._anomalies: List[GroundTruthAnomaly] = list(anomalies)
        ids = [a.anomaly_id for a in self._anomalies]
        require(len(ids) == len(set(ids)), "anomaly ids must be unique")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, anomaly: GroundTruthAnomaly) -> None:
        """Append an anomaly (ids must remain unique)."""
        require(all(a.anomaly_id != anomaly.anomaly_id for a in self._anomalies),
                f"duplicate anomaly id {anomaly.anomaly_id}")
        self._anomalies.append(anomaly)

    def next_id(self) -> int:
        """The next unused anomaly id."""
        return max((a.anomaly_id for a in self._anomalies), default=-1) + 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._anomalies)

    def __iter__(self):
        return iter(self._anomalies)

    @property
    def anomalies(self) -> List[GroundTruthAnomaly]:
        """All anomalies in injection order."""
        return list(self._anomalies)

    def by_type(self, anomaly_type: AnomalyType) -> List[GroundTruthAnomaly]:
        """All anomalies of a given type."""
        return [a for a in self._anomalies if a.anomaly_type == AnomalyType(anomaly_type)]

    def overlapping_bins(self, bins: Iterable[int]) -> List[GroundTruthAnomaly]:
        """All anomalies intersecting the given bins."""
        bins = list(bins)
        return [a for a in self._anomalies if a.overlaps_bins(bins)]

    def in_window(self, start_bin: int, end_bin: int) -> List[GroundTruthAnomaly]:
        """All anomalies intersecting the inclusive bin window."""
        return [a for a in self._anomalies if a.overlaps_window(start_bin, end_bin)]

    def type_counts(self) -> Dict[AnomalyType, int]:
        """Number of anomalies per type."""
        counts: Dict[AnomalyType, int] = {}
        for anomaly in self._anomalies:
            counts[anomaly.anomaly_type] = counts.get(anomaly.anomaly_type, 0) + 1
        return counts

    def shifted(self, bin_offset: int) -> "GroundTruthLog":
        """A copy with all bin indices shifted by *bin_offset* (windowing helper)."""
        shifted = []
        for anomaly in self._anomalies:
            shifted.append(GroundTruthAnomaly(
                anomaly_id=anomaly.anomaly_id,
                anomaly_type=anomaly.anomaly_type,
                start_bin=anomaly.start_bin + bin_offset,
                end_bin=anomaly.end_bin + bin_offset,
                od_pairs=anomaly.od_pairs,
                expected_traffic_types=anomaly.expected_traffic_types,
                description=anomaly.description,
                attributes=anomaly.attributes,
            ))
        return GroundTruthLog(shifted)
