"""Injectors for the volume-spike anomaly types of Table 2.

Each injector adds traffic to one or more OD flows over its injection
window and registers the corresponding 5-tuple flow groups, reproducing the
per-type signatures the paper lists in the "Features" column of Table 2:

* **ALPHA** — huge byte (and packet) spike, single source and destination
  host, high ports used by bandwidth-measurement tools;
* **DOS / DDOS** — packet/flow spike of tiny packets toward one victim
  address and port, spoofed (non-dominant) sources, possibly from several
  origin PoPs;
* **FLASH CROWD** — flow spike toward one server address and well-known
  service port, many legitimate clients clustered at the origin PoP;
* **SCAN** — flow spike with ≈ one packet per flow from a single scanner,
  spread over destination addresses (network scan) or ports (port scan);
* **WORM** — flow spike on a single target port with neither a dominant
  source nor a dominant destination, typically across several OD flows;
* **POINT-TO-MULTIPOINT** — byte/packet spike from one server to many
  clients on a well-known content port.

Anomaly magnitudes are expressed as multiples of the *network-wide mean
per-OD volume* of the anomaly's primary traffic type so that detectability
is comparable across large and small OD pairs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.anomalies.base import AnomalyInjector, InjectionContext
from repro.anomalies.types import AnomalyType, GroundTruthAnomaly
from repro.flows.composition import FlowGroup
from repro.flows.records import TCP
from repro.flows.timeseries import TrafficType
from repro.utils.validation import require

__all__ = [
    "AlphaInjector",
    "DosInjector",
    "FlashCrowdInjector",
    "ScanInjector",
    "WormInjector",
    "PointMultipointInjector",
]

#: Ports associated with bandwidth-measurement experiments and bulk
#: transfers in the paper (SLAC iperf range, pathdiag, file sharing).
ALPHA_PORTS: Tuple[int, ...] = (5001, 5010, 5050, 56117, 1412)

#: Ports the paper observed as DOS targets.
DOS_PORTS: Tuple[int, ...] = (0, 110, 113, 80)

#: Well-known service ports used to separate flash crowds from DOS attacks.
FLASH_PORTS: Tuple[int, ...] = (80, 53, 443)

#: Ports associated with worm propagation in the paper (SQL-Snake, Deloader).
WORM_PORTS: Tuple[int, ...] = (1433, 445)

#: Ports scanned in the paper's examples (NetBIOS).
SCAN_PORTS: Tuple[int, ...] = (139, 445, 135)

#: Content-distribution ports (news/NNTP in the paper's example).
MULTIPOINT_PORTS: Tuple[int, ...] = (119, 563)


def _network_mean(context: InjectionContext, traffic_type: TrafficType) -> float:
    """Network-wide mean per-OD, per-bin volume of one traffic type."""
    return float(context.series.matrix(traffic_type).mean())


class AlphaInjector(AnomalyInjector):
    """Unusually high-rate point-to-point byte transfer.

    Parameters
    ----------
    start_bin, duration_bins:
        Injection window (ALPHA events are short: 1-2 bins).
    od_pair:
        The single OD flow carrying the transfer.
    magnitude:
        Byte volume added per bin, in multiples of the network-wide mean
        per-OD byte volume.
    dst_port:
        Destination port of the transfer (default: drawn from
        :data:`ALPHA_PORTS` at injection time).
    packet_size_bytes:
        Packet size of the bulk transfer; ``None`` (default) draws a size
        between 500 and 1500 bytes at injection time, so different ALPHA
        events show up with different byte/packet balance — some are byte
        anomalies only, some packet anomalies only, some both (as in the
        paper's Table 3).
    """

    anomaly_type = AnomalyType.ALPHA

    def __init__(self, start_bin: int, duration_bins: int, od_pair: Tuple[str, str],
                 magnitude: float = 8.0, dst_port: Optional[int] = None,
                 packet_size_bytes: Optional[float] = None) -> None:
        super().__init__(start_bin, duration_bins)
        require(magnitude > 0, "magnitude must be positive")
        if packet_size_bytes is not None:
            require(packet_size_bytes > 0, "packet_size_bytes must be positive")
        self.od_pair = tuple(od_pair)
        self.magnitude = float(magnitude)
        self.dst_port = dst_port
        self.packet_size_bytes = packet_size_bytes

    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        self.validate_window(context.series)
        origin, destination = self.od_pair
        dst_port = self.dst_port if self.dst_port is not None else int(
            context.rng.choice(ALPHA_PORTS))
        # Bandwidth-measurement transfers on Abilene used anything from
        # standard 1500-byte frames to 9000-byte jumbo frames; a log-uniform
        # draw spreads the byte/packet balance so that some ALPHA events are
        # byte-only anomalies, some packet-involving (paper Table 3).
        packet_size = (self.packet_size_bytes if self.packet_size_bytes is not None
                       else float(np.exp(context.rng.uniform(np.log(400.0),
                                                             np.log(9000.0)))))

        extra_bytes = self.magnitude * _network_mean(context, TrafficType.BYTES)
        extra_packets = extra_bytes / packet_size
        extra_flows = float(context.rng.integers(1, 4))

        source_host = context.random_host(origin)
        destination_host = context.random_host(destination)
        src_port = int(context.rng.integers(1024, 65536))

        self._add_volume(context, self.od_pair, extra_bytes, extra_packets, extra_flows)
        self._register_groups(
            context, self.od_pair,
            lambda bin_index, factor: FlowGroup(
                src_address=source_host,
                dst_address=destination_host,
                src_port=src_port,
                dst_port=dst_port,
                protocol=TCP,
                bytes=extra_bytes * factor,
                packets=extra_packets * factor,
                flows=extra_flows * factor,
                label="alpha",
            ),
        )
        return self._register_anomaly(
            context, [self.od_pair],
            expected=[TrafficType.BYTES, TrafficType.PACKETS],
            description=(f"ALPHA transfer {origin}->{destination} on port {dst_port}, "
                         f"{self.magnitude:.1f}x mean OD bytes"),
            attributes={
                "src_address": source_host,
                "dst_address": destination_host,
                "dst_port": dst_port,
                "magnitude": self.magnitude,
            },
        )


class DosInjector(AnomalyInjector):
    """(Distributed) denial-of-service attack against a single victim.

    Parameters
    ----------
    start_bin, duration_bins:
        Injection window (typically under 20 minutes, i.e. ≤ 4 bins).
    od_pairs:
        OD flows carrying attack traffic.  One pair gives a single-source
        DOS (``AnomalyType.DOS``); several pairs toward the same egress PoP
        give a distributed attack (``AnomalyType.DDOS``).
    magnitude:
        Packet volume added per bin (summed over all attacking OD flows),
        in multiples of the network-wide mean per-OD packet volume.
    target_port:
        Victim port (default: drawn from :data:`DOS_PORTS`).
    packet_size_bytes:
        Attack packet size (small packets — the attack moves interrupts,
        not payload, so byte counts barely move).
    packets_per_flow:
        Packets per attack flow; ``None`` (default) draws a value between
        1.5 and 20 at injection time, so some attacks are flow-heavy (many
        spoofed sources, few packets each) and others packet-heavy — which
        is why the paper finds DOS attacks in F, P, or FP but not B.
    """

    def __init__(self, start_bin: int, duration_bins: int,
                 od_pairs: Sequence[Tuple[str, str]], magnitude: float = 6.0,
                 target_port: Optional[int] = None,
                 packet_size_bytes: float = 48.0,
                 packets_per_flow: Optional[float] = None) -> None:
        super().__init__(start_bin, duration_bins)
        require(len(od_pairs) >= 1, "at least one attacking OD pair is required")
        destinations = {pair[1] for pair in od_pairs}
        require(len(destinations) == 1, "all attack OD pairs must share the egress PoP")
        require(magnitude > 0, "magnitude must be positive")
        if packets_per_flow is not None:
            require(packets_per_flow > 0, "packets_per_flow must be positive")
        self.od_pairs = [tuple(p) for p in od_pairs]
        self.magnitude = float(magnitude)
        self.target_port = target_port
        self.packet_size_bytes = float(packet_size_bytes)
        self.packets_per_flow = packets_per_flow
        self.anomaly_type = AnomalyType.DDOS if len(self.od_pairs) > 1 else AnomalyType.DOS

    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        self.validate_window(context.series)
        victim_pop = self.od_pairs[0][1]
        victim_address = context.random_host(victim_pop)
        target_port = self.target_port if self.target_port is not None else int(
            context.rng.choice(DOS_PORTS))
        # Log-uniform draw: flow-churning spoofed floods (1-2 packets per
        # flow) up to single-flow packet floods (hundreds of packets per
        # 5-tuple), matching the spread of real attack tools.
        packets_per_flow = (self.packets_per_flow if self.packets_per_flow is not None
                            else float(np.exp(context.rng.uniform(np.log(1.5),
                                                                  np.log(200.0)))))

        total_packets = self.magnitude * _network_mean(context, TrafficType.PACKETS)
        per_pair_packets = total_packets / len(self.od_pairs)
        per_pair_flows = per_pair_packets / packets_per_flow
        per_pair_bytes = per_pair_packets * self.packet_size_bytes

        for od_pair in self.od_pairs:
            spoofed_sources = int(context.rng.integers(200, 2000))
            self._add_volume(context, od_pair, per_pair_bytes, per_pair_packets,
                             per_pair_flows)
            self._register_groups(
                context, od_pair,
                lambda bin_index, factor, sources=spoofed_sources, pair=od_pair: FlowGroup(
                    src_address=context.random_host(pair[0]),
                    dst_address=victim_address,
                    src_port=int(context.rng.integers(1024, 65536)),
                    dst_port=target_port,
                    protocol=TCP,
                    bytes=per_pair_bytes * factor,
                    packets=per_pair_packets * factor,
                    flows=per_pair_flows * factor,
                    n_src_addresses=sources,
                    n_dst_addresses=1,
                    n_src_ports=sources,
                    n_dst_ports=1,
                    label="dos",
                ),
            )
        label = "DDOS" if self.anomaly_type is AnomalyType.DDOS else "DOS"
        return self._register_anomaly(
            context, self.od_pairs,
            expected=[TrafficType.PACKETS, TrafficType.FLOWS],
            description=(f"{label} against {victim_pop} host on port {target_port}, "
                         f"{self.magnitude:.1f}x mean OD packets"),
            attributes={
                "victim_address": victim_address,
                "target_port": target_port,
                "magnitude": self.magnitude,
                "n_attacking_od_pairs": len(self.od_pairs),
            },
        )


class FlashCrowdInjector(AnomalyInjector):
    """Flash crowd: sudden legitimate demand for one service.

    Parameters
    ----------
    od_pair:
        The OD flow carrying the client requests (clients clustered at the
        origin PoP, server at the destination PoP).
    magnitude:
        Flow volume added per bin, in multiples of the network-wide mean
        per-OD IP-flow volume.
    service_port:
        The service the crowd hits (default: drawn from :data:`FLASH_PORTS`).
    """

    anomaly_type = AnomalyType.FLASH_CROWD

    def __init__(self, start_bin: int, duration_bins: int, od_pair: Tuple[str, str],
                 magnitude: float = 6.0, service_port: Optional[int] = None,
                 packets_per_flow: Optional[float] = None,
                 packet_size_bytes: float = 300.0) -> None:
        super().__init__(start_bin, duration_bins)
        require(magnitude > 0, "magnitude must be positive")
        if packets_per_flow is not None:
            require(packets_per_flow > 0, "packets_per_flow must be positive")
        self.od_pair = tuple(od_pair)
        self.magnitude = float(magnitude)
        self.service_port = service_port
        self.packets_per_flow = packets_per_flow
        self.packet_size_bytes = float(packet_size_bytes)

    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        self.validate_window(context.series)
        origin, destination = self.od_pair
        service_port = self.service_port if self.service_port is not None else int(
            context.rng.choice(FLASH_PORTS))
        server_address = context.random_host(destination)
        packets_per_flow = (self.packets_per_flow if self.packets_per_flow is not None
                            else float(context.rng.uniform(2.0, 10.0)))

        extra_flows = self.magnitude * _network_mean(context, TrafficType.FLOWS)
        extra_packets = extra_flows * packets_per_flow
        extra_bytes = extra_packets * self.packet_size_bytes
        n_clients = int(context.rng.integers(300, 3000))
        client_prefix = context.customer_prefix(origin)

        self._add_volume(context, self.od_pair, extra_bytes, extra_packets, extra_flows)
        self._register_groups(
            context, self.od_pair,
            lambda bin_index, factor: FlowGroup(
                src_address=client_prefix.first_address + int(
                    context.rng.integers(0, min(client_prefix.n_addresses, 4096))),
                dst_address=server_address,
                src_port=int(context.rng.integers(1024, 65536)),
                dst_port=service_port,
                protocol=TCP,
                bytes=extra_bytes * factor,
                packets=extra_packets * factor,
                flows=extra_flows * factor,
                # Clients are many but topologically clustered: they span a
                # modest number of /24 ranges inside one customer prefix.
                n_src_addresses=min(n_clients, 256),
                n_dst_addresses=1,
                n_src_ports=n_clients,
                n_dst_ports=1,
                label="flash_crowd",
            ),
        )
        return self._register_anomaly(
            context, [self.od_pair],
            expected=[TrafficType.FLOWS, TrafficType.PACKETS],
            description=(f"Flash crowd {origin}->{destination} on port {service_port}, "
                         f"{self.magnitude:.1f}x mean OD flows"),
            attributes={
                "server_address": server_address,
                "service_port": service_port,
                "magnitude": self.magnitude,
                "n_clients": n_clients,
            },
        )


class ScanInjector(AnomalyInjector):
    """Port or network scanning from a single scanner host.

    Parameters
    ----------
    od_pair:
        The OD flow carrying the probes.
    magnitude:
        Flow volume added per bin, in multiples of the network-wide mean
        per-OD IP-flow volume.
    network_scan:
        ``True`` (default) scans many hosts for one target port;
        ``False`` scans many ports of a single host (port scan).
    target_port:
        The scanned port for a network scan (default: from
        :data:`SCAN_PORTS`).
    """

    anomaly_type = AnomalyType.SCAN

    def __init__(self, start_bin: int, duration_bins: int, od_pair: Tuple[str, str],
                 magnitude: float = 5.0, network_scan: bool = True,
                 target_port: Optional[int] = None) -> None:
        super().__init__(start_bin, duration_bins)
        require(magnitude > 0, "magnitude must be positive")
        self.od_pair = tuple(od_pair)
        self.magnitude = float(magnitude)
        self.network_scan = bool(network_scan)
        self.target_port = target_port

    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        self.validate_window(context.series)
        origin, destination = self.od_pair
        scanner_address = context.random_host(origin)
        target_port = self.target_port if self.target_port is not None else int(
            context.rng.choice(SCAN_PORTS))

        extra_flows = self.magnitude * _network_mean(context, TrafficType.FLOWS)
        # Scans send roughly one (small) probe packet per flow.
        extra_packets = extra_flows * float(context.rng.uniform(1.0, 1.3))
        extra_bytes = extra_packets * 40.0

        if self.network_scan:
            n_dst_addresses = int(extra_flows) or 1
            n_dst_ports = 1
            scanned_port = target_port
        else:
            n_dst_addresses = 1
            n_dst_ports = int(extra_flows) or 1
            scanned_port = int(context.rng.integers(1, 1024))
        target_host = context.random_host(destination)

        self._add_volume(context, self.od_pair, extra_bytes, extra_packets, extra_flows)
        self._register_groups(
            context, self.od_pair,
            lambda bin_index, factor: FlowGroup(
                src_address=scanner_address,
                dst_address=target_host,
                src_port=int(context.rng.integers(1024, 65536)),
                dst_port=scanned_port,
                protocol=TCP,
                bytes=extra_bytes * factor,
                packets=extra_packets * factor,
                flows=extra_flows * factor,
                n_src_addresses=1,
                n_dst_addresses=n_dst_addresses,
                n_src_ports=max(1, int(extra_flows)),
                n_dst_ports=n_dst_ports,
                label="scan",
            ),
        )
        kind = "network scan" if self.network_scan else "port scan"
        return self._register_anomaly(
            context, [self.od_pair],
            expected=[TrafficType.FLOWS],
            description=(f"{kind} {origin}->{destination} "
                         f"(port {target_port if self.network_scan else 'many'}), "
                         f"{self.magnitude:.1f}x mean OD flows"),
            attributes={
                "scanner_address": scanner_address,
                "target_port": target_port if self.network_scan else None,
                "network_scan": self.network_scan,
                "magnitude": self.magnitude,
            },
        )


class WormInjector(AnomalyInjector):
    """Worm propagation: many infected hosts probing one port network-wide.

    Parameters
    ----------
    od_pairs:
        The OD flows carrying worm probes (typically several, with different
        origins and destinations).
    magnitude:
        Total flow volume added per bin across all OD pairs, in multiples of
        the network-wide mean per-OD IP-flow volume.
    worm_port:
        The exploited port (default: from :data:`WORM_PORTS`).
    """

    anomaly_type = AnomalyType.WORM

    def __init__(self, start_bin: int, duration_bins: int,
                 od_pairs: Sequence[Tuple[str, str]], magnitude: float = 6.0,
                 worm_port: Optional[int] = None) -> None:
        super().__init__(start_bin, duration_bins)
        require(len(od_pairs) >= 1, "at least one OD pair is required")
        require(magnitude > 0, "magnitude must be positive")
        self.od_pairs = [tuple(p) for p in od_pairs]
        self.magnitude = float(magnitude)
        self.worm_port = worm_port

    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        self.validate_window(context.series)
        worm_port = self.worm_port if self.worm_port is not None else int(
            context.rng.choice(WORM_PORTS))

        total_flows = self.magnitude * _network_mean(context, TrafficType.FLOWS)
        per_pair_flows = total_flows / len(self.od_pairs)
        per_pair_packets = per_pair_flows * 1.5
        per_pair_bytes = per_pair_packets * 60.0

        for od_pair in self.od_pairs:
            n_infected = int(context.rng.integers(50, 500))
            self._add_volume(context, od_pair, per_pair_bytes, per_pair_packets,
                             per_pair_flows)
            self._register_groups(
                context, od_pair,
                lambda bin_index, factor, infected=n_infected, pair=od_pair: FlowGroup(
                    src_address=context.random_host(pair[0]),
                    dst_address=context.random_host(pair[1]),
                    src_port=int(context.rng.integers(1024, 65536)),
                    dst_port=worm_port,
                    protocol=TCP,
                    bytes=per_pair_bytes * factor,
                    packets=per_pair_packets * factor,
                    flows=per_pair_flows * factor,
                    n_src_addresses=infected,
                    n_dst_addresses=max(1, int(per_pair_flows)),
                    n_src_ports=infected,
                    n_dst_ports=1,
                    label="worm",
                ),
            )
        return self._register_anomaly(
            context, self.od_pairs,
            expected=[TrafficType.FLOWS],
            description=(f"Worm scanning port {worm_port} across "
                         f"{len(self.od_pairs)} OD flows, "
                         f"{self.magnitude:.1f}x mean OD flows"),
            attributes={"worm_port": worm_port, "magnitude": self.magnitude},
        )


class PointMultipointInjector(AnomalyInjector):
    """Content distribution from one server to many clients.

    Parameters
    ----------
    od_pairs:
        OD flows from the server's PoP to the client PoPs (all pairs must
        share the origin PoP).
    magnitude:
        Total byte volume added per bin across all OD pairs, in multiples of
        the network-wide mean per-OD byte volume.
    content_port:
        The well-known distribution port (default: from
        :data:`MULTIPOINT_PORTS`).
    """

    anomaly_type = AnomalyType.POINT_MULTIPOINT

    def __init__(self, start_bin: int, duration_bins: int,
                 od_pairs: Sequence[Tuple[str, str]], magnitude: float = 7.0,
                 content_port: Optional[int] = None,
                 packet_size_bytes: float = 900.0) -> None:
        super().__init__(start_bin, duration_bins)
        require(len(od_pairs) >= 1, "at least one OD pair is required")
        origins = {pair[0] for pair in od_pairs}
        require(len(origins) == 1, "all OD pairs must share the origin (server) PoP")
        require(magnitude > 0, "magnitude must be positive")
        self.od_pairs = [tuple(p) for p in od_pairs]
        self.magnitude = float(magnitude)
        self.content_port = content_port
        self.packet_size_bytes = float(packet_size_bytes)

    def inject(self, context: InjectionContext) -> GroundTruthAnomaly:
        self.validate_window(context.series)
        server_pop = self.od_pairs[0][0]
        server_address = context.random_host(server_pop)
        content_port = self.content_port if self.content_port is not None else int(
            context.rng.choice(MULTIPOINT_PORTS))

        total_bytes = self.magnitude * _network_mean(context, TrafficType.BYTES)
        per_pair_bytes = total_bytes / len(self.od_pairs)
        per_pair_packets = per_pair_bytes / self.packet_size_bytes
        per_pair_flows = max(per_pair_packets / 50.0, 1.0)

        for od_pair in self.od_pairs:
            n_clients = int(context.rng.integers(100, 1000))
            self._add_volume(context, od_pair, per_pair_bytes, per_pair_packets,
                             per_pair_flows)
            self._register_groups(
                context, od_pair,
                lambda bin_index, factor, clients=n_clients, pair=od_pair: FlowGroup(
                    src_address=server_address,
                    dst_address=context.random_host(pair[1]),
                    src_port=content_port,
                    dst_port=content_port,
                    protocol=TCP,
                    bytes=per_pair_bytes * factor,
                    packets=per_pair_packets * factor,
                    flows=per_pair_flows * factor,
                    n_src_addresses=1,
                    n_dst_addresses=clients,
                    n_src_ports=1,
                    n_dst_ports=1,
                    label="point_multipoint",
                ),
            )
        return self._register_anomaly(
            context, self.od_pairs,
            expected=[TrafficType.BYTES, TrafficType.PACKETS],
            description=(f"Point-to-multipoint distribution from {server_pop} "
                         f"on port {content_port} to {len(self.od_pairs)} PoPs, "
                         f"{self.magnitude:.1f}x mean OD bytes"),
            attributes={
                "server_address": server_address,
                "content_port": content_port,
                "magnitude": self.magnitude,
            },
        )
