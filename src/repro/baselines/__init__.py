"""Baseline anomaly detectors.

The paper argues that fusing information *across* OD flows (the subspace
method) reveals anomalies that per-flow, per-link analysis misses.  To
quantify that claim (experiment E8) we implement the natural single-timeseries
baselines from the related-work section, each applied independently to every
OD flow:

* :class:`~repro.baselines.ewma.EWMADetector` — exponentially weighted
  moving-average forecasting with a z-score test on the residual;
* :class:`~repro.baselines.wavelet.WaveletDetector` — multi-scale detail
  analysis in the spirit of Barford et al.'s wavelet signal analysis;
* :class:`~repro.baselines.fourier.FourierDetector` — seasonal (Fourier)
  detrending with a z-score test on the residual.

All baselines share the :class:`~repro.baselines.base.BaselineDetector`
interface and report per-(bin, OD flow) detections that the evaluation
harness aggregates into events for a like-for-like comparison with the
subspace method.
"""

from repro.baselines.base import BaselineDetectionResult, BaselineDetector
from repro.baselines.ewma import EWMADetector
from repro.baselines.fourier import FourierDetector
from repro.baselines.wavelet import WaveletDetector

__all__ = [
    "BaselineDetector",
    "BaselineDetectionResult",
    "EWMADetector",
    "WaveletDetector",
    "FourierDetector",
]
