"""Common interface of the per-flow baseline detectors."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.validation import ensure_2d, require

__all__ = ["BaselineDetectionResult", "BaselineDetector"]


@dataclass
class BaselineDetectionResult:
    """Detections of a per-flow baseline over one traffic matrix.

    Attributes
    ----------
    scores:
        The ``n x p`` matrix of per-cell anomaly scores (higher = more
        anomalous; comparable across cells of the same run).
    threshold:
        The score threshold applied.
    flagged:
        Boolean ``n x p`` matrix of flagged cells.
    """

    scores: np.ndarray
    threshold: float
    flagged: np.ndarray

    @property
    def n_bins(self) -> int:
        """Number of timebins analyzed."""
        return int(self.scores.shape[0])

    @property
    def n_flows(self) -> int:
        """Number of OD flows analyzed."""
        return int(self.scores.shape[1])

    @property
    def n_flagged_cells(self) -> int:
        """Total number of flagged (bin, flow) cells."""
        return int(self.flagged.sum())

    def anomalous_bins(self) -> List[int]:
        """Bins in which at least one OD flow was flagged."""
        return sorted(np.nonzero(self.flagged.any(axis=1))[0].tolist())

    def flows_at(self, bin_index: int) -> List[int]:
        """OD flows flagged at *bin_index*."""
        require(0 <= bin_index < self.n_bins, "bin_index out of range")
        return sorted(np.nonzero(self.flagged[bin_index])[0].tolist())

    def detection_rate(self) -> float:
        """Fraction of bins with at least one flagged flow."""
        return len(self.anomalous_bins()) / self.n_bins if self.n_bins else 0.0


class BaselineDetector(abc.ABC):
    """A per-OD-flow anomaly detector.

    Subclasses implement :meth:`score`, producing an ``n x p`` matrix of
    anomaly scores; the shared :meth:`detect` applies either an explicit
    score threshold or an empirical quantile of the run's own scores (so
    that baselines can be matched to a false-alarm budget).
    """

    def __init__(self, threshold: float | None = None,
                 quantile: float = 0.999) -> None:
        require(0.0 < quantile < 1.0, "quantile must be in (0, 1)")
        self._threshold = threshold
        self._quantile = quantile

    @property
    def quantile(self) -> float:
        """The empirical score quantile used when no explicit threshold is set."""
        return self._quantile

    @abc.abstractmethod
    def score(self, matrix: np.ndarray) -> np.ndarray:
        """Per-cell anomaly scores for the ``n x p`` traffic matrix."""

    def detect(self, matrix: np.ndarray) -> BaselineDetectionResult:
        """Score the matrix and flag cells above the threshold."""
        data = ensure_2d(matrix, "matrix")
        scores = self.score(data)
        require(scores.shape == data.shape, "score matrix has the wrong shape")
        if self._threshold is not None:
            threshold = float(self._threshold)
        else:
            threshold = float(np.quantile(scores, self._quantile))
        flagged = scores > threshold
        return BaselineDetectionResult(scores=scores, threshold=threshold, flagged=flagged)
