"""EWMA forecasting baseline.

Each OD flow is forecast by an exponentially weighted moving average; the
anomaly score of a cell is the absolute forecast error normalized by an
EWMA estimate of the error's own standard deviation (a classic
Holt-style / EWMA control chart).  This is the simplest widely deployed
per-timeseries detector and serves as the low end of the baseline range.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.utils.validation import ensure_2d, require

__all__ = ["EWMADetector"]


class EWMADetector(BaselineDetector):
    """Per-flow EWMA residual detector.

    Parameters
    ----------
    alpha:
        Smoothing factor of the level forecast (0 < alpha < 1); larger
        values adapt faster but absorb anomalies more quickly.
    variance_alpha:
        Smoothing factor of the squared-error estimate.
    threshold:
        Explicit score threshold (in standard deviations); when ``None``
        the empirical *quantile* of the run's scores is used instead.
    quantile:
        Empirical quantile used when no explicit threshold is given.
    warmup_bins:
        Number of initial bins whose scores are zeroed while the EWMA state
        stabilizes.
    """

    def __init__(self, alpha: float = 0.2, variance_alpha: float = 0.05,
                 threshold: float | None = None, quantile: float = 0.999,
                 warmup_bins: int = 12) -> None:
        super().__init__(threshold=threshold, quantile=quantile)
        require(0.0 < alpha < 1.0, "alpha must be in (0, 1)")
        require(0.0 < variance_alpha < 1.0, "variance_alpha must be in (0, 1)")
        require(warmup_bins >= 0, "warmup_bins must be non-negative")
        self._alpha = alpha
        self._variance_alpha = variance_alpha
        self._warmup_bins = warmup_bins

    def score(self, matrix: np.ndarray) -> np.ndarray:
        """Absolute one-step forecast error in units of its own EWMA std."""
        data = ensure_2d(matrix, "matrix")
        n_bins, n_flows = data.shape
        scores = np.zeros_like(data)

        level = data[0].copy()
        variance = np.full(n_flows, np.var(data, axis=0).mean() + 1e-12)
        for bin_index in range(1, n_bins):
            observed = data[bin_index]
            error = observed - level
            std = np.sqrt(variance) + 1e-12
            scores[bin_index] = np.abs(error) / std
            # Update the state *after* scoring so anomalies are measured
            # against the pre-anomaly forecast.
            level = level + self._alpha * error
            variance = ((1.0 - self._variance_alpha) * variance
                        + self._variance_alpha * error**2)

        if self._warmup_bins > 0:
            scores[:self._warmup_bins] = 0.0
        return scores
