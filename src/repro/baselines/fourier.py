"""Fourier (seasonal-detrending) baseline.

Each OD flow is detrended by removing its strongest Fourier components
(which capture the diurnal and weekly cycles); the anomaly score of a cell
is the absolute residual normalized by the residual's robust standard
deviation.  This is the classical "remove the seasonality, threshold the
residual" detector, a per-flow analogue of what the subspace method does
jointly across flows.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.utils.validation import ensure_2d, require

__all__ = ["FourierDetector"]


class FourierDetector(BaselineDetector):
    """Per-flow seasonal-residual detector.

    Parameters
    ----------
    n_components:
        Number of strongest (largest-magnitude) Fourier components removed
        from every flow, not counting the DC component which is always
        removed.
    threshold, quantile:
        As in :class:`~repro.baselines.base.BaselineDetector`.
    """

    def __init__(self, n_components: int = 10,
                 threshold: float | None = None, quantile: float = 0.999) -> None:
        super().__init__(threshold=threshold, quantile=quantile)
        require(n_components >= 0, "n_components must be non-negative")
        self._n_components = int(n_components)

    def score(self, matrix: np.ndarray) -> np.ndarray:
        """Absolute seasonal residual in units of its robust std."""
        data = ensure_2d(matrix, "matrix")
        n_bins, n_flows = data.shape
        scores = np.zeros_like(data)
        for flow_index in range(n_flows):
            series = data[:, flow_index]
            spectrum = np.fft.rfft(series)
            keep = np.zeros_like(spectrum)
            keep[0] = spectrum[0]  # DC (the mean) always belongs to the model
            if self._n_components > 0 and spectrum.size > 1:
                magnitudes = np.abs(spectrum[1:])
                strongest = np.argsort(magnitudes)[::-1][:self._n_components] + 1
                keep[strongest] = spectrum[strongest]
            seasonal = np.fft.irfft(keep, n=n_bins)
            residual = series - seasonal
            mad = np.median(np.abs(residual - np.median(residual))) * 1.4826 + 1e-12
            scores[:, flow_index] = np.abs(residual) / mad
        return scores
