"""Wavelet-style multi-scale baseline (after Barford et al.).

Barford, Kline, Plonka and Ron detect anomalies in single-link traffic by
examining the mid- and high-frequency detail signals of a wavelet
decomposition and flagging times where their local variability spikes.  We
implement the same idea with an à-trous Haar decomposition (undecimated, so
every level stays aligned with the original timeline): the anomaly score of
a cell is the maximum, over the selected detail levels, of the absolute
detail coefficient normalized by that level's robust standard deviation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.utils.validation import ensure_2d, require

__all__ = ["WaveletDetector"]


def _atrous_details(series: np.ndarray, n_levels: int) -> List[np.ndarray]:
    """Undecimated Haar detail signals of a 1-D series, one per level."""
    details: List[np.ndarray] = []
    approximation = series.astype(float)
    for level in range(n_levels):
        step = 2**level
        # Haar smoothing with holes (à trous): average of the sample and its
        # neighbour `step` bins earlier (edges handled by reflection).
        shifted = np.concatenate([approximation[:step][::-1], approximation[:-step]]) \
            if step < approximation.size else approximation[::-1]
        smoothed = 0.5 * (approximation + shifted)
        details.append(approximation - smoothed)
        approximation = smoothed
    return details


class WaveletDetector(BaselineDetector):
    """Per-flow multi-scale detail-signal detector.

    Parameters
    ----------
    levels:
        Detail levels to inspect (level ``j`` captures structure at a
        timescale of roughly ``2**j`` bins).  The defaults cover the
        5-minute to ~1.5-hour band where the paper's short-lived anomalies
        live, while excluding the diurnal scales.
    threshold, quantile:
        As in :class:`~repro.baselines.base.BaselineDetector`.
    """

    def __init__(self, levels: Sequence[int] = (0, 1, 2, 3, 4),
                 threshold: float | None = None, quantile: float = 0.999) -> None:
        super().__init__(threshold=threshold, quantile=quantile)
        require(len(levels) >= 1, "at least one detail level is required")
        require(all(level >= 0 for level in levels), "levels must be non-negative")
        self._levels = sorted(set(int(level) for level in levels))

    def score(self, matrix: np.ndarray) -> np.ndarray:
        """Max normalized detail magnitude across the selected levels."""
        data = ensure_2d(matrix, "matrix")
        n_bins, n_flows = data.shape
        n_levels = max(self._levels) + 1
        scores = np.zeros_like(data)
        for flow_index in range(n_flows):
            details = _atrous_details(data[:, flow_index], n_levels)
            flow_score = np.zeros(n_bins)
            for level in self._levels:
                detail = details[level]
                # Robust scale estimate (median absolute deviation).
                mad = np.median(np.abs(detail - np.median(detail))) * 1.4826 + 1e-12
                flow_score = np.maximum(flow_score, np.abs(detail) / mad)
            scores[:, flow_index] = flow_score
        return scores
