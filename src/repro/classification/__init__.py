"""Anomaly classification.

Implements the paper's semi-automated classification procedure: for each
detected anomaly event, inspect the flow composition of the responsible OD
flows during the anomalous bins, determine the *dominant* attributes
(source/destination address range and port, at the p = 0.2 threshold), look
at which traffic types spiked or dipped, and apply the rules of Table 2 to
assign an anomaly type.
"""

from repro.classification.dominance import DominanceAnalyzer, DominanceSummary
from repro.classification.features import EventFeatures, extract_event_features
from repro.classification.classifier import (
    ClassificationResult,
    RuleBasedClassifier,
    WELL_KNOWN_SERVICE_PORTS,
)

__all__ = [
    "DominanceAnalyzer",
    "DominanceSummary",
    "EventFeatures",
    "extract_event_features",
    "RuleBasedClassifier",
    "ClassificationResult",
    "WELL_KNOWN_SERVICE_PORTS",
]
