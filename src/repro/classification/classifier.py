"""Rule-based anomaly classification implementing Table 2 of the paper.

The rules encode the "Features" column of Table 2, applied in an order that
resolves ambiguity the way the paper describes:

1. **OUTAGE** — all traffic types dip (usually to near zero), no spike.
2. **INGRESS SHIFT** — simultaneous dip and spike across different OD flows
   of the same event, with no dominant attribute.
3. **ALPHA** — byte (and packet) spike attributable to a single dominant
   source *and* destination.
4. **POINT-TO-MULTIPOINT** — byte/packet spike from a dominant source to
   many destinations on a well-known content port.
5. **FLASH CROWD vs DOS/DDOS** — packet/flow spike toward a dominant
   destination.  Following the Jung/Krishnamurthy/Rabinovich heuristic the
   paper adopts, traffic from topologically clustered sources to a
   well-known service port is a flash crowd; otherwise it is a DOS attack
   (DDOS when several OD flows attack together).
6. **SCAN** — flow spike with roughly one packet per flow from a dominant
   source, without a dominant (destination IP, port) combination.
7. **WORM** — flow spike with only a dominant destination port (no dominant
   source or destination address).
8. Everything else is **UNKNOWN**; events whose traffic shows no real
   change are **FALSE ALARM**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.anomalies.types import AnomalyType
from repro.classification.features import EventFeatures
from repro.flows.timeseries import TrafficType
from repro.utils.validation import require

__all__ = ["ClassificationResult", "RuleBasedClassifier", "WELL_KNOWN_SERVICE_PORTS"]

#: Ports treated as "well-known services" for the flash-crowd heuristic.
WELL_KNOWN_SERVICE_PORTS: Tuple[int, ...] = (80, 443, 53, 25, 119, 563, 21, 22)

#: Packets-per-flow below which a flow spike looks like probing (scan/worm).
_PROBE_PACKETS_PER_FLOW = 3.0

#: Bytes-per-packet above which a spike looks like a bulk transfer.
_BULK_BYTES_PER_PACKET = 600.0


@dataclass(frozen=True)
class ClassificationResult:
    """The classifier's verdict for one event."""

    features: EventFeatures
    anomaly_type: AnomalyType
    rationale: str

    @property
    def event(self):
        """The classified event."""
        return self.features.event


class RuleBasedClassifier:
    """Classifies detected events using the Table 2 dominant-attribute rules.

    Parameters
    ----------
    well_known_ports:
        Ports treated as legitimate services for the flash-crowd heuristic.
    probe_packets_per_flow:
        Packets-per-flow threshold separating probing traffic (scans,
        worms) from connection-oriented traffic.
    """

    def __init__(self,
                 well_known_ports: Sequence[int] = WELL_KNOWN_SERVICE_PORTS,
                 probe_packets_per_flow: float = _PROBE_PACKETS_PER_FLOW) -> None:
        require(probe_packets_per_flow > 0, "probe_packets_per_flow must be positive")
        self._well_known_ports = frozenset(int(p) for p in well_known_ports)
        self._probe_packets_per_flow = float(probe_packets_per_flow)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def classify(self, features: EventFeatures) -> ClassificationResult:
        """Classify one event from its extracted features."""
        anomaly_type, rationale = self._apply_rules(features)
        return ClassificationResult(features=features, anomaly_type=anomaly_type,
                                    rationale=rationale)

    def classify_all(self, features: Sequence[EventFeatures]) -> List[ClassificationResult]:
        """Classify a batch of events."""
        return [self.classify(f) for f in features]

    # ------------------------------------------------------------------ #
    # rules
    # ------------------------------------------------------------------ #
    def _apply_rules(self, features: EventFeatures) -> Tuple[AnomalyType, str]:
        dominance = features.dominance

        # Rule 0: no real change in any traffic type -> false alarm.
        if not features.has_spike() and not features.has_dip():
            return (AnomalyType.FALSE_ALARM,
                    "no appreciable change in any traffic type")

        # Rule 1: OUTAGE — everything dips, nothing spikes.
        if features.has_dip() and not features.has_spike() and features.dips_in_all():
            return (AnomalyType.OUTAGE,
                    "all traffic types decrease on the involved OD flows")

        # Rule 2: INGRESS SHIFT — traffic moved between OD flows: some
        # involved OD flows dip while others spike, and there is no dominant
        # address (the traffic is ordinary customer traffic, just re-routed).
        moved_between_flows = (features.n_od_flows >= 2
                               and features.n_dipping_od_flows >= 1
                               and features.n_spiking_od_flows >= 1)
        aggregate_move = features.has_dip() and features.has_spike()
        if ((moved_between_flows or (aggregate_move and features.n_od_flows >= 2))
                and not dominance.any_dominant("src_range")
                and not dominance.any_dominant("dst_range")):
            return (AnomalyType.INGRESS_SHIFT,
                    "traffic decreases on some OD flows and increases on others "
                    "with no dominant address")

        # Partial-dip fallback: dips without spikes that are not network-wide
        # still indicate loss of traffic (treated as OUTAGE by the paper's
        # operators when correlated with maintenance reports).
        if features.has_dip() and not features.has_spike():
            return (AnomalyType.OUTAGE,
                    "traffic decreases on the involved OD flows")

        byte_spike = features.spikes_in(TrafficType.BYTES)
        packet_spike = features.spikes_in(TrafficType.PACKETS)
        flow_spike = features.spikes_in(TrafficType.FLOWS)

        dominant_src = dominance.any_dominant("src_range")
        dominant_dst = dominance.any_dominant("dst_range")
        dominant_dst_port = dominance.dominant_port("dst_port")
        packets_per_flow = features.excess_packets_per_flow
        bytes_per_packet = features.excess_bytes_per_packet

        # Rule 3: ALPHA — bulk byte transfer between one source and one
        # destination (large packets, few flows).
        if (byte_spike and dominant_src and dominant_dst
                and (bytes_per_packet is None or bytes_per_packet >= _BULK_BYTES_PER_PACKET
                     or not flow_spike)):
            return (AnomalyType.ALPHA,
                    "byte spike with a single dominant source and destination")

        # Rule 4: POINT-TO-MULTIPOINT — bulk traffic from one source to many
        # destinations on a well-known content port.
        if ((byte_spike or packet_spike) and dominant_src and not dominant_dst
                and dominant_dst_port is not None
                and dominant_dst_port in self._well_known_ports
                and (packets_per_flow is None
                     or packets_per_flow > self._probe_packets_per_flow)):
            return (AnomalyType.POINT_MULTIPOINT,
                    "byte/packet spike from a dominant source to many destinations "
                    f"on well-known port {dominant_dst_port}")

        # Rule 5: traffic toward one victim/service — flash crowd vs DOS.
        if (packet_spike or flow_spike) and dominant_dst and not dominant_src:
            well_known = (dominant_dst_port is not None
                          and dominant_dst_port in self._well_known_ports)
            clustered_sources = features.n_od_flows == 1
            if well_known and clustered_sources and flow_spike:
                return (AnomalyType.FLASH_CROWD,
                        "flow spike from clustered sources toward one destination "
                        f"on well-known port {dominant_dst_port}")
            if features.n_od_flows > 1:
                return (AnomalyType.DDOS,
                        "packet/flow spike toward a single destination from "
                        "multiple OD flows with no dominant source")
            return (AnomalyType.DOS,
                    "packet/flow spike toward a single destination with no "
                    "dominant source")

        # Rule 6: SCAN — probing traffic (≈1 packet per flow) from a single
        # scanner without a dominant (destination IP, port) combination.
        if (flow_spike and dominant_src
                and packets_per_flow is not None
                and packets_per_flow <= self._probe_packets_per_flow
                and not (dominant_dst and dominant_dst_port is not None)):
            return (AnomalyType.SCAN,
                    "flow spike of single-packet probes from a dominant source")

        # Rule 7: WORM — probing traffic on one target port with neither a
        # dominant source nor a dominant destination.
        if (flow_spike and not dominant_src and not dominant_dst
                and dominant_dst_port is not None
                and (packets_per_flow is None
                     or packets_per_flow <= 2 * self._probe_packets_per_flow)):
            return (AnomalyType.WORM,
                    f"flow spike on port {dominant_dst_port} with no dominant "
                    "source or destination")

        # Secondary ALPHA rule: packet-only spikes between a single source
        # and destination (large transfers seen mostly in packet counts).
        if packet_spike and dominant_src and dominant_dst and not flow_spike:
            return (AnomalyType.ALPHA,
                    "packet spike with a single dominant source and destination")

        return (AnomalyType.UNKNOWN, "no rule matched the event's features")
