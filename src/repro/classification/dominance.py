"""Dominant-attribute analysis of anomalous traffic.

The paper's key identification tool: "An address range or port is dominant
in a particular OD flow and timebin if it is unusually prevalent.  We used a
simple threshold test: if the address range or port accounted for more than
a fraction p of the total traffic ... it was considered dominant.  We found
that a value of p = 0.2 worked well."

:class:`DominanceAnalyzer` applies that test to the flow composition of the
(OD flow, bin) cells belonging to a detected event, aggregating across the
event's cells so that a single heavy hitter spanning the whole event is
recognized even if it is diluted in any one cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.flows.composition import BinComposition, FlowCompositionModel
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.utils.validation import ensure_probability

__all__ = ["DominanceSummary", "DominanceAnalyzer"]

#: The attributes the paper checks for dominance.
ATTRIBUTES: Tuple[str, ...] = ("src_range", "dst_range", "src_port", "dst_port")


@dataclass(frozen=True)
class DominanceSummary:
    """Dominant attribute values of one event, per traffic type.

    ``values[(traffic_type, attribute)]`` is the dominant value or ``None``.
    """

    values: Mapping[Tuple[TrafficType, str], Optional[int]]
    threshold: float

    def dominant(self, traffic_type: TrafficType, attribute: str) -> Optional[int]:
        """The dominant value of *attribute* in *traffic_type* (or ``None``)."""
        return self.values.get((TrafficType(traffic_type), attribute))

    def has_dominant(self, traffic_type: TrafficType, attribute: str) -> bool:
        """Whether *attribute* has a dominant value in *traffic_type*."""
        return self.dominant(traffic_type, attribute) is not None

    def any_dominant(self, attribute: str,
                     traffic_types: Optional[Iterable[TrafficType]] = None) -> bool:
        """Whether *attribute* is dominant in any of the given traffic types."""
        types = list(traffic_types) if traffic_types is not None else list(TrafficType.all())
        return any(self.has_dominant(t, attribute) for t in types)

    def dominant_port(self, attribute: str = "dst_port") -> Optional[int]:
        """The dominant port value in any traffic type (flows first)."""
        for traffic_type in (TrafficType.FLOWS, TrafficType.PACKETS, TrafficType.BYTES):
            value = self.dominant(traffic_type, attribute)
            if value is not None:
                return value
        return None

    def no_dominant_attributes(self,
                               traffic_types: Optional[Iterable[TrafficType]] = None) -> bool:
        """Whether the event has no dominant attribute at all (OUTAGE/shift style)."""
        return not any(self.any_dominant(attribute, traffic_types)
                       for attribute in ATTRIBUTES)


class DominanceAnalyzer:
    """Computes dominance summaries for detected events.

    Parameters
    ----------
    series:
        The traffic-matrix series the detection ran on.
    composition:
        The flow-composition model of the dataset.
    threshold:
        The dominance fraction ``p`` (paper: 0.2).
    bin_offset:
        Offset added to bin indices before querying the composition model.
        Used when the detection ran on a window of a longer dataset: the
        window's bins are local (0-based) while the composition model keys
        injected flow groups by absolute bin index.
    """

    def __init__(self, series: TrafficMatrixSeries, composition: FlowCompositionModel,
                 threshold: float = 0.2, bin_offset: int = 0) -> None:
        ensure_probability(threshold, "threshold")
        self._series = series
        self._composition = composition
        self._threshold = threshold
        self._bin_offset = int(bin_offset)

    @property
    def threshold(self) -> float:
        """The dominance fraction ``p``."""
        return self._threshold

    @property
    def bin_offset(self) -> int:
        """Offset added to bin indices when querying the composition model."""
        return self._bin_offset

    def cell_composition(self, od_pair: Tuple[str, str], bin_index: int) -> BinComposition:
        """The flow composition of one (OD pair, bin) cell."""
        return self._composition.composition(self._series, od_pair, bin_index,
                                             injected_bin_index=bin_index + self._bin_offset)

    def event_composition(self, od_pairs: Sequence[Tuple[str, str]],
                          bins: Sequence[int]) -> BinComposition:
        """The merged composition of all cells belonging to an event."""
        merged_groups = []
        for od_pair in od_pairs:
            for bin_index in bins:
                cell = self.cell_composition(od_pair, bin_index)
                merged_groups.extend(cell.groups)
        first_pair = tuple(od_pairs[0]) if od_pairs else ("", "")
        first_bin = bins[0] if bins else 0
        return BinComposition(first_pair, first_bin, merged_groups)

    def summarize(self, od_pairs: Sequence[Tuple[str, str]],
                  bins: Sequence[int]) -> DominanceSummary:
        """Dominance summary of an event (per traffic type and attribute)."""
        composition = self.event_composition(od_pairs, bins)
        values: Dict[Tuple[TrafficType, str], Optional[int]] = {}
        for traffic_type in self._series.traffic_types:
            for attribute in ATTRIBUTES:
                values[(traffic_type, attribute)] = composition.dominant_value(
                    attribute, traffic_type, self._threshold)
        return DominanceSummary(values=values, threshold=self._threshold)
