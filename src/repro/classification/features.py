"""Feature extraction for detected anomaly events.

For each event the classifier needs:

* the direction and relative size of the traffic change in each traffic
  type (spike vs dip vs flat), measured on the involved OD flows against
  their own baseline;
* the dominant attributes of the event's flow composition;
* shape features: duration, number of OD flows, packets-per-flow and
  bytes-per-packet of the *excess* traffic (scans send one small packet per
  flow, ALPHA transfers send large packets, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.classification.dominance import DominanceAnalyzer, DominanceSummary
from repro.core.events import AnomalyEvent
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.utils.validation import require

__all__ = ["EventFeatures", "extract_event_features"]

#: Relative change below which a traffic type is considered unperturbed.
_FLAT_THRESHOLD = 0.15


@dataclass(frozen=True)
class EventFeatures:
    """Features of one detected anomaly event.

    Attributes
    ----------
    event:
        The underlying detected event.
    od_pairs:
        The (origin, destination) labels of the involved OD flows.
    relative_change:
        Per traffic type, the relative change of the involved OD flows
        during the event versus their baseline ( > 0 is a spike, < 0 a dip).
    directions:
        Per traffic type, ``"spike"``, ``"dip"``, or ``"flat"``.
    dominance:
        The dominant-attribute summary of the event's flow composition.
    excess_packets_per_flow:
        Packets per IP flow of the excess traffic (``None`` when flows did
        not increase).
    excess_bytes_per_packet:
        Bytes per packet of the excess traffic (``None`` when packets did
        not increase).
    n_spiking_od_flows, n_dipping_od_flows:
        How many of the involved OD flows individually spike or dip during
        the event (used to recognize traffic *moving* between OD flows, the
        INGRESS-SHIFT signature).
    """

    event: AnomalyEvent
    od_pairs: Tuple[Tuple[str, str], ...]
    relative_change: Mapping[TrafficType, float]
    directions: Mapping[TrafficType, str]
    dominance: DominanceSummary
    excess_packets_per_flow: Optional[float]
    excess_bytes_per_packet: Optional[float]
    n_spiking_od_flows: int = 0
    n_dipping_od_flows: int = 0

    # Convenience predicates used by the rule-based classifier ----------- #
    def spikes_in(self, traffic_type: TrafficType) -> bool:
        """Whether the event is a spike in *traffic_type*."""
        return self.directions.get(TrafficType(traffic_type)) == "spike"

    def dips_in(self, traffic_type: TrafficType) -> bool:
        """Whether the event is a dip in *traffic_type*."""
        return self.directions.get(TrafficType(traffic_type)) == "dip"

    def dips_in_all(self) -> bool:
        """Whether all three traffic types dip (the OUTAGE signature)."""
        return all(self.dips_in(t) for t in TrafficType.all())

    def has_spike(self) -> bool:
        """Whether any traffic type spikes."""
        return any(self.spikes_in(t) for t in TrafficType.all())

    def has_dip(self) -> bool:
        """Whether any traffic type dips."""
        return any(self.dips_in(t) for t in TrafficType.all())

    @property
    def n_od_flows(self) -> int:
        """Number of OD flows involved in the event."""
        return len(self.od_pairs)

    @property
    def duration_bins(self) -> int:
        """Event duration in bins."""
        return self.event.duration_bins


def _baseline_and_event_volume(
    series: TrafficMatrixSeries,
    traffic_type: TrafficType,
    columns: Sequence[int],
    bins: Sequence[int],
) -> Tuple[float, float]:
    """Baseline (median outside the event) and in-event mean volume."""
    matrix = series.matrix(traffic_type)
    selected = matrix[:, list(columns)].sum(axis=1)
    event_bins = np.asarray(list(bins), dtype=int)
    mask = np.ones(series.n_bins, dtype=bool)
    mask[event_bins] = False
    baseline = float(np.median(selected[mask])) if mask.any() else float(np.median(selected))
    event_volume = float(selected[event_bins].mean())
    return baseline, event_volume


def extract_event_features(
    event: AnomalyEvent,
    series: TrafficMatrixSeries,
    analyzer: DominanceAnalyzer,
) -> EventFeatures:
    """Extract the classification features of one detected event.

    Parameters
    ----------
    event:
        The detected event (OD flows are column indices into *series*).
    series:
        The traffic-matrix series the detection ran on.
    analyzer:
        Dominance analyzer bound to the same series and its composition.
    """
    require(len(event.od_flows) >= 1, "event has no OD flows")
    columns = sorted(event.od_flows)
    od_pairs = tuple(series.od_pairs[c] for c in columns)
    bins = list(event.bins)

    relative_change: Dict[TrafficType, float] = {}
    directions: Dict[TrafficType, str] = {}
    excess: Dict[TrafficType, float] = {}
    for traffic_type in series.traffic_types:
        baseline, event_volume = _baseline_and_event_volume(
            series, traffic_type, columns, bins)
        delta = event_volume - baseline
        relative = delta / baseline if baseline > 0 else (np.inf if delta > 0 else 0.0)
        relative_change[traffic_type] = float(relative)
        excess[traffic_type] = float(delta)
        if relative > _FLAT_THRESHOLD:
            directions[traffic_type] = "spike"
        elif relative < -_FLAT_THRESHOLD:
            directions[traffic_type] = "dip"
        else:
            directions[traffic_type] = "flat"

    flows_excess = excess.get(TrafficType.FLOWS, 0.0)
    packets_excess = excess.get(TrafficType.PACKETS, 0.0)
    bytes_excess = excess.get(TrafficType.BYTES, 0.0)
    packets_per_flow = (packets_excess / flows_excess
                        if flows_excess > 0 and packets_excess > 0 else None)
    bytes_per_packet = (bytes_excess / packets_excess
                        if packets_excess > 0 and bytes_excess > 0 else None)

    # Per-OD-flow directions: an OD flow is "spiking" ("dipping") when its
    # own traffic in any type rises (falls) markedly during the event.
    per_flow_threshold = 2 * _FLAT_THRESHOLD
    n_spiking = 0
    n_dipping = 0
    for column in columns:
        flow_changes = []
        for traffic_type in series.traffic_types:
            baseline, event_volume = _baseline_and_event_volume(
                series, traffic_type, [column], bins)
            if baseline > 0:
                flow_changes.append((event_volume - baseline) / baseline)
        if not flow_changes:
            continue
        if max(flow_changes) > per_flow_threshold:
            n_spiking += 1
        elif min(flow_changes) < -per_flow_threshold:
            n_dipping += 1

    dominance = analyzer.summarize(od_pairs, bins)
    return EventFeatures(
        event=event,
        od_pairs=od_pairs,
        relative_change=relative_change,
        directions=directions,
        dominance=dominance,
        excess_packets_per_flow=packets_per_flow,
        excess_bytes_per_packet=bytes_per_packet,
        n_spiking_od_flows=n_spiking,
        n_dipping_od_flows=n_dipping,
    )
