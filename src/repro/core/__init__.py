"""The subspace method — the paper's primary contribution.

Pipeline:

1. :class:`~repro.core.pca.EigenflowDecomposition` decomposes the ``n x p``
   OD-flow timeseries into eigenflows ordered by captured variance;
2. :class:`~repro.core.subspace.SubspaceModel` splits the space into a
   normal subspace (top ``k`` eigenflows, paper ``k = 4``) and an anomalous
   (residual) subspace, and computes the SPE (``||x~||²``) and Hotelling T²
   statistics per timebin;
3. :class:`~repro.core.detector.SubspaceDetector` applies the Q-statistic
   and T² control limits at the 99.9% confidence level to flag anomalous
   timebins;
4. :mod:`repro.core.identification` pinpoints the smallest set of OD flows
   responsible for each detection;
5. :mod:`repro.core.events` aggregates detections across traffic types
   (B/P/F combinations), across OD flows (space), and across consecutive
   bins (time) into anomaly events — the unit the paper counts in
   Tables 1 and 3.

The convenience function :func:`detect_network_anomalies` runs the whole
pipeline over a :class:`~repro.flows.timeseries.TrafficMatrixSeries`.
"""

from repro.core.pca import EigenflowDecomposition
from repro.core.limits import ControlLimits, T2Scaling, control_limits
from repro.core.subspace import SubspaceModel
from repro.core.detector import (
    BinDetection,
    DetectionResult,
    SubspaceDetector,
    classify_bins,
)
from repro.core.identification import (
    identify_od_flows,
    identify_spe_flows,
    identify_t2_flows,
)
from repro.core.events import AnomalyEvent, aggregate_detections, fuse_traffic_types
from repro.core.pipeline import NetworkAnomalyReport, detect_network_anomalies

__all__ = [
    "EigenflowDecomposition",
    "SubspaceModel",
    "T2Scaling",
    "ControlLimits",
    "control_limits",
    "SubspaceDetector",
    "DetectionResult",
    "BinDetection",
    "classify_bins",
    "identify_od_flows",
    "identify_spe_flows",
    "identify_t2_flows",
    "AnomalyEvent",
    "aggregate_detections",
    "fuse_traffic_types",
    "detect_network_anomalies",
    "NetworkAnomalyReport",
]
