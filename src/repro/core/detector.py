"""The subspace anomaly detector.

:class:`SubspaceDetector` wraps the model fitting (PCA on the traffic
matrix), the two control limits (Q-statistic for the SPE, the F-based limit
for T²), and the per-bin decision into one object with a scikit-learn-like
``fit`` / ``detect`` interface.  The result object carries everything needed
to reproduce the three rows of Figure 1 and to drive identification and
event aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.limits import ControlLimits
from repro.core.pca import EigenflowDecomposition
from repro.core.subspace import SubspaceModel, T2Scaling
from repro.utils.validation import ensure_2d, ensure_probability, require

__all__ = ["BinDetection", "DetectionResult", "SubspaceDetector", "classify_bins"]


@dataclass(frozen=True)
class BinDetection:
    """One flagged timebin.

    ``triggered_by`` is ``"spe"``, ``"t2"``, or ``"both"`` depending on
    which statistic exceeded its control limit.
    """

    bin_index: int
    spe_value: float
    t2_value: float
    triggered_by: str

    @property
    def spe_triggered(self) -> bool:
        """Whether the SPE exceeded the Q-statistic limit."""
        return self.triggered_by in ("spe", "both")

    @property
    def t2_triggered(self) -> bool:
        """Whether T² exceeded its limit."""
        return self.triggered_by in ("t2", "both")


@dataclass
class DetectionResult:
    """Full output of a detection pass over one traffic matrix.

    The arrays all have length ``n`` (number of timebins analyzed).
    """

    state_magnitude: np.ndarray
    spe: np.ndarray
    spe_threshold: float
    t2: np.ndarray
    t2_threshold: float
    detections: List[BinDetection] = field(default_factory=list)

    @property
    def n_bins(self) -> int:
        """Number of timebins analyzed."""
        return int(self.spe.shape[0])

    @property
    def anomalous_bins(self) -> List[int]:
        """Sorted indices of all flagged timebins."""
        return sorted(d.bin_index for d in self.detections)

    @property
    def spe_bins(self) -> List[int]:
        """Bins flagged by the SPE / Q-statistic test."""
        return sorted(d.bin_index for d in self.detections if d.spe_triggered)

    @property
    def t2_bins(self) -> List[int]:
        """Bins flagged by the T² test."""
        return sorted(d.bin_index for d in self.detections if d.t2_triggered)

    @property
    def detection_rate(self) -> float:
        """Fraction of timebins flagged."""
        return len(self.detections) / self.n_bins if self.n_bins else 0.0

    def detection_at(self, bin_index: int) -> Optional[BinDetection]:
        """The detection at *bin_index*, or ``None`` if the bin is not flagged."""
        for detection in self.detections:
            if detection.bin_index == bin_index:
                return detection
        return None

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary (used in reports and benchmarks)."""
        return {
            "n_bins": float(self.n_bins),
            "n_detections": float(len(self.detections)),
            "n_spe": float(len(self.spe_bins)),
            "n_t2": float(len(self.t2_bins)),
            "spe_threshold": float(self.spe_threshold),
            "t2_threshold": float(self.t2_threshold),
            "detection_rate": self.detection_rate,
        }


def classify_bins(
    spe: np.ndarray,
    t2: np.ndarray,
    limits: ControlLimits,
    use_t2: bool = True,
    bin_offset: int = 0,
) -> List[BinDetection]:
    """Apply both control limits to per-bin statistics and flag exceedances.

    This is the per-bin decision shared by the batch detector and the
    streaming detector.  *bin_offset* shifts the reported ``bin_index`` so a
    chunk of a longer stream can report stream-global indices.  Only flagged
    bins incur any per-bin Python cost; the limit comparison is vectorized.
    """
    spe = np.asarray(spe, dtype=float)
    t2 = np.asarray(t2, dtype=float)
    require(spe.shape == t2.shape, "spe and t2 must have the same length")
    spe_hits = spe > limits.spe
    t2_hits = (t2 > limits.t2) if use_t2 else np.zeros_like(spe_hits)
    detections: List[BinDetection] = []
    for bin_index in np.nonzero(spe_hits | t2_hits)[0]:
        spe_hit = bool(spe_hits[bin_index])
        t2_hit = bool(t2_hits[bin_index])
        triggered = "both" if (spe_hit and t2_hit) else ("spe" if spe_hit else "t2")
        detections.append(BinDetection(
            bin_index=int(bin_index) + bin_offset,
            spe_value=float(spe[bin_index]),
            t2_value=float(t2[bin_index]),
            triggered_by=triggered,
        ))
    return detections


class SubspaceDetector:
    """PCA subspace anomaly detector with Q-statistic and T² control limits.

    Parameters
    ----------
    n_normal:
        Dimension ``k`` of the normal subspace (paper: 4).
    confidence:
        Confidence level for both control limits (paper: 0.999).
    t2_scaling:
        T² scaling convention (see :class:`~repro.core.subspace.T2Scaling`).
    use_t2:
        Whether to apply the T² test in addition to the SPE test (the
        paper's extension; disabling it gives the SPE-only detector of the
        earlier SIGCOMM paper, used in the E6 ablation).
    center:
        Whether to column-center the data before PCA.
    """

    def __init__(
        self,
        n_normal: int = 4,
        confidence: float = 0.999,
        t2_scaling: T2Scaling = T2Scaling.HOTELLING,
        use_t2: bool = True,
        center: bool = True,
    ) -> None:
        require(n_normal >= 1, "n_normal must be >= 1")
        ensure_probability(confidence, "confidence")
        self._n_normal = n_normal
        self._confidence = confidence
        self._t2_scaling = T2Scaling(t2_scaling)
        self._use_t2 = use_t2
        self._center = center
        self._model: Optional[SubspaceModel] = None

    # ------------------------------------------------------------------ #
    # configuration accessors
    # ------------------------------------------------------------------ #
    @property
    def n_normal(self) -> int:
        """Dimension of the normal subspace."""
        return self._n_normal

    @property
    def confidence(self) -> float:
        """Confidence level of the control limits."""
        return self._confidence

    @property
    def use_t2(self) -> bool:
        """Whether the T² test is applied."""
        return self._use_t2

    @property
    def model(self) -> SubspaceModel:
        """The fitted subspace model (raises if :meth:`fit` was not called)."""
        if self._model is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        return self._model

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._model is not None

    # ------------------------------------------------------------------ #
    # fitting and detection
    # ------------------------------------------------------------------ #
    def fit(self, data: np.ndarray) -> "SubspaceDetector":
        """Fit the PCA subspace model to the ``n x p`` traffic matrix."""
        matrix = ensure_2d(data, "data")
        require(matrix.shape[0] > self._n_normal + 1,
                "need more timebins than n_normal + 1 to fit the model")
        decomposition = EigenflowDecomposition(matrix, center=self._center)
        require(decomposition.rank > self._n_normal,
                "n_normal must be smaller than the rank of the data")
        self._model = SubspaceModel(decomposition, n_normal=self._n_normal,
                                    t2_scaling=self._t2_scaling)
        return self

    def detect(self, data: Optional[np.ndarray] = None) -> DetectionResult:
        """Run detection on *data* (default: the training matrix itself).

        The paper fits and detects on the same window (one week at a time);
        passing new data evaluates the fitted model on unseen bins.
        """
        model = self.model
        spe = model.spe(data)
        t2 = model.t2(data)
        state = model.state_magnitude(data)
        limits = model.control_limits(self._confidence)
        detections = classify_bins(spe, t2, limits, use_t2=self._use_t2)
        return DetectionResult(
            state_magnitude=state,
            spe=spe,
            spe_threshold=limits.spe,
            t2=t2,
            t2_threshold=limits.t2,
            detections=detections,
        )

    def fit_detect(self, data: np.ndarray) -> DetectionResult:
        """Convenience: fit on *data* and detect on the same window."""
        return self.fit(data).detect()
