"""Spatio-temporal aggregation of detections into anomaly events.

The paper casts raw detections as triples ``(traffic type, time, OD flow)``
and then aggregates them three ways:

1. triples sharing the same timebin but coming from different traffic types
   are merged into the combination categories **BP, BF, FP, BFP** (a BP
   anomaly is one detected in both the byte and the packet timeseries at
   the same time);
2. triples with the same traffic type and time are merged in **space**
   (their OD flows are unioned);
3. triples with consecutive time values and the same traffic type are
   merged in **time**.

The result is a set of :class:`AnomalyEvent` objects, each with a traffic
combination label (one of B, P, F, BP, BF, FP, BFP), a set of OD flows, and
a span of consecutive timebins — the unit counted in Tables 1 and 3 and
histogrammed in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.flows.timeseries import TrafficType
from repro.utils.validation import require

__all__ = ["Detection", "AnomalyEvent", "aggregate_detections", "fuse_traffic_types",
           "combination_label", "COMBINATION_LABELS"]

#: The seven traffic-type combination labels of Table 1, in the paper's order.
COMBINATION_LABELS: Tuple[str, ...] = ("B", "F", "P", "BF", "BP", "FP", "BFP")


@dataclass(frozen=True)
class Detection:
    """One raw detection triple: (traffic type, timebin, responsible OD flows)."""

    traffic_type: TrafficType
    bin_index: int
    od_flows: Tuple[int, ...]
    statistic: str = "spe"

    def __post_init__(self) -> None:
        require(self.bin_index >= 0, "bin_index must be non-negative")
        require(len(self.od_flows) >= 1, "a detection needs at least one OD flow")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by streaming checkpoints)."""
        return {
            "traffic_type": TrafficType(self.traffic_type).value,
            "bin_index": self.bin_index,
            "od_flows": list(self.od_flows),
            "statistic": self.statistic,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Detection":
        """Inverse of :meth:`to_dict`."""
        return cls(
            traffic_type=TrafficType(data["traffic_type"]),
            bin_index=int(data["bin_index"]),
            od_flows=tuple(int(f) for f in data["od_flows"]),
            statistic=str(data["statistic"]),
        )


@dataclass
class AnomalyEvent:
    """An aggregated anomaly event.

    Parameters
    ----------
    traffic_label:
        Combination label (B, P, F, BP, BF, FP, or BFP).
    start_bin, end_bin:
        Inclusive timebin span of the event.
    od_flows:
        Union of responsible OD-flow column indices.
    bins:
        All timebins in the event.
    statistics:
        Which statistics triggered ("spe", "t2"), unioned over the span.
    """

    traffic_label: str
    start_bin: int
    end_bin: int
    od_flows: FrozenSet[int]
    bins: Tuple[int, ...]
    statistics: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        require(self.traffic_label in COMBINATION_LABELS,
                f"traffic_label must be one of {COMBINATION_LABELS}")
        require(self.start_bin <= self.end_bin, "start_bin must be <= end_bin")
        require(len(self.od_flows) >= 1, "an event needs at least one OD flow")
        require(len(self.bins) >= 1, "an event needs at least one bin")

    @property
    def duration_bins(self) -> int:
        """Number of consecutive bins spanned by the event."""
        return self.end_bin - self.start_bin + 1

    def duration_minutes(self, bin_seconds: int = 300) -> float:
        """Event duration in minutes (Figure 2a measures this)."""
        return self.duration_bins * bin_seconds / 60.0

    @property
    def n_od_flows(self) -> int:
        """Number of OD flows involved (Figure 2b measures this)."""
        return len(self.od_flows)

    @property
    def traffic_types(self) -> Tuple[TrafficType, ...]:
        """The traffic types in the combination label."""
        return tuple(TrafficType.from_short_label(ch) for ch in self.traffic_label)

    def involves_traffic_type(self, traffic_type: TrafficType) -> bool:
        """Whether the event was detected in *traffic_type*."""
        return TrafficType(traffic_type).short_label in self.traffic_label

    def overlaps_bins(self, bins: Iterable[int]) -> bool:
        """Whether the event's span intersects *bins*."""
        span = set(self.bins)
        return any(b in span for b in bins)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by streaming checkpoints)."""
        return {
            "traffic_label": self.traffic_label,
            "start_bin": self.start_bin,
            "end_bin": self.end_bin,
            "od_flows": sorted(self.od_flows),
            "bins": list(self.bins),
            "statistics": sorted(self.statistics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AnomalyEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            traffic_label=str(data["traffic_label"]),
            start_bin=int(data["start_bin"]),
            end_bin=int(data["end_bin"]),
            od_flows=frozenset(int(f) for f in data["od_flows"]),
            bins=tuple(int(b) for b in data["bins"]),
            statistics=frozenset(str(s) for s in data["statistics"]),
        )


def combination_label(traffic_types: Iterable[TrafficType]) -> str:
    """Canonical combination label for a set of traffic types (B, P, F order)."""
    present = {TrafficType(t).short_label for t in traffic_types}
    label = "".join(ch for ch in "BFP" if ch in present)
    # Canonicalize to the paper's spellings (BP not PB, FP not PF, BFP).
    require(label != "", "at least one traffic type is required")
    return label


def aggregate_detections(detections: Sequence[Detection]) -> List[AnomalyEvent]:
    """Aggregate raw detection triples into anomaly events.

    Implements the paper's three-step aggregation (combination labels per
    bin, union in space, merge of consecutive bins carrying the same label).
    """
    if not detections:
        return []

    # Step 1 & 2: per timebin, collect the traffic types that detected it,
    # the union of OD flows, and the triggering statistics.
    per_bin: Dict[int, Dict[str, set]] = {}
    for detection in detections:
        entry = per_bin.setdefault(detection.bin_index,
                                   {"types": set(), "flows": set(), "stats": set()})
        entry["types"].add(TrafficType(detection.traffic_type))
        entry["flows"].update(detection.od_flows)
        entry["stats"].add(detection.statistic)

    # Step 3: merge consecutive bins with the same combination label.
    events: List[AnomalyEvent] = []
    sorted_bins = sorted(per_bin.keys())
    current_bins: List[int] = []
    current_label: Optional[str] = None
    current_flows: set = set()
    current_stats: set = set()

    def _flush() -> None:
        if not current_bins:
            return
        events.append(AnomalyEvent(
            traffic_label=current_label,
            start_bin=current_bins[0],
            end_bin=current_bins[-1],
            od_flows=frozenset(current_flows),
            bins=tuple(current_bins),
            statistics=frozenset(current_stats),
        ))

    for bin_index in sorted_bins:
        label = combination_label(per_bin[bin_index]["types"])
        contiguous = bool(current_bins) and bin_index == current_bins[-1] + 1
        if contiguous and label == current_label:
            current_bins.append(bin_index)
            current_flows.update(per_bin[bin_index]["flows"])
            current_stats.update(per_bin[bin_index]["stats"])
        else:
            _flush()
            current_bins = [bin_index]
            current_label = label
            current_flows = set(per_bin[bin_index]["flows"])
            current_stats = set(per_bin[bin_index]["stats"])
    _flush()
    return events


def fuse_traffic_types(
    per_type_detections: Mapping[TrafficType, Sequence[Detection]],
) -> List[AnomalyEvent]:
    """Fuse per-traffic-type detections into the final event list.

    Thin wrapper over :func:`aggregate_detections` that accepts one
    detection list per traffic type (the natural output of running the
    detector three times) and validates consistency.
    """
    all_detections: List[Detection] = []
    for traffic_type, detections in per_type_detections.items():
        for detection in detections:
            require(TrafficType(detection.traffic_type) == TrafficType(traffic_type),
                    "detection traffic_type does not match its mapping key")
            all_detections.append(detection)
    return aggregate_detections(all_detections)


def count_by_label(events: Sequence[AnomalyEvent]) -> Dict[str, int]:
    """Number of events per combination label (the rows of Table 1)."""
    counts = {label: 0 for label in COMBINATION_LABELS}
    for event in events:
        counts[event.traffic_label] += 1
    return counts
