"""Identification of the OD flows responsible for a detection.

The paper uses a deliberately simple heuristic: "determine the smallest set
of OD flows, which if removed from the corresponding statistic, would bring
it under threshold".  We implement that greedily:

* for an SPE detection, OD flows are removed in decreasing order of their
  squared residual contribution ``x̃_f²`` until the remaining sum drops
  below the Q-statistic threshold;
* for a T² detection, OD flows are removed in decreasing order of how much
  their removal reduces the T² value (removing flow ``f`` subtracts its
  contribution ``(x_f - mean_f)·v_{i,f}`` from every normal-subspace
  score) until T² drops below its threshold.

Greedy removal is exactly the paper's procedure for SPE (contributions are
additive there, so greedy = optimal); for T² it is the natural greedy
approximation of "smallest set".
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.subspace import SubspaceModel, T2Scaling
from repro.utils.validation import ensure_2d, require

__all__ = ["identify_od_flows", "spe_contributions", "t2_after_removal"]


def spe_contributions(model: SubspaceModel, data: np.ndarray, bin_index: int) -> np.ndarray:
    """Per-OD-flow contribution ``x̃_f²`` to the SPE of one timebin."""
    residual = model.residual_vector(data, bin_index)
    return residual**2


def t2_after_removal(
    model: SubspaceModel,
    data: np.ndarray,
    bin_index: int,
    removed: Sequence[int],
) -> float:
    """T² of one timebin after zeroing the centered values of *removed* flows.

    Removal is interpreted as "this OD flow behaved normally", i.e. its
    centered value is set to zero, which subtracts its contribution from
    every normal-subspace score.
    """
    matrix = ensure_2d(data, "data")
    centered = matrix[bin_index] - model.decomposition.column_means
    if removed:
        centered = centered.copy()
        centered[np.asarray(removed, dtype=int)] = 0.0
    scores = centered @ model.normal_axes
    eigenvalues = model.decomposition.eigenvalues[:model.n_normal]
    safe = np.where(eigenvalues > 0, eigenvalues, np.inf)
    value = float(np.sum(scores**2 / safe))
    if model.t2_scaling is T2Scaling.RAW_EIGENFLOW:
        value /= model.n_samples - 1
    return value


def identify_od_flows(
    model: SubspaceModel,
    data: np.ndarray,
    bin_index: int,
    statistic: str,
    threshold: float,
    max_flows: Optional[int] = None,
) -> List[int]:
    """Greedy smallest-set identification of the responsible OD flows.

    Parameters
    ----------
    model:
        The fitted subspace model.
    data:
        The ``n x p`` traffic matrix the detection was made on.
    bin_index:
        The flagged timebin.
    statistic:
        ``"spe"`` or ``"t2"`` — which statistic exceeded its threshold.
    threshold:
        The control limit of that statistic.
    max_flows:
        Safety cap on the number of flows returned (default: all flows).

    Returns
    -------
    list of int
        Column indices of the identified OD flows, most responsible first.
        At least one flow is always returned for a genuinely flagged bin.
    """
    require(statistic in ("spe", "t2"), "statistic must be 'spe' or 't2'")
    matrix = ensure_2d(data, "data")
    n_features = matrix.shape[1]
    cap = n_features if max_flows is None else min(max_flows, n_features)

    if statistic == "spe":
        contributions = spe_contributions(model, matrix, bin_index)
        order = np.argsort(contributions)[::-1]
        total = float(contributions.sum())
        identified: List[int] = []
        for flow_index in order:
            if total <= threshold or len(identified) >= cap:
                break
            identified.append(int(flow_index))
            total -= float(contributions[flow_index])
        if not identified:
            identified.append(int(order[0]))
        return identified

    # T² branch: greedy removal by actual reduction of the statistic.
    identified = []
    remaining = list(range(n_features))
    current = t2_after_removal(model, matrix, bin_index, identified)
    while current > threshold and len(identified) < cap and remaining:
        best_flow = None
        best_value = current
        for flow_index in remaining:
            candidate = t2_after_removal(model, matrix, bin_index, identified + [flow_index])
            if candidate < best_value:
                best_value = candidate
                best_flow = flow_index
        if best_flow is None:
            # No single removal reduces the statistic further; stop.
            break
        identified.append(best_flow)
        remaining.remove(best_flow)
        current = best_value
    if not identified:
        # Fall back to the flow with the largest absolute centered value
        # weighted by the normal axes (largest score contribution).
        centered = matrix[bin_index] - model.decomposition.column_means
        contribution = np.sum((centered[:, np.newaxis] * model.normal_axes)**2, axis=1)
        identified.append(int(np.argmax(contribution)))
    return identified
