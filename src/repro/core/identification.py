"""Identification of the OD flows responsible for a detection.

The paper uses a deliberately simple heuristic: "determine the smallest set
of OD flows, which if removed from the corresponding statistic, would bring
it under threshold".  We implement that greedily:

* for an SPE detection, OD flows are removed in decreasing order of their
  squared residual contribution ``x̃_f²`` until the remaining sum drops
  below the Q-statistic threshold;
* for a T² detection, OD flows are removed in decreasing order of how much
  their removal reduces the T² value (removing flow ``f`` subtracts its
  contribution ``(x_f - mean_f)·v_{i,f}`` from every normal-subspace
  score) until T² drops below its threshold.

Greedy removal is exactly the paper's procedure for SPE (contributions are
additive there, so greedy = optimal); for T² it is the natural greedy
approximation of "smallest set".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.subspace import SubspaceModel, T2Scaling
from repro.utils.validation import ensure_2d, require

__all__ = [
    "identify_od_flows",
    "identify_spe_flows",
    "identify_t2_flows",
    "spe_contributions",
    "t2_after_removal",
    "t2_of_centered_row",
]


def spe_contributions(model: SubspaceModel, data: np.ndarray, bin_index: int) -> np.ndarray:
    """Per-OD-flow contribution ``x̃_f²`` to the SPE of one timebin."""
    residual = model.residual_vector(data, bin_index)
    return residual**2


def t2_of_centered_row(
    centered_row: np.ndarray,
    normal_axes: np.ndarray,
    eigenvalues: np.ndarray,
    n_samples: int,
    t2_scaling: T2Scaling = T2Scaling.HOTELLING,
    removed: Sequence[int] = (),
) -> float:
    """T² of one centered state vector, optionally after zeroing *removed* flows.

    Removal is interpreted as "this OD flow behaved normally", i.e. its
    centered value is set to zero, which subtracts its contribution from
    every normal-subspace score.  This is the model-free primitive shared by
    the batch and streaming identification paths: it needs only the ``p x k``
    normal axes, the top-``k`` (or longer) eigenvalue spectrum, and the
    sample count used for ``RAW_EIGENFLOW`` rescaling.
    """
    k = normal_axes.shape[1]
    if len(removed):
        centered_row = centered_row.copy()
        centered_row[np.asarray(removed, dtype=int)] = 0.0
    scores = centered_row @ normal_axes
    lam = np.asarray(eigenvalues, dtype=float)[:k]
    safe = np.where(lam > 0, lam, np.inf)
    value = float(np.sum(scores**2 / safe))
    if T2Scaling(t2_scaling) is T2Scaling.RAW_EIGENFLOW:
        value /= n_samples - 1
    return value


def t2_after_removal(
    model: SubspaceModel,
    data: np.ndarray,
    bin_index: int,
    removed: Sequence[int],
) -> float:
    """T² of one timebin after zeroing the centered values of *removed* flows."""
    matrix = ensure_2d(data, "data")
    centered = matrix[bin_index] - model.decomposition.column_means
    return t2_of_centered_row(
        centered,
        model.normal_axes,
        model.decomposition.eigenvalues,
        model.n_samples,
        model.t2_scaling,
        removed,
    )


def identify_spe_flows(
    residual_row: np.ndarray,
    threshold: float,
    max_flows: Optional[int] = None,
) -> List[int]:
    """Greedy smallest-set identification for an SPE detection.

    Works directly on the residual vector ``x̃`` of the flagged bin, so both
    the batch and streaming detectors can call it without a fitted
    :class:`SubspaceModel`.  Flows are removed in decreasing order of their
    squared residual contribution until the remaining SPE drops below
    *threshold* (greedy = optimal here because contributions are additive).
    """
    residual_row = np.asarray(residual_row, dtype=float).ravel()
    contributions = residual_row**2
    n_features = contributions.size
    cap = n_features if max_flows is None else min(max_flows, n_features)
    order = np.argsort(contributions)[::-1]
    total = float(contributions.sum())
    identified: List[int] = []
    for flow_index in order:
        if total <= threshold or len(identified) >= cap:
            break
        identified.append(int(flow_index))
        total -= float(contributions[flow_index])
    if not identified:
        identified.append(int(order[0]))
    return identified


def identify_t2_flows(
    centered_row: np.ndarray,
    normal_axes: np.ndarray,
    eigenvalues: np.ndarray,
    n_samples: int,
    threshold: float,
    t2_scaling: T2Scaling = T2Scaling.HOTELLING,
    max_flows: Optional[int] = None,
) -> List[int]:
    """Greedy smallest-set identification for a T² detection.

    Works directly on the centered state vector of the flagged bin plus the
    normal-subspace description (axes, eigenvalues, sample count), removing
    the flow whose zeroing most reduces T² until it drops below *threshold*.
    """
    centered_row = np.asarray(centered_row, dtype=float).ravel()
    n_features = centered_row.size
    cap = n_features if max_flows is None else min(max_flows, n_features)

    def value_after(removed: Sequence[int]) -> float:
        return t2_of_centered_row(centered_row, normal_axes, eigenvalues,
                                  n_samples, t2_scaling, removed)

    identified: List[int] = []
    remaining = list(range(n_features))
    current = value_after(identified)
    while current > threshold and len(identified) < cap and remaining:
        best_flow = None
        best_value = current
        for flow_index in remaining:
            candidate = value_after(identified + [flow_index])
            if candidate < best_value:
                best_value = candidate
                best_flow = flow_index
        if best_flow is None:
            # No single removal reduces the statistic further; stop.
            break
        identified.append(best_flow)
        remaining.remove(best_flow)
        current = best_value
    if not identified:
        # Fall back to the flow with the largest absolute centered value
        # weighted by the normal axes (largest score contribution).
        contribution = np.sum((centered_row[:, np.newaxis] * normal_axes)**2, axis=1)
        identified.append(int(np.argmax(contribution)))
    return identified


def identify_od_flows(
    model: SubspaceModel,
    data: np.ndarray,
    bin_index: int,
    statistic: str,
    threshold: float,
    max_flows: Optional[int] = None,
) -> List[int]:
    """Greedy smallest-set identification of the responsible OD flows.

    Parameters
    ----------
    model:
        The fitted subspace model.
    data:
        The ``n x p`` traffic matrix the detection was made on.
    bin_index:
        The flagged timebin.
    statistic:
        ``"spe"`` or ``"t2"`` — which statistic exceeded its threshold.
    threshold:
        The control limit of that statistic.
    max_flows:
        Safety cap on the number of flows returned (default: all flows).

    Returns
    -------
    list of int
        Column indices of the identified OD flows, most responsible first.
        At least one flow is always returned for a genuinely flagged bin.
    """
    require(statistic in ("spe", "t2"), "statistic must be 'spe' or 't2'")
    matrix = ensure_2d(data, "data")

    if statistic == "spe":
        residual = model.residual_vector(matrix, bin_index)
        return identify_spe_flows(residual, threshold, max_flows)

    centered = matrix[bin_index] - model.decomposition.column_means
    return identify_t2_flows(
        centered,
        model.normal_axes,
        model.decomposition.eigenvalues,
        model.n_samples,
        threshold,
        model.t2_scaling,
        max_flows,
    )
