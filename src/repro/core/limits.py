"""Control limits of the subspace method as reusable, model-free pieces.

The batch :class:`~repro.core.subspace.SubspaceModel` and the streaming
detector both flag timebins against the same two control limits — the
Jackson–Mudholkar Q-statistic for the SPE and the F-based Hotelling limit
for T².  This module computes both from nothing but the eigenvalue spectrum
and the (effective) sample count, so any model representation — a full SVD,
an incrementally maintained eigenbasis, a deserialized snapshot — can reuse
them without constructing an :class:`~repro.core.pca.EigenflowDecomposition`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.utils.stats import q_statistic_threshold, t_squared_threshold
from repro.utils.validation import ensure_probability, require

__all__ = ["T2Scaling", "ControlLimits", "control_limits"]


class T2Scaling(str, enum.Enum):
    """How the T² statistic scales the normal-subspace scores."""

    #: Classical Hotelling T²: scores standardized by their eigenvalue,
    #: i.e. ``Σ_{i≤k} score²_i / λ_i = (n-1) Σ_{i≤k} u²_ij``.
    HOTELLING = "hotelling"
    #: The paper's literal formula on unit-norm eigenflows: ``Σ_{i≤k} u²_ij``.
    RAW_EIGENFLOW = "raw"


@dataclass(frozen=True)
class ControlLimits:
    """The two control limits applied per timebin, at one confidence level."""

    spe: float
    t2: float
    confidence: float

    def __post_init__(self) -> None:
        require(self.spe >= 0.0, "spe limit must be non-negative")
        require(self.t2 >= 0.0, "t2 limit must be non-negative")
        ensure_probability(self.confidence, "confidence")

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form (used by streaming checkpoints)."""
        return {"spe": self.spe, "t2": self.t2, "confidence": self.confidence}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "ControlLimits":
        """Inverse of :meth:`to_dict`."""
        return cls(spe=float(data["spe"]), t2=float(data["t2"]),
                   confidence=float(data["confidence"]))


def control_limits(
    eigenvalues: np.ndarray,
    n_normal: int,
    n_samples: int,
    confidence: float = 0.999,
    t2_scaling: T2Scaling = T2Scaling.HOTELLING,
) -> ControlLimits:
    """Compute both control limits from an eigenvalue spectrum.

    Parameters
    ----------
    eigenvalues:
        All eigenvalues of the data covariance, descending.  Residual
        eigenvalues (index >= *n_normal*) drive the Q-statistic limit;
        appended zeros (e.g. from an eigendecomposition of a rank-deficient
        covariance) are harmless.
    n_normal:
        Dimension ``k`` of the normal subspace.
    n_samples:
        Number of timebins the spectrum was estimated from.  Streaming
        models pass their (rounded) effective sample count.
    confidence:
        One-sided confidence level of both limits (paper: 0.999).
    t2_scaling:
        T² scaling convention; under ``RAW_EIGENFLOW`` the T² limit is
        divided by ``n_samples - 1`` so both conventions flag the same bins.
    """
    ensure_probability(confidence, "confidence")
    spe_limit = q_statistic_threshold(eigenvalues, n_normal, confidence)
    t2_limit = t_squared_threshold(n_normal, n_samples, confidence)
    if T2Scaling(t2_scaling) is T2Scaling.RAW_EIGENFLOW:
        t2_limit /= n_samples - 1
    return ControlLimits(spe=float(spe_limit), t2=float(t2_limit),
                         confidence=confidence)
