"""Principal Component Analysis of the OD-flow ensemble.

Following the structural-analysis companion paper, the ``n x p`` OD-flow
timeseries ``X`` is decomposed by singular value decomposition of the
(column-centered) data matrix::

    X_c = U S V^T

* the columns of ``V`` are the **principal axes** in OD-flow space;
* the columns of ``U`` are the **eigenflows** — unit-norm temporal patterns
  ordered by the variance they capture;
* the eigenvalues of the sample covariance are ``S² / (n - 1)``.

The decomposition is the only numerical heavy lifting in the subspace
method; everything else is projections and thresholds built on top of it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import ensure_2d, require

__all__ = ["EigenflowDecomposition"]


class EigenflowDecomposition:
    """SVD/PCA decomposition of an OD-flow timeseries matrix.

    Parameters
    ----------
    data:
        The ``n x p`` matrix (rows = timebins, columns = OD flows).
    center:
        Whether to subtract the per-column (per-OD-flow) temporal mean
        before decomposing.  The paper's formulation assumes zero-mean
        eigenflows, so centering defaults to ``True``.
    """

    def __init__(self, data: np.ndarray, center: bool = True) -> None:
        matrix = ensure_2d(data, "data")
        n, p = matrix.shape
        require(n >= 2, "need at least two timebins")
        require(p >= 1, "need at least one OD flow")
        self._n_samples = n
        self._n_features = p
        self._center = center
        self._column_means = matrix.mean(axis=0) if center else np.zeros(p)
        centered = matrix - self._column_means

        # Economy SVD: U (n x r), singular values (r,), Vt (r x p).
        u, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self._u = u
        self._singular_values = singular_values
        self._vt = vt
        # Derived arrays are computed once and handed out as read-only
        # views; the factors themselves are frozen so a leaked view can
        # never corrupt the decomposition.
        for array in (self._u, self._singular_values, self._vt, self._column_means):
            array.setflags(write=False)
        self._eigenvalues = self._singular_values**2 / (n - 1)
        self._eigenvalues.setflags(write=False)
        self._explained_variance_ratio: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # shapes and raw factors
    # ------------------------------------------------------------------ #
    @property
    def n_samples(self) -> int:
        """Number of timebins ``n``."""
        return self._n_samples

    @property
    def n_features(self) -> int:
        """Number of OD flows ``p``."""
        return self._n_features

    @property
    def rank(self) -> int:
        """Number of available components ``min(n, p)``."""
        return self._singular_values.size

    @property
    def centered(self) -> bool:
        """Whether the data was column-centered before decomposition."""
        return self._center

    @property
    def column_means(self) -> np.ndarray:
        """Per-OD-flow temporal means subtracted before decomposition.

        Returns a read-only view (no copy is made per call).
        """
        return self._column_means

    @property
    def singular_values(self) -> np.ndarray:
        """Singular values of the (centered) data matrix, descending.

        Returns a read-only view (no copy is made per call).
        """
        return self._singular_values

    @property
    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of the sample covariance, ``S² / (n - 1)``, descending.

        Computed once at construction; returns a read-only view.
        """
        return self._eigenvalues

    def eigenflow(self, index: int) -> np.ndarray:
        """The *index*-th eigenflow (unit-norm temporal pattern, length ``n``).

        Returns a read-only view into the stored factor (no copy).
        """
        require(0 <= index < self.rank, "eigenflow index out of range")
        return self._u[:, index]

    def eigenflows(self, n_components: Optional[int] = None) -> np.ndarray:
        """The first *n_components* eigenflows as an ``n x k`` read-only view."""
        k = self.rank if n_components is None else n_components
        require(0 < k <= self.rank, "n_components out of range")
        return self._u[:, :k]

    def principal_axis(self, index: int) -> np.ndarray:
        """The *index*-th principal axis (unit vector, read-only view)."""
        require(0 <= index < self.rank, "principal axis index out of range")
        return self._vt[index]

    def principal_axes(self, n_components: Optional[int] = None) -> np.ndarray:
        """The first *n_components* principal axes as a ``p x k`` read-only view."""
        k = self.rank if n_components is None else n_components
        require(0 < k <= self.rank, "n_components out of range")
        return self._vt[:k].T

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured by each component.

        Computed once on first call and cached; returns a read-only view.
        """
        if self._explained_variance_ratio is None:
            eigenvalues = self._eigenvalues
            total = eigenvalues.sum()
            if total <= 0:
                ratio = np.zeros_like(eigenvalues)
            else:
                ratio = eigenvalues / total
            ratio.setflags(write=False)
            self._explained_variance_ratio = ratio
        return self._explained_variance_ratio

    def cumulative_variance_ratio(self) -> np.ndarray:
        """Cumulative explained-variance fractions."""
        return np.cumsum(self.explained_variance_ratio())

    def scores(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        """Principal-component scores (projections on the principal axes).

        Without *data*, returns the training scores ``U S`` (``n x r``);
        with *data*, projects the (centered) new rows onto the axes.
        """
        if data is None:
            return self._u * self._singular_values[np.newaxis, :]
        matrix = ensure_2d(data, "data")
        require(matrix.shape[1] == self._n_features,
                "data has the wrong number of OD flows")
        return (matrix - self._column_means) @ self._vt.T

    def reconstruct(self, n_components: int, data: Optional[np.ndarray] = None) -> np.ndarray:
        """Reconstruction of the data using only the top *n_components*."""
        require(0 < n_components <= self.rank, "n_components out of range")
        scores = self.scores(data)[:, :n_components]
        return scores @ self._vt[:n_components] + self._column_means
