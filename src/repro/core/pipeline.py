"""End-to-end subspace diagnosis over a multi-type traffic matrix series.

:func:`detect_network_anomalies` is the library's highest-level entry point:
it runs the subspace detector independently on each traffic type (bytes,
packets, IP-flows), identifies the responsible OD flows for every flagged
timebin, and fuses the per-type detections into aggregated anomaly events —
i.e. everything the paper does before the manual classification step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.detector import DetectionResult, SubspaceDetector
from repro.core.events import AnomalyEvent, Detection, aggregate_detections
from repro.core.identification import identify_od_flows
from repro.core.subspace import T2Scaling
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.utils.validation import ensure_probability, require

__all__ = ["NetworkAnomalyReport", "detect_network_anomalies"]


@dataclass
class NetworkAnomalyReport:
    """Everything produced by one diagnosis pass over a traffic series.

    Attributes
    ----------
    series:
        The analyzed traffic-matrix series.
    results:
        Per-traffic-type :class:`~repro.core.detector.DetectionResult`.
    detections:
        Per-traffic-type raw detection triples (with identified OD flows).
    events:
        The fused, aggregated anomaly events.
    """

    series: TrafficMatrixSeries
    results: Dict[TrafficType, DetectionResult]
    detections: Dict[TrafficType, List[Detection]]
    events: List[AnomalyEvent]

    @property
    def n_events(self) -> int:
        """Number of aggregated anomaly events."""
        return len(self.events)

    def events_with_label(self, label: str) -> List[AnomalyEvent]:
        """Events carrying the given combination label (e.g. ``"BP"``)."""
        return [event for event in self.events if event.traffic_label == label]

    def events_overlapping(self, bins: Sequence[int]) -> List[AnomalyEvent]:
        """Events whose time span intersects *bins*."""
        return [event for event in self.events if event.overlaps_bins(bins)]

    def od_pair_of(self, od_flow_index: int) -> Tuple[str, str]:
        """Translate an OD-flow column index back to its (origin, destination)."""
        return self.series.od_pairs[od_flow_index]

    def label_counts(self) -> Dict[str, int]:
        """Event counts per combination label (the rows of Table 1)."""
        from repro.core.events import count_by_label

        return count_by_label(self.events)


def detect_network_anomalies(
    series: TrafficMatrixSeries,
    n_normal: int = 4,
    confidence: float = 0.999,
    t2_scaling: T2Scaling = T2Scaling.HOTELLING,
    use_t2: bool = True,
    traffic_types: Optional[Sequence[TrafficType]] = None,
    max_identified_flows: int = 16,
) -> NetworkAnomalyReport:
    """Run the full subspace diagnosis over *series*.

    Parameters
    ----------
    series:
        The OD-flow traffic-matrix series (any subset of the three traffic
        types).
    n_normal:
        Normal-subspace dimension ``k`` (paper: 4).
    confidence:
        Confidence level of both control limits (paper: 0.999).
    t2_scaling:
        T² scaling convention.
    use_t2:
        Whether to apply the T² test (disable for the SPE-only ablation).
    traffic_types:
        Which traffic types to analyze (default: all present in *series*).
    max_identified_flows:
        Cap on the number of OD flows identified per flagged bin.

    Returns
    -------
    NetworkAnomalyReport
        Per-type detection results, identified detections, and fused events.
    """
    ensure_probability(confidence, "confidence")
    types = list(traffic_types) if traffic_types is not None else series.traffic_types
    require(len(types) >= 1, "at least one traffic type must be analyzed")

    results: Dict[TrafficType, DetectionResult] = {}
    detections: Dict[TrafficType, List[Detection]] = {}

    for traffic_type in types:
        traffic_type = TrafficType(traffic_type)
        matrix = series.matrix(traffic_type)
        detector = SubspaceDetector(
            n_normal=n_normal,
            confidence=confidence,
            t2_scaling=t2_scaling,
            use_t2=use_t2,
        )
        result = detector.fit_detect(matrix)
        results[traffic_type] = result

        type_detections: List[Detection] = []
        for bin_detection in result.detections:
            statistic = "spe" if bin_detection.spe_triggered else "t2"
            threshold = (result.spe_threshold if statistic == "spe"
                         else result.t2_threshold)
            flows = identify_od_flows(
                detector.model,
                matrix,
                bin_detection.bin_index,
                statistic,
                threshold,
                max_flows=max_identified_flows,
            )
            type_detections.append(Detection(
                traffic_type=traffic_type,
                bin_index=bin_detection.bin_index,
                od_flows=tuple(flows),
                statistic=statistic,
            ))
        detections[traffic_type] = type_detections

    all_detections = [d for per_type in detections.values() for d in per_type]
    events = aggregate_detections(all_detections)
    return NetworkAnomalyReport(
        series=series,
        results=results,
        detections=detections,
        events=events,
    )
