"""The normal/anomalous subspace split and its two detection statistics.

Given the eigenflow decomposition, the top ``k`` principal axes span the
**normal subspace** and the remaining axes the **anomalous (residual)
subspace**.  Every traffic state vector ``x`` (one row of ``X``) splits as
``x = x̂ + x̃`` with ``x̂ = P Pᵀ x`` the modeled part and ``x̃`` the residual.

Two statistics are computed per timebin:

* the **squared prediction error** ``SPE = ||x̃||²`` — anomalies that live in
  the residual subspace;
* the **Hotelling T²** on the normal-subspace scores — anomalies so large
  (or so widely shared across OD flows) that PCA absorbed them into a top
  eigenflow, which the SPE alone would miss (the paper's §2.2 extension).

The paper writes ``t²_j = Σ_{i≤k} u²_ij`` over unit-norm eigenflows but
quotes the classical ``k(n-1)/(n-k)·F`` control limit, which applies to
eigenvalue-standardized scores.  :class:`T2Scaling` exposes both choices;
``HOTELLING`` (the statistically consistent one, equal to
``(n-1)·Σ u²_ij``) is the default and matches the magnitudes of Figure 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.limits import ControlLimits, T2Scaling, control_limits
from repro.core.pca import EigenflowDecomposition
from repro.utils.validation import ensure_2d, require

__all__ = ["T2Scaling", "SubspaceModel"]


class SubspaceModel:
    """Normal/anomalous subspace model fitted to one traffic matrix.

    Parameters
    ----------
    decomposition:
        A fitted :class:`~repro.core.pca.EigenflowDecomposition`.
    n_normal:
        Dimension ``k`` of the normal subspace (paper: 4).
    t2_scaling:
        Scaling convention for the T² statistic (see :class:`T2Scaling`).
    """

    def __init__(
        self,
        decomposition: EigenflowDecomposition,
        n_normal: int = 4,
        t2_scaling: T2Scaling = T2Scaling.HOTELLING,
    ) -> None:
        require(1 <= n_normal < decomposition.rank,
                "n_normal must satisfy 1 <= n_normal < rank of the decomposition")
        self._decomposition = decomposition
        self._n_normal = int(n_normal)
        self._t2_scaling = T2Scaling(t2_scaling)
        # P: p x k matrix of normal-subspace principal axes.
        self._normal_axes = decomposition.principal_axes(self._n_normal)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def decomposition(self) -> EigenflowDecomposition:
        """The underlying eigenflow decomposition."""
        return self._decomposition

    @property
    def n_normal(self) -> int:
        """Dimension ``k`` of the normal subspace."""
        return self._n_normal

    @property
    def n_features(self) -> int:
        """Number of OD flows ``p``."""
        return self._decomposition.n_features

    @property
    def n_samples(self) -> int:
        """Number of training timebins ``n``."""
        return self._decomposition.n_samples

    @property
    def t2_scaling(self) -> T2Scaling:
        """The T² scaling convention in use."""
        return self._t2_scaling

    @property
    def normal_axes(self) -> np.ndarray:
        """The ``p x k`` matrix of normal-subspace principal axes.

        Returns a read-only view (no copy is made per call).
        """
        return self._normal_axes

    # ------------------------------------------------------------------ #
    # projections
    # ------------------------------------------------------------------ #
    def _prepare(self, data: Optional[np.ndarray]) -> np.ndarray:
        if data is None:
            # Reconstruct the centered training data from the stored factors.
            decomposition = self._decomposition
            return decomposition.scores() @ decomposition.principal_axes().T
        matrix = ensure_2d(data, "data")
        require(matrix.shape[1] == self.n_features, "data has the wrong number of OD flows")
        return matrix - self._decomposition.column_means

    def split(self, data: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Split (centered) data into modeled and residual parts.

        Returns ``(x_hat, x_tilde)`` with the same shape as the input; both
        are expressed in centered coordinates, so ``x_hat + x_tilde``
        equals the centered data.
        """
        centered = self._prepare(data)
        modeled = centered @ self._normal_axes @ self._normal_axes.T
        residual = centered - modeled
        return modeled, residual

    def state_magnitude(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        """``||x||²`` per timebin of the raw (uncentered) state vector.

        This is the quantity plotted in the top row of Figure 1.
        """
        if data is None:
            centered = self._prepare(None)
            raw = centered + self._decomposition.column_means
        else:
            raw = ensure_2d(data, "data")
            require(raw.shape[1] == self.n_features, "data has the wrong number of OD flows")
        return np.sum(raw**2, axis=1)

    # ------------------------------------------------------------------ #
    # detection statistics
    # ------------------------------------------------------------------ #
    def spe(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        """Squared prediction error ``||x̃||²`` per timebin."""
        _modeled, residual = self.split(data)
        return np.sum(residual**2, axis=1)

    def spe_threshold(self, confidence: float = 0.999) -> float:
        """The Q-statistic control limit for the SPE."""
        return self.control_limits(confidence).spe

    def control_limits(self, confidence: float = 0.999) -> ControlLimits:
        """Both control limits at *confidence* (see :func:`control_limits`)."""
        return control_limits(self._decomposition.eigenvalues, self._n_normal,
                              self.n_samples, confidence, self._t2_scaling)

    def t2(self, data: Optional[np.ndarray] = None) -> np.ndarray:
        """The T² statistic per timebin (see :class:`T2Scaling`)."""
        scores = self._decomposition.scores(data)[:, :self._n_normal]
        eigenvalues = self._decomposition.eigenvalues[:self._n_normal]
        safe_eigenvalues = np.where(eigenvalues > 0, eigenvalues, np.inf)
        if self._t2_scaling is T2Scaling.HOTELLING:
            return np.sum(scores**2 / safe_eigenvalues[np.newaxis, :], axis=1)
        # Raw eigenflow form: u_ij = score_ij / (singular value) and
        # t² = Σ u², i.e. the Hotelling value divided by (n - 1).
        return np.sum(scores**2 / safe_eigenvalues[np.newaxis, :], axis=1) / (
            self.n_samples - 1)

    def t2_threshold(self, confidence: float = 0.999) -> float:
        """The T² control limit ``k(n-1)/(n-k)·F(k, n-k; alpha)``.

        Under the ``RAW_EIGENFLOW`` scaling the limit is divided by
        ``n - 1`` so the two conventions flag identical timebins.
        """
        return self.control_limits(confidence).t2

    # ------------------------------------------------------------------ #
    # per-OD-flow attribution helpers (used by identification)
    # ------------------------------------------------------------------ #
    def residual_vector(self, data: np.ndarray, bin_index: int) -> np.ndarray:
        """The residual vector ``x̃`` of one timebin (length ``p``)."""
        _modeled, residual = self.split(data)
        require(0 <= bin_index < residual.shape[0], "bin_index out of range")
        return residual[bin_index]

    def score_vector(self, data: np.ndarray, bin_index: int) -> np.ndarray:
        """Normal-subspace scores of one timebin (length ``k``)."""
        scores = self._decomposition.scores(data)[:, :self._n_normal]
        require(0 <= bin_index < scores.shape[0], "bin_index out of range")
        return scores[bin_index]
