"""Ready-made synthetic datasets.

:func:`generate_abilene_dataset` builds the full Abilene-like dataset the
experiments run on: the 11-PoP topology, four weeks (configurable) of
OD-flow traffic at 5-minute bins with diurnal/weekly structure, a randomized
schedule of injected anomalies of every Table 2 type, the lazily-evaluated
flow composition, and the ground-truth log.

:func:`small_scenario` produces a fast, scaled-down dataset (fewer PoPs
and/or bins) for unit tests and examples.
"""

from repro.datasets.synthetic import (
    DatasetConfig,
    SyntheticDataset,
    generate_abilene_dataset,
    generate_drifting_dataset,
    small_scenario,
)
from repro.datasets.streaming import SyntheticChunkSource, synthetic_chunk_stream

__all__ = [
    "DatasetConfig",
    "SyntheticDataset",
    "generate_abilene_dataset",
    "generate_drifting_dataset",
    "small_scenario",
    "SyntheticChunkSource",
    "synthetic_chunk_stream",
]
