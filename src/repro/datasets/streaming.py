"""Unbounded synthetic chunk streams for the online detection pipeline.

:class:`SyntheticChunkSource` turns the block-oriented synthetic dataset
generator into an endless :class:`~repro.streaming.sources.ChunkSource`:
traffic (and, optionally, anomalies) is generated one block at a time with
a per-block derived seed and a continuing absolute time axis, so
diurnal/weekly seasonality flows seamlessly across block boundaries while
memory stays bounded by one block.  Because block seeds and the time axis
depend only on the block index, :meth:`SyntheticChunkSource.resume`
replays the exact suffix of the stream from any bin — the resume path of
a checkpoint-restored detector.

:func:`synthetic_chunk_stream` is the original generator-shaped entry
point, now a thin wrapper over the source.
"""

from __future__ import annotations

import warnings
from typing import Iterator, Optional

import numpy as np

from repro.datasets.synthetic import DatasetConfig, generate_abilene_dataset
from repro.streaming.sources import TrafficChunk
from repro.topology.abilene import abilene_topology
from repro.topology.network import Network
from repro.utils.validation import require

__all__ = ["SyntheticChunkSource", "synthetic_chunk_stream"]


class SyntheticChunkSource:
    """Re-iterable, resumable synthetic traffic feed (a ``ChunkSource``).

    Parameters
    ----------
    chunk_size:
        Timebins per yielded chunk.  Block lengths need not be multiples of
        the chunk size: a block's final short remainder is simply a shorter
        chunk (stream-global bin indices stay contiguous either way).
    block_config:
        Configuration of each generated block (default: one day per block,
        with the standard anomaly schedule scaled to the block length).
    seed:
        Master seed; block ``i`` derives its own seed from ``(seed, i)`` so
        the stream is reproducible and blocks are independent draws.
    network:
        Fixed topology for every block (default: 11-PoP Abilene).  The OD
        columns therefore stay aligned across the whole stream.
    max_blocks:
        Stop after this many blocks (``None`` = truly unbounded; callers
        should then bound consumption themselves, e.g.
        ``itertools.islice``).  :meth:`resume` still counts *total* blocks
        of the underlying stream.
    """

    def __init__(
        self,
        chunk_size: int = 64,
        block_config: DatasetConfig = DatasetConfig(weeks=1.0 / 7.0),
        seed: int = 0,
        network: Optional[Network] = None,
        max_blocks: Optional[int] = None,
    ) -> None:
        require(chunk_size >= 1, "chunk_size must be >= 1")
        require(max_blocks is None or max_blocks >= 1,
                "max_blocks must be >= 1 when given")
        self._chunk_size = int(chunk_size)
        self._block_config = block_config
        self._seed = int(seed)
        self._network = network if network is not None else abilene_topology()
        self._max_blocks = max_blocks
        self._resume_bin = 0

    @property
    def chunk_size(self) -> int:
        """Timebins per yielded chunk."""
        return self._chunk_size

    @property
    def block_bins(self) -> int:
        """Timebins per generated block."""
        return self._block_config.n_bins

    @property
    def start_bin(self) -> int:
        """Stream-global bin iteration starts at."""
        return self._resume_bin

    @property
    def end_bin(self) -> Optional[int]:
        """Exclusive end bin of the stream (``None``: unbounded)."""
        if self._max_blocks is None:
            return None
        return self._max_blocks * self.block_bins

    def resume(self, start_bin: int) -> "SyntheticChunkSource":
        """The exact stream suffix from *start_bin* on.

        Block seeds and the absolute time axis depend only on the block
        index, so regenerating the block containing *start_bin* and
        slicing it yields bit-identical traffic — and the within-block
        chunk boundaries are fixed multiples of ``chunk_size``, so the
        resumed chunks are the ones an uninterrupted run would emit.
        """
        require(start_bin >= 0, "start_bin must be non-negative")
        require(self.end_bin is None or start_bin <= self.end_bin,
                f"resume bin {start_bin} past the stream end {self.end_bin}")
        clone = SyntheticChunkSource(
            chunk_size=self._chunk_size,
            block_config=self._block_config,
            seed=self._seed,
            network=self._network,
            max_blocks=self._max_blocks,
        )
        clone._resume_bin = int(start_bin)
        return clone

    def __iter__(self) -> Iterator[TrafficChunk]:
        block_bins = self.block_bins
        block_index = self._resume_bin // block_bins
        local = self._resume_bin - block_index * block_bins
        while self._max_blocks is None or block_index < self._max_blocks:
            block_seed = int(
                np.random.SeedSequence([self._seed, block_index])
                .generate_state(1)[0])
            offset_bins = block_index * block_bins
            # Continuing the absolute time axis keeps seasonality seamless.
            dataset = generate_abilene_dataset(
                self._block_config,
                seed=block_seed,
                network=self._network,
                start_seconds=offset_bins * self._block_config.bin_seconds,
            )
            series = dataset.series
            # Within-block chunk boundaries are fixed multiples of
            # chunk_size, so a mid-block resume reproduces the chunks an
            # uninterrupted run would have emitted from that point on.
            while local < block_bins:
                stop = min(block_bins, (local // self._chunk_size + 1)
                           * self._chunk_size)
                yield TrafficChunk(
                    start_bin=offset_bins + local,
                    matrices={t: series.matrix(t)[local:stop, :]
                              for t in series.traffic_types})
                local = stop
            local = 0
            block_index += 1


def synthetic_chunk_stream(
    chunk_size: int = 64,
    block_config: DatasetConfig = DatasetConfig(weeks=1.0 / 7.0),
    seed: int = 0,
    network: Optional[Network] = None,
    max_blocks: Optional[int] = None,
    start_block: int = 0,
) -> Iterator[TrafficChunk]:
    """Yield an (optionally unbounded) stream of synthetic traffic chunks.

    Generator-shaped wrapper over :class:`SyntheticChunkSource` (which
    new code should prefer: it is re-iterable and resumable at any bin,
    not just block boundaries).  *start_block* is deprecated — call
    ``SyntheticChunkSource(...).resume(start_block * block_bins)``.
    """
    source = SyntheticChunkSource(
        chunk_size=chunk_size,
        block_config=block_config,
        seed=seed,
        network=network,
        max_blocks=max_blocks,
    )
    require(start_block >= 0, "start_block must be non-negative")
    if start_block:
        warnings.warn(
            "synthetic_chunk_stream(start_block=...) is deprecated; use "
            "SyntheticChunkSource(...).resume(start_block * block_bins)",
            DeprecationWarning, stacklevel=2)
        source = source.resume(start_block * source.block_bins)
    return iter(source)
