"""Unbounded synthetic chunk streams for the online detection pipeline.

:func:`synthetic_chunk_stream` turns the block-oriented synthetic dataset
generator into an endless feed of
:class:`~repro.streaming.sources.TrafficChunk`s: traffic (and, optionally,
anomalies) is generated one block at a time with a per-block derived seed
and a continuing absolute time axis, so diurnal/weekly seasonality flows
seamlessly across block boundaries while memory stays bounded by one block.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.datasets.synthetic import DatasetConfig, generate_abilene_dataset
from repro.streaming.sources import TrafficChunk, chunk_series
from repro.topology.abilene import abilene_topology
from repro.topology.network import Network
from repro.utils.validation import require

__all__ = ["synthetic_chunk_stream"]


def synthetic_chunk_stream(
    chunk_size: int = 64,
    block_config: DatasetConfig = DatasetConfig(weeks=1.0 / 7.0),
    seed: int = 0,
    network: Optional[Network] = None,
    max_blocks: Optional[int] = None,
    start_block: int = 0,
) -> Iterator[TrafficChunk]:
    """Yield an (optionally unbounded) stream of synthetic traffic chunks.

    Parameters
    ----------
    chunk_size:
        Timebins per yielded chunk.  Block lengths need not be multiples of
        the chunk size: a block's final short remainder is simply a shorter
        chunk (stream-global bin indices stay contiguous either way).
    block_config:
        Configuration of each generated block (default: one day per block,
        with the standard anomaly schedule scaled to the block length).
    seed:
        Master seed; block ``i`` derives its own seed from ``(seed, i)`` so
        the stream is reproducible and blocks are independent draws.
    network:
        Fixed topology for every block (default: 11-PoP Abilene).  The OD
        columns therefore stay aligned across the whole stream.
    max_blocks:
        Stop after this many blocks (``None`` = truly unbounded; callers
        should then bound consumption themselves, e.g. ``itertools.islice``).
    start_block:
        Resume the stream at this block index: block seeds and the absolute
        time axis depend only on the block index, so the yielded chunks are
        the exact suffix of the stream a fresh run would produce from that
        block on — the resume path of a checkpoint-restored detector.
        ``max_blocks`` still counts *total* blocks of the underlying stream.

    Yields
    ------
    TrafficChunk
        Chunks with contiguous stream-global ``start_bin`` values (starting
        at ``start_block * block_bins``).
    """
    require(chunk_size >= 1, "chunk_size must be >= 1")
    require(max_blocks is None or max_blocks >= 1,
            "max_blocks must be >= 1 when given")
    require(start_block >= 0, "start_block must be non-negative")
    net = network if network is not None else abilene_topology()
    block_bins = block_config.n_bins
    block_index = start_block
    while max_blocks is None or block_index < max_blocks:
        block_seed = int(np.random.SeedSequence([int(seed), block_index])
                         .generate_state(1)[0])
        offset_bins = block_index * block_bins
        # Continuing the absolute time axis keeps seasonality seamless.
        dataset = generate_abilene_dataset(
            block_config,
            seed=block_seed,
            network=net,
            start_seconds=offset_bins * block_config.bin_seconds,
        )
        yield from chunk_series(dataset.series, chunk_size, start_bin=offset_bins)
        block_index += 1
