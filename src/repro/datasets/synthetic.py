"""End-to-end synthetic dataset generation.

This module wires the substrates together: topology → background traffic →
anomaly schedule → flow composition → ground truth.  The result,
:class:`SyntheticDataset`, is what the evaluation harness, the benchmarks,
and the examples consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro.anomalies.base import AnomalyInjector, InjectionContext
from repro.anomalies.schedule import AnomalyScheduler, ScheduleConfig
from repro.anomalies.types import GroundTruthLog
from repro.flows.composition import FlowCompositionModel
from repro.flows.timeseries import TrafficMatrixSeries
from repro.topology.abilene import abilene_topology
from repro.topology.builder import random_backbone
from repro.topology.network import Network
from repro.traffic.generator import GeneratorConfig, ODTrafficGenerator
from repro.traffic.seasonality import DriftProfile
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.timebins import TimeBinning, bins_per_week
from repro.utils.validation import require

__all__ = ["DatasetConfig", "SyntheticDataset", "generate_abilene_dataset",
           "generate_drifting_dataset", "small_scenario"]


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration of a synthetic dataset.

    Parameters
    ----------
    weeks:
        Number of weeks of data (paper: 4; 1 is plenty for most experiments).
    bin_seconds:
        Bin width (paper: 300 s).
    generator:
        Background-traffic generator configuration.
    schedule:
        Anomaly schedule configuration; ``None`` disables anomaly injection
        (clean background only).
    """

    weeks: float = 1.0
    bin_seconds: int = 300
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    schedule: Optional[ScheduleConfig] = field(default_factory=ScheduleConfig)

    def __post_init__(self) -> None:
        require(self.weeks > 0, "weeks must be positive")
        require(self.bin_seconds > 0, "bin_seconds must be positive")

    @property
    def n_bins(self) -> int:
        """Total number of bins in the dataset."""
        return int(round(self.weeks * bins_per_week(self.bin_seconds)))


@dataclass
class SyntheticDataset:
    """A fully generated synthetic dataset.

    Attributes
    ----------
    network:
        The backbone topology.
    series:
        The OD-flow traffic-matrix series (bytes, packets, IP-flows),
        including injected anomalies.
    clean_series:
        The same background traffic *without* the injected anomalies
        (useful for ablations and for measuring injection deltas).
    composition:
        The lazily-evaluated per-bin flow composition.
    ground_truth:
        The injected anomaly log.
    config:
        The configuration the dataset was generated from.
    seed:
        The master seed.
    """

    network: Network
    series: TrafficMatrixSeries
    clean_series: TrafficMatrixSeries
    composition: FlowCompositionModel
    ground_truth: GroundTruthLog
    config: DatasetConfig
    seed: Optional[int] = None

    @property
    def binning(self) -> TimeBinning:
        """The dataset's time binning."""
        return self.series.binning

    @property
    def n_bins(self) -> int:
        """Number of timebins."""
        return self.series.n_bins

    @property
    def n_od_pairs(self) -> int:
        """Number of OD pairs."""
        return self.series.n_od_pairs

    def week_window(self, week_index: int) -> TrafficMatrixSeries:
        """The traffic of one week (paper analyzes one week at a time)."""
        per_week = bins_per_week(self.config.bin_seconds)
        start = week_index * per_week
        end = min(start + per_week, self.n_bins)
        require(start < self.n_bins, "week_index beyond the dataset length")
        return self.series.window(start, end)

    def summary(self) -> Dict[str, object]:
        """Human-readable dataset summary."""
        return {
            "network": self.network.name,
            "n_pops": self.network.n_pops,
            "n_od_pairs": self.n_od_pairs,
            "n_bins": self.n_bins,
            "bin_seconds": self.config.bin_seconds,
            "n_injected_anomalies": len(self.ground_truth),
            "anomaly_type_counts": {
                t.value: c for t, c in self.ground_truth.type_counts().items()
            },
            "traffic": self.series.summary(),
        }


def generate_abilene_dataset(
    config: DatasetConfig = DatasetConfig(),
    seed: RandomState = 0,
    network: Optional[Network] = None,
    injectors: Optional[Sequence[AnomalyInjector]] = None,
    start_seconds: int = 0,
) -> SyntheticDataset:
    """Generate the Abilene-like synthetic dataset used by the experiments.

    Parameters
    ----------
    config:
        Dataset configuration (length, traffic, anomaly schedule).
    seed:
        Master seed controlling every random choice.
    network:
        Override the topology (default: the 11-PoP Abilene backbone).
    injectors:
        Explicit anomaly injectors to apply instead of a random schedule
        (useful for controlled experiments); the schedule configuration is
        ignored when this is given.
    start_seconds:
        Absolute start time of bin 0.  Diurnal/weekly seasonality follows
        the absolute time axis, so block-wise streaming generation (see
        :mod:`repro.datasets.streaming`) passes each block's offset here to
        keep the traffic patterns seamless across blocks.

    Returns
    -------
    SyntheticDataset
        The dataset with injected anomalies and ground truth.
    """
    net = network if network is not None else abilene_topology()
    binning = TimeBinning(n_bins=config.n_bins, bin_seconds=config.bin_seconds,
                          start_seconds=start_seconds)

    generator = ODTrafficGenerator(net, config=config.generator,
                                   seed=spawn_rng(seed, stream="background"))
    series = generator.generate(binning)
    clean_series = series.copy()

    composition = FlowCompositionModel(net, seed=spawn_rng(seed, stream="composition"))
    ground_truth = GroundTruthLog()
    context = InjectionContext(
        network=net,
        series=series,
        composition=composition,
        ground_truth=ground_truth,
        rng=spawn_rng(seed, stream="injection"),
    )

    if injectors is not None:
        for injector in injectors:
            injector.inject(context)
    elif config.schedule is not None:
        scheduler = AnomalyScheduler(net, config=config.schedule,
                                     seed=spawn_rng(seed, stream="schedule"))
        scheduler.apply(context)

    return SyntheticDataset(
        network=net,
        series=series,
        clean_series=clean_series,
        composition=composition,
        ground_truth=ground_truth,
        config=config,
        seed=seed if isinstance(seed, int) else None,
    )


def generate_drifting_dataset(
    config: DatasetConfig = DatasetConfig(),
    drift: DriftProfile = DriftProfile(level_drift_per_day=0.15,
                                       variance_ramp_per_day=0.35),
    seed: RandomState = 0,
    network: Optional[Network] = None,
    injectors: Optional[Sequence[AnomalyInjector]] = None,
) -> SyntheticDataset:
    """A non-stationary variant of :func:`generate_abilene_dataset`.

    Replaces the generator's drift profile with *drift* (default: the
    diurnal mean ramping +15%/day with the noise sigma ramping +35%/day —
    strong enough that fixed control limits calibrated on the early bins
    run visibly hot by week's end) and generates as usual.  This is the
    benchmark workload for the adaptive quantile thresholds
    (``StreamingConfig(limits="adaptive")``); anomalies are injected on top
    of the drifting background, so ground-truth recall and false-alarm
    rates remain measurable.
    """
    generator = replace(config.generator, drift=drift)
    return generate_abilene_dataset(
        config=replace(config, generator=generator),
        seed=seed,
        network=network,
        injectors=injectors,
    )


def small_scenario(
    n_pops: int = 5,
    n_days: float = 2.0,
    seed: RandomState = 0,
    with_anomalies: bool = True,
    bin_seconds: int = 300,
) -> SyntheticDataset:
    """A fast, scaled-down dataset for tests and examples.

    Uses a random connected backbone with *n_pops* PoPs and a shorter
    measurement window; the anomaly schedule is scaled down with the window.
    """
    require(n_pops >= 2, "n_pops must be >= 2")
    require(n_days > 0, "n_days must be positive")
    network = random_backbone(n_pops, seed=spawn_rng(seed, stream="small-topology"))
    schedule = ScheduleConfig() if with_anomalies else None
    config = DatasetConfig(
        weeks=n_days / 7.0,
        bin_seconds=bin_seconds,
        schedule=schedule,
    )
    return generate_abilene_dataset(config=config, seed=seed, network=network)
