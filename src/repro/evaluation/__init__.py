"""Evaluation harness.

* :mod:`repro.evaluation.matching` — matching of detected events to
  ground-truth injected anomalies;
* :mod:`repro.evaluation.metrics` — detection and classification metrics;
* :mod:`repro.evaluation.reporting` — plain-text table and histogram
  rendering used by the benchmark harness;
* :mod:`repro.evaluation.streaming_parity` — streaming-vs-batch event
  parity accounting for the online subsystem;
* :mod:`repro.evaluation.experiments` — one runner per paper artifact
  (Figure 1, Table 1, Figure 2, Table 2, Table 3) plus the ablation,
  baseline-comparison, and pipeline experiments from DESIGN.md;
* :mod:`repro.evaluation.live` — the online evaluation harness: Table 1/3
  analogues computed by replaying labeled weeks through the streaming
  pipeline (any engine), with structured batch-vs-live delta reports.
"""

from repro.evaluation.matching import EventMatch, MatchReport, match_events
from repro.evaluation.metrics import (
    aggregate_match_metrics,
    classification_confusion,
    detection_metrics,
    DetectionMetrics,
)
from repro.evaluation.reporting import format_histogram, format_table
from repro.evaluation.streaming_parity import (
    EventParityReport,
    event_parity,
    report_parity,
)

__all__ = [
    "EventParityReport",
    "event_parity",
    "report_parity",
    "EventMatch",
    "MatchReport",
    "match_events",
    "DetectionMetrics",
    "detection_metrics",
    "aggregate_match_metrics",
    "classification_confusion",
    "format_table",
    "format_histogram",
]
