"""Experiment runners — one per paper artifact plus the DESIGN.md extensions.

==========  ===========================================================
Experiment  Runner
==========  ===========================================================
Figure 1    :func:`repro.evaluation.experiments.figure1.run_figure1`
Table 1     :func:`repro.evaluation.experiments.table1.run_table1`
Figure 2    :func:`repro.evaluation.experiments.figure2.run_figure2`
Table 2     :func:`repro.evaluation.experiments.table2.run_table2`
Table 3     :func:`repro.evaluation.experiments.table3.run_table3`
E6 / E7     :mod:`repro.evaluation.experiments.ablations`
E8          :mod:`repro.evaluation.experiments.baseline_comparison`
E9          :mod:`repro.evaluation.experiments.pipeline`
==========  ===========================================================

Every runner accepts an already-generated
:class:`~repro.datasets.synthetic.SyntheticDataset` (so benchmarks can share
one dataset) and returns a result object with the raw numbers plus a
``render()`` method producing the paper-style text table.
"""

from repro.evaluation.experiments.figure1 import Figure1Result, run_figure1
from repro.evaluation.experiments.table1 import Table1Result, run_table1
from repro.evaluation.experiments.figure2 import Figure2Result, run_figure2
from repro.evaluation.experiments.table2 import Table2Result, run_table2
from repro.evaluation.experiments.table3 import Table3Result, run_table3
from repro.evaluation.experiments.ablations import (
    KSweepResult,
    T2AblationResult,
    run_ablation_k,
    run_ablation_t2,
)
from repro.evaluation.experiments.baseline_comparison import (
    BaselineComparisonResult,
    run_baseline_comparison,
)
from repro.evaluation.experiments.pipeline import (
    ResolutionExperimentResult,
    run_resolution_experiment,
)

__all__ = [
    "Figure1Result",
    "run_figure1",
    "Table1Result",
    "run_table1",
    "Figure2Result",
    "run_figure2",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "T2AblationResult",
    "run_ablation_t2",
    "KSweepResult",
    "run_ablation_k",
    "BaselineComparisonResult",
    "run_baseline_comparison",
    "ResolutionExperimentResult",
    "run_resolution_experiment",
]
