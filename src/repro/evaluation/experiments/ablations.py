"""Ablation experiments E6 and E7 from DESIGN.md.

* **E6 — the T² extension.**  Section 2.2 of the paper argues that the
  Q-statistic alone misses anomalies that are large (or shared widely)
  enough to be absorbed into the normal subspace, and adds the T² test to
  catch them.  :func:`run_ablation_t2` compares detection with and without
  the T² test on the same dataset.

* **E7 — the choice k = 4.**  The paper fixes the normal subspace dimension
  at four eigenflows.  :func:`run_ablation_k` sweeps ``k`` and reports the
  detection rate and false-alarm count of each setting, showing the
  plateau/robustness around the paper's choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.pipeline import detect_network_anomalies
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.matching import match_events
from repro.evaluation.metrics import DetectionMetrics, detection_metrics
from repro.evaluation.reporting import format_table
from repro.utils.validation import require

__all__ = ["T2AblationResult", "run_ablation_t2", "KSweepResult", "run_ablation_k"]


@dataclass
class T2AblationResult:
    """Detection with and without the T² test (E6)."""

    with_t2: DetectionMetrics
    without_t2: DetectionMetrics
    anomalies_only_caught_with_t2: int

    def t2_adds_detections(self) -> bool:
        """Whether the T² extension detected anomalies SPE alone missed."""
        return self.with_t2.n_detected > self.without_t2.n_detected

    def render(self) -> str:
        """Two-row comparison table."""
        rows = [
            ["SPE + T2 (paper)", self.with_t2.n_detected, self.with_t2.n_events,
             f"{self.with_t2.detection_rate:.1%}", self.with_t2.n_false_alarms],
            ["SPE only", self.without_t2.n_detected, self.without_t2.n_events,
             f"{self.without_t2.detection_rate:.1%}", self.without_t2.n_false_alarms],
        ]
        table = format_table(
            ["detector", "anomalies detected", "events", "detection rate",
             "false-alarm events"],
            rows,
            title="E6 — contribution of the T2 test on the normal subspace",
        )
        return (table + f"\nanomalies caught only thanks to T2: "
                        f"{self.anomalies_only_caught_with_t2}")


def run_ablation_t2(
    dataset: SyntheticDataset,
    n_normal: int = 4,
    confidence: float = 0.999,
) -> T2AblationResult:
    """Compare the full detector against the SPE-only detector (E6)."""
    require(len(dataset.ground_truth) > 0, "dataset has no injected anomalies")

    report_with = detect_network_anomalies(dataset.series, n_normal=n_normal,
                                           confidence=confidence, use_t2=True)
    report_without = detect_network_anomalies(dataset.series, n_normal=n_normal,
                                              confidence=confidence, use_t2=False)

    match_with = match_events(report_with.events, dataset.ground_truth,
                              series=dataset.series)
    match_without = match_events(report_without.events, dataset.ground_truth,
                                 series=dataset.series)

    only_with = match_with.matched_anomaly_ids() - match_without.matched_anomaly_ids()
    return T2AblationResult(
        with_t2=detection_metrics(match_with),
        without_t2=detection_metrics(match_without),
        anomalies_only_caught_with_t2=len(only_with),
    )


@dataclass
class KSweepResult:
    """Detection metrics as a function of the normal-subspace dimension (E7)."""

    metrics_by_k: Dict[int, DetectionMetrics]
    paper_k: int = 4

    def best_k_by_detection(self) -> int:
        """The k with the highest detection rate (ties: smallest k)."""
        return min(self.metrics_by_k,
                   key=lambda k: (-self.metrics_by_k[k].detection_rate, k))

    def render(self) -> str:
        """One row per k."""
        rows = []
        for k in sorted(self.metrics_by_k):
            metric = self.metrics_by_k[k]
            marker = " (paper)" if k == self.paper_k else ""
            rows.append([f"k={k}{marker}", metric.n_detected, metric.n_events,
                         f"{metric.detection_rate:.1%}", metric.n_false_alarms])
        return format_table(
            ["normal subspace", "anomalies detected", "events", "detection rate",
             "false-alarm events"],
            rows,
            title="E7 — sensitivity to the normal-subspace dimension k",
        )


def run_ablation_k(
    dataset: SyntheticDataset,
    k_values: Sequence[int] = (2, 4, 6, 8, 12),
    confidence: float = 0.999,
) -> KSweepResult:
    """Sweep the normal-subspace dimension and measure detection quality (E7)."""
    require(len(dataset.ground_truth) > 0, "dataset has no injected anomalies")
    require(len(k_values) >= 1, "at least one k value is required")

    metrics_by_k: Dict[int, DetectionMetrics] = {}
    for k in k_values:
        report = detect_network_anomalies(dataset.series, n_normal=int(k),
                                          confidence=confidence)
        match_report = match_events(report.events, dataset.ground_truth,
                                    series=dataset.series)
        metrics_by_k[int(k)] = detection_metrics(match_report)
    return KSweepResult(metrics_by_k=metrics_by_k)
