"""E8 — the network-wide subspace method versus per-flow baselines.

The paper's central argument (developed across §1 and §5) is that analyzing
the whole ensemble of OD flows jointly reveals anomalies that per-link /
per-flow analysis misses or can only find at a much higher false-alarm cost.
This experiment quantifies that on a synthetic dataset with known ground
truth: each per-flow baseline (EWMA, wavelet, Fourier) is run on the same
three traffic matrices, its per-cell detections are aggregated into events,
and its detection rate is compared against the subspace method at a matched
event budget (every detector is granted roughly the same number of events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.baselines.ewma import EWMADetector
from repro.baselines.fourier import FourierDetector
from repro.baselines.wavelet import WaveletDetector
from repro.core.events import AnomalyEvent, Detection, aggregate_detections
from repro.core.pipeline import detect_network_anomalies
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.matching import match_events
from repro.evaluation.metrics import DetectionMetrics, detection_metrics
from repro.evaluation.reporting import format_table
from repro.flows.timeseries import TrafficType
from repro.utils.validation import require

__all__ = ["BaselineComparisonResult", "run_baseline_comparison",
           "baseline_events"]


def baseline_events(
    detector: BaselineDetector,
    dataset: SyntheticDataset,
    traffic_types: Optional[Sequence[TrafficType]] = None,
    max_flows_per_bin: int = 16,
) -> List[AnomalyEvent]:
    """Run a per-flow baseline on every traffic type and aggregate its events.

    The baseline's per-cell detections are converted into the same
    ``(traffic type, bin, OD flows)`` triples the subspace method produces,
    then aggregated with the identical spatio-temporal fusion, so the
    comparison is about the detection statistic only.
    """
    types = list(traffic_types) if traffic_types is not None \
        else dataset.series.traffic_types
    detections: List[Detection] = []
    for traffic_type in types:
        matrix = dataset.series.matrix(traffic_type)
        result = detector.detect(matrix)
        for bin_index in result.anomalous_bins():
            flows = result.flows_at(bin_index)[:max_flows_per_bin]
            if not flows:
                continue
            detections.append(Detection(
                traffic_type=TrafficType(traffic_type),
                bin_index=bin_index,
                od_flows=tuple(flows),
                statistic="baseline",
            ))
    return aggregate_detections(detections)


@dataclass
class BaselineComparisonResult:
    """Detection metrics of the subspace method and each baseline (E8)."""

    subspace: DetectionMetrics
    baselines: Dict[str, DetectionMetrics]

    def subspace_wins(self) -> bool:
        """Whether no per-flow baseline Pareto-dominates the subspace method.

        A baseline dominates when it detects at least as many injected
        anomalies *and* raises no more false-alarm events, with at least one
        of the two strictly better.  The paper's claim is exactly this
        trade-off: per-flow detectors can only reach the subspace method's
        coverage by paying a much higher false-alarm cost.
        """
        for metrics in self.baselines.values():
            at_least_as_good = (metrics.detection_rate >= self.subspace.detection_rate
                                and metrics.n_false_alarms <= self.subspace.n_false_alarms)
            strictly_better = (metrics.detection_rate > self.subspace.detection_rate
                               or metrics.n_false_alarms < self.subspace.n_false_alarms)
            if at_least_as_good and strictly_better:
                return False
        return True

    def render(self) -> str:
        """One row per detector."""
        rows = [["subspace (paper)", self.subspace.n_detected, self.subspace.n_events,
                 f"{self.subspace.detection_rate:.1%}", self.subspace.n_false_alarms]]
        for name, metrics in self.baselines.items():
            rows.append([name, metrics.n_detected, metrics.n_events,
                         f"{metrics.detection_rate:.1%}", metrics.n_false_alarms])
        return format_table(
            ["detector", "anomalies detected", "events", "detection rate",
             "false-alarm events"],
            rows,
            title="E8 — subspace method vs per-flow baselines (matched event budget)",
        )


def run_baseline_comparison(
    dataset: SyntheticDataset,
    n_normal: int = 4,
    confidence: float = 0.999,
    detectors: Optional[Mapping[str, BaselineDetector]] = None,
) -> BaselineComparisonResult:
    """Compare the subspace method with the per-flow baselines (E8).

    Each baseline's empirical score quantile is set so that it flags roughly
    the same number of (bin, flow) cells as the subspace method flags bins,
    giving every detector a comparable event budget.
    """
    require(len(dataset.ground_truth) > 0, "dataset has no injected anomalies")

    subspace_report = detect_network_anomalies(dataset.series, n_normal=n_normal,
                                               confidence=confidence)
    subspace_match = match_events(subspace_report.events, dataset.ground_truth,
                                  series=dataset.series)
    subspace_metrics = detection_metrics(subspace_match)

    # Matched budget: aim for a comparable number of flagged cells per type.
    flagged_bins = np.mean([len(result.anomalous_bins)
                            for result in subspace_report.results.values()])
    n_cells = dataset.n_bins * dataset.n_od_pairs
    target_cells = max(float(flagged_bins), 1.0)
    quantile = float(np.clip(1.0 - target_cells / n_cells, 0.99, 0.999999))

    if detectors is None:
        detectors = {
            "ewma (per flow)": EWMADetector(quantile=quantile),
            "wavelet (per flow)": WaveletDetector(quantile=quantile),
            "fourier (per flow)": FourierDetector(quantile=quantile),
        }

    baseline_metrics: Dict[str, DetectionMetrics] = {}
    for name, detector in detectors.items():
        events = baseline_events(detector, dataset)
        match_report = match_events(events, dataset.ground_truth, series=dataset.series)
        baseline_metrics[name] = detection_metrics(match_report)

    return BaselineComparisonResult(subspace=subspace_metrics,
                                    baselines=baseline_metrics)
