"""Figure 1: the subspace method applied to the three OD-flow traffic types.

The paper's Figure 1 shows, for a common 3.5-day window and for each traffic
type (bytes, packets, IP-flows), three rows: the state-vector magnitude
``||x||²``, the residual magnitude ``||x̃||²`` with the Q-statistic
threshold, and the t² timeseries with the T² threshold.  Anomalies appear as
spikes above the thresholds while the diurnal periodicity of the raw traffic
is removed.

:func:`run_figure1` reproduces the three rows numerically and
:meth:`Figure1Result.render` prints per-row summaries plus checks of the
qualitative claims (periodicity removed, anomalies isolated as spikes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.detector import DetectionResult, SubspaceDetector
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.reporting import format_series_summary, format_table
from repro.flows.timeseries import TrafficType
from repro.utils.timebins import bins_per_day
from repro.utils.validation import require

__all__ = ["Figure1Result", "run_figure1"]


def _autocorrelation_at(values: np.ndarray, lag: int) -> float:
    """Autocorrelation of a series at a given lag (0 when degenerate)."""
    values = np.asarray(values, dtype=float)
    if values.size <= lag or np.std(values) == 0:
        return 0.0
    a = values[:-lag] - values[:-lag].mean()
    b = values[lag:] - values[lag:].mean()
    denominator = np.sqrt(np.sum(a**2) * np.sum(b**2))
    if denominator == 0:
        return 0.0
    return float(np.sum(a * b) / denominator)


@dataclass
class Figure1Result:
    """Reproduction of Figure 1 over one analysis window.

    ``rows[traffic_type]`` holds the three plotted series: the state-vector
    magnitude, the SPE (with threshold), and t² (with threshold).
    """

    window_bins: Tuple[int, int]
    results: Dict[TrafficType, DetectionResult]
    daily_autocorrelation_state: Dict[TrafficType, float]
    daily_autocorrelation_residual: Dict[TrafficType, float]

    def spike_bins(self, traffic_type: TrafficType) -> List[int]:
        """Bins whose residual or t² exceeds its threshold in the window."""
        return self.results[TrafficType(traffic_type)].anomalous_bins

    def periodicity_removed(self, traffic_type: TrafficType) -> bool:
        """Whether the residual is much less diurnal than the state vector.

        The paper's claim "the periodicity in the original traffic is largely
        removed" is checked by comparing the one-day-lag autocorrelation of
        ``||x||²`` and ``||x̃||²``.
        """
        traffic_type = TrafficType(traffic_type)
        return (self.daily_autocorrelation_residual[traffic_type]
                < 0.5 * max(self.daily_autocorrelation_state[traffic_type], 1e-9))

    def render(self) -> str:
        """Text rendition of the figure (per-row summaries and spike bins)."""
        lines = [f"Figure 1 — subspace method on OD flow traffic "
                 f"(bins {self.window_bins[0]}..{self.window_bins[1]})"]
        rows = []
        for traffic_type, result in self.results.items():
            lines.append(f"--- {traffic_type.value} ---")
            lines.append(format_series_summary("state  ||x||^2", result.state_magnitude))
            lines.append(format_series_summary("residual ||x~||^2", result.spe,
                                               result.spe_threshold))
            lines.append(format_series_summary("t^2", result.t2, result.t2_threshold))
            rows.append([
                traffic_type.value,
                f"{self.daily_autocorrelation_state[traffic_type]:.2f}",
                f"{self.daily_autocorrelation_residual[traffic_type]:.2f}",
                len(result.anomalous_bins),
            ])
        lines.append(format_table(
            ["traffic type", "diurnal autocorr (state)", "diurnal autocorr (residual)",
             "bins above threshold"],
            rows,
            title="Periodicity removal and anomaly isolation",
        ))
        return "\n".join(lines)


def run_figure1(
    dataset: SyntheticDataset,
    window_days: float = 3.5,
    start_bin: int = 0,
    n_normal: int = 4,
    confidence: float = 0.999,
) -> Figure1Result:
    """Reproduce Figure 1 on a window of *dataset*.

    The subspace model is fitted on the full series of each traffic type
    (as the paper fits per analyzed period) and the three plotted statistics
    are reported for the requested window.
    """
    require(window_days > 0, "window_days must be positive")
    per_day = bins_per_day(dataset.config.bin_seconds)
    window_length = int(round(window_days * per_day))
    end_bin = min(start_bin + window_length, dataset.n_bins)
    require(start_bin < end_bin, "window is empty")

    results: Dict[TrafficType, DetectionResult] = {}
    state_autocorr: Dict[TrafficType, float] = {}
    residual_autocorr: Dict[TrafficType, float] = {}
    for traffic_type in dataset.series.traffic_types:
        matrix = dataset.series.matrix(traffic_type)
        detector = SubspaceDetector(n_normal=n_normal, confidence=confidence)
        full = detector.fit_detect(matrix)
        # Restrict the plotted series to the requested window.
        window_detections = [d for d in full.detections
                             if start_bin <= d.bin_index < end_bin]
        windowed = DetectionResult(
            state_magnitude=full.state_magnitude[start_bin:end_bin],
            spe=full.spe[start_bin:end_bin],
            spe_threshold=full.spe_threshold,
            t2=full.t2[start_bin:end_bin],
            t2_threshold=full.t2_threshold,
            detections=[d for d in window_detections],
        )
        results[traffic_type] = windowed
        state_autocorr[traffic_type] = _autocorrelation_at(
            windowed.state_magnitude, per_day)
        residual_autocorr[traffic_type] = _autocorrelation_at(
            windowed.spe, per_day)

    return Figure1Result(
        window_bins=(start_bin, end_bin - 1),
        results=results,
        daily_autocorrelation_state=state_autocorr,
        daily_autocorrelation_residual=residual_autocorr,
    )
