"""Figure 2: histograms of anomaly duration and spatial extent.

The paper's Figure 2 histograms the detected anomalies by (a) duration in
minutes and (b) number of OD flows involved, and observes that "most
anomalies are small, both in time and space; however a non-negligible number
of anomalies can be quite large."

:func:`run_figure2` computes the same histograms from the aggregated events
of a diagnosis run and :meth:`Figure2Result.render` prints them as ASCII
bar charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import AnomalyEvent
from repro.core.pipeline import detect_network_anomalies
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.reporting import format_histogram
from repro.utils.timebins import bins_per_week
from repro.utils.validation import require

__all__ = ["Figure2Result", "run_figure2"]


@dataclass
class Figure2Result:
    """Durations and OD-flow counts of all detected events."""

    durations_minutes: List[float]
    od_flow_counts: List[int]
    duration_bin_edges: Tuple[float, ...] = (0, 10, 20, 40, 60, 80, 100, 120, 240, 1000)
    od_flow_bin_edges: Tuple[float, ...] = (0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5,
                                            16.5, 64.5)

    @property
    def n_events(self) -> int:
        """Number of events histogrammed."""
        return len(self.durations_minutes)

    def median_duration_minutes(self) -> float:
        """Median event duration."""
        require(self.n_events > 0, "no events to summarize")
        return float(np.median(self.durations_minutes))

    def median_od_flows(self) -> float:
        """Median number of OD flows per event."""
        require(self.n_events > 0, "no events to summarize")
        return float(np.median(self.od_flow_counts))

    def fraction_short(self, minutes: float = 20.0) -> float:
        """Fraction of events no longer than *minutes* (paper: most are short)."""
        if not self.n_events:
            return 0.0
        return float(np.mean(np.asarray(self.durations_minutes) <= minutes))

    def fraction_small(self, max_flows: int = 2) -> float:
        """Fraction of events involving at most *max_flows* OD flows."""
        if not self.n_events:
            return 0.0
        return float(np.mean(np.asarray(self.od_flow_counts) <= max_flows))

    def render(self) -> str:
        """ASCII rendition of the two histograms."""
        lines = [f"Figure 2 — scope of {self.n_events} detected anomalies"]
        lines.append(format_histogram(
            self.durations_minutes, self.duration_bin_edges,
            title="(a) anomaly duration (minutes)"))
        lines.append(format_histogram(
            self.od_flow_counts, self.od_flow_bin_edges,
            title="(b) number of OD flows involved"))
        lines.append(f"median duration: {self.median_duration_minutes():.0f} min, "
                     f"median OD flows: {self.median_od_flows():.0f}, "
                     f"<=20 min: {self.fraction_short():.0%}, "
                     f"<=2 OD flows: {self.fraction_small():.0%}")
        return "\n".join(lines)


def run_figure2(
    dataset: SyntheticDataset,
    n_normal: int = 4,
    confidence: float = 0.999,
    events: Optional[Sequence[AnomalyEvent]] = None,
) -> Figure2Result:
    """Reproduce Figure 2 on *dataset*.

    When *events* is given (e.g. reusing a Table 1 run) they are
    histogrammed directly; otherwise the full diagnosis is run week by week.
    """
    if events is None:
        collected: List[AnomalyEvent] = []
        per_week = bins_per_week(dataset.config.bin_seconds)
        start = 0
        while start < dataset.n_bins:
            end = min(start + per_week, dataset.n_bins)
            if end - start > n_normal + 2:
                window_series = dataset.series.window(start, end)
                report = detect_network_anomalies(window_series, n_normal=n_normal,
                                                  confidence=confidence)
                collected.extend(report.events)
            start = end
        events = collected

    bin_seconds = dataset.config.bin_seconds
    durations = [event.duration_minutes(bin_seconds) for event in events]
    flow_counts = [event.n_od_flows for event in events]
    return Figure2Result(durations_minutes=durations, od_flow_counts=flow_counts)
