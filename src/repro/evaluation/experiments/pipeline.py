"""E9 — the measurement pipeline and its PoP-resolution rate.

Section 2.1 of the paper reports that the ingress/egress resolution
procedure (router configurations for ingress, BGP/ISIS tables for egress,
with the last 11 destination bits anonymized) successfully resolves more
than 93% of IP flows, accounting for more than 90% of the byte traffic.

This experiment exercises the full record-level pipeline on a slice of the
synthetic dataset: OD-level volumes are expanded into individual 5-tuple
flow records, packet-sampled, resolved to PoPs, and re-aggregated, and the
resolution rates plus the fidelity of the re-aggregated traffic matrix are
reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.reporting import format_table
from repro.flows.aggregation import aggregate_records
from repro.flows.sampling import SamplingConfig, sample_flow_records
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.routing.resolver import PoPResolver, ResolutionStats
from repro.traffic.flowgen import FlowSynthesizer
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.validation import require

__all__ = ["ResolutionExperimentResult", "run_resolution_experiment"]


@dataclass
class ResolutionExperimentResult:
    """Resolution rates and re-aggregation fidelity of the pipeline (E9)."""

    stats: ResolutionStats
    n_synthesized_records: int
    n_sampled_records: int
    reaggregated: TrafficMatrixSeries
    reference: TrafficMatrixSeries
    correlation_bytes: float

    @property
    def flow_resolution_rate(self) -> float:
        """Fraction of sampled flow records resolved to an OD pair."""
        return self.stats.flow_resolution_rate

    @property
    def byte_resolution_rate(self) -> float:
        """Fraction of sampled byte volume resolved to an OD pair."""
        return self.stats.byte_resolution_rate

    def meets_paper_targets(self, flow_target: float = 0.93,
                            byte_target: float = 0.90) -> bool:
        """Whether the paper's ≥93% / ≥90% resolution rates are met."""
        return (self.flow_resolution_rate >= flow_target
                and self.byte_resolution_rate >= byte_target)

    def render(self) -> str:
        """Summary table of the pipeline experiment."""
        rows = [
            ["synthesized flow records", self.n_synthesized_records],
            ["records surviving 1% packet sampling", self.n_sampled_records],
            ["flow resolution rate", f"{self.flow_resolution_rate:.1%} (paper: >93%)"],
            ["byte resolution rate", f"{self.byte_resolution_rate:.1%} (paper: >90%)"],
            ["unresolved (ingress)", self.stats.unresolved_ingress],
            ["unresolved (egress)", self.stats.unresolved_egress],
            ["bytes corr. re-aggregated vs reference", f"{self.correlation_bytes:.3f}"],
        ]
        return format_table(["quantity", "value"], rows,
                            title="E9 — measurement pipeline resolution rates")


def run_resolution_experiment(
    dataset: SyntheticDataset,
    n_bins: int = 3,
    start_bin: int = 0,
    sampling: SamplingConfig = SamplingConfig(sampling_rate=0.01),
    unresolvable_fraction: float = 0.06,
    max_flows_per_cell: int = 120,
    volume_scale: float = 1e-3,
    seed: RandomState = 1,
) -> ResolutionExperimentResult:
    """Run the record-level pipeline on a slice of *dataset* (E9).

    Parameters
    ----------
    dataset:
        The synthetic dataset providing the OD-level volumes and topology.
    n_bins, start_bin:
        The slice of bins to expand into individual flow records.
    sampling:
        Packet-sampling configuration (paper: 1%).
    unresolvable_fraction:
        Fraction of synthesized flows given addresses outside any announced
        prefix (models the paper's ~7% unresolvable residue).
    max_flows_per_cell:
        Cap on synthesized records per (OD pair, bin).
    volume_scale:
        Scale factor applied to the OD-level volumes before expansion so the
        record count stays laptop-sized; resolution rates are scale-free.
    seed:
        Randomness for flow synthesis and sampling.
    """
    require(n_bins >= 1, "n_bins must be >= 1")
    require(start_bin + n_bins <= dataset.n_bins, "slice exceeds the dataset")
    require(0 < volume_scale <= 1.0, "volume_scale must be in (0, 1]")

    window = dataset.series.window(start_bin, start_bin + n_bins)
    scaled_matrices = {
        t: window.matrix(t) * volume_scale for t in window.traffic_types
    }
    scaled = TrafficMatrixSeries(window.od_pairs, window.binning, scaled_matrices)

    synthesizer = FlowSynthesizer(
        dataset.network,
        unresolvable_fraction=unresolvable_fraction,
        max_flows_per_cell=max_flows_per_cell,
        seed=spawn_rng(seed, stream="e9-synthesis"),
    )
    true_records = list(synthesizer.synthesize_series(scaled))
    sampled_records = sample_flow_records(true_records, config=sampling,
                                          seed=spawn_rng(seed, stream="e9-sampling"))

    resolver = PoPResolver(dataset.network)
    resolved, stats = resolver.resolve_records(sampled_records)

    reaggregated = aggregate_records(resolved, scaled.od_pairs, scaled.binning)

    # Fidelity check: per-OD byte totals of the re-aggregated matrix should
    # correlate strongly with the (scaled, sampled) reference.
    reference_bytes = scaled.matrix(TrafficType.BYTES).sum(axis=0)
    recovered_bytes = reaggregated.matrix(TrafficType.BYTES).sum(axis=0)
    if np.std(reference_bytes) > 0 and np.std(recovered_bytes) > 0:
        correlation = float(np.corrcoef(reference_bytes, recovered_bytes)[0, 1])
    else:
        correlation = 0.0

    return ResolutionExperimentResult(
        stats=stats,
        n_synthesized_records=len(true_records),
        n_sampled_records=len(sampled_records),
        reaggregated=reaggregated,
        reference=scaled,
        correlation_bytes=correlation,
    )
