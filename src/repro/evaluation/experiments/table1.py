"""Table 1: number of anomalies found in each traffic-type combination.

The paper's Table 1 counts the aggregated anomaly events per combination
label (B, F, P, BF, BP, FP, BFP) over four weeks of Abilene data and makes
two qualitative points: every single traffic type detects anomalies the
others miss, and only a small fraction of anomalies is detected in more
than one type (with BF empty).

:func:`run_table1` runs the full diagnosis week by week on a synthetic
dataset and accumulates the same counts, alongside the paper's numbers for
shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.events import COMBINATION_LABELS, count_by_label
from repro.core.pipeline import NetworkAnomalyReport, detect_network_anomalies
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.reporting import format_table
from repro.utils.timebins import week_windows

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]

#: The paper's Table 1 counts (four weeks of Abilene data).
PAPER_TABLE1: Dict[str, int] = {
    "B": 74, "F": 142, "P": 102, "BF": 0, "BP": 27, "FP": 28, "BFP": 10,
}


@dataclass
class Table1Result:
    """Reproduced Table 1 counts plus the per-week diagnosis reports."""

    counts: Dict[str, int]
    paper_counts: Dict[str, int]
    reports: List[NetworkAnomalyReport] = field(default_factory=list)

    @property
    def total_events(self) -> int:
        """Total number of aggregated anomaly events."""
        return sum(self.counts.values())

    def single_type_fraction(self) -> float:
        """Fraction of events detected in exactly one traffic type."""
        if not self.total_events:
            return 0.0
        single = sum(self.counts[label] for label in ("B", "F", "P"))
        return single / self.total_events

    def each_type_contributes(self) -> bool:
        """Whether each of B, F, P detects at least one event on its own."""
        return all(self.counts[label] > 0 for label in ("B", "F", "P"))

    def render(self) -> str:
        """Paper-style table with the reproduction next to the original."""
        rows = []
        for label in COMBINATION_LABELS:
            rows.append([label, self.counts.get(label, 0),
                         self.paper_counts.get(label, 0)])
        rows.append(["Total", self.total_events, sum(self.paper_counts.values())])
        return format_table(
            ["Traffic", "# Found (repro)", "# Found (paper)"],
            rows,
            title="Table 1 — anomalies found per traffic-type combination",
        )


def run_table1(
    dataset: SyntheticDataset,
    n_normal: int = 4,
    confidence: float = 0.999,
    week_by_week: bool = True,
) -> Table1Result:
    """Reproduce Table 1 on *dataset*.

    Parameters
    ----------
    dataset:
        The synthetic dataset (any number of weeks).
    n_normal, confidence:
        Subspace-method parameters.
    week_by_week:
        Fit and diagnose one week at a time (the paper's procedure); when
        ``False`` the whole dataset is analyzed as a single window.
    """
    counts = {label: 0 for label in COMBINATION_LABELS}
    reports: List[NetworkAnomalyReport] = []

    if week_by_week:
        windows = week_windows(dataset.n_bins, dataset.config.bin_seconds,
                               min_bins=n_normal + 3)
    else:
        windows = [(0, dataset.n_bins)]

    for start, end in windows:
        window_series = dataset.series.window(start, end)
        report = detect_network_anomalies(window_series, n_normal=n_normal,
                                          confidence=confidence)
        reports.append(report)
        for label, count in count_by_label(report.events).items():
            counts[label] += count

    return Table1Result(counts=counts, paper_counts=dict(PAPER_TABLE1), reports=reports)
