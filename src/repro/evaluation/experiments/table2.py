"""Table 2: anomaly taxonomy and per-type signatures.

Table 2 of the paper is qualitative: for each anomaly type it states the
traffic types in which the anomaly appears and the dominant-attribute
signature it exhibits.  The reproduction verifies those statements
experimentally: every injected anomaly of each type is matched to its
detected event, the event's features are extracted, and the observed
signature is compared against the paper's stated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.anomalies.types import AnomalyType
from repro.classification.dominance import DominanceAnalyzer
from repro.classification.features import EventFeatures, extract_event_features
from repro.core.pipeline import detect_network_anomalies
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.matching import match_events
from repro.evaluation.reporting import format_table
from repro.flows.timeseries import TrafficType
from repro.utils.validation import require

__all__ = ["SignatureExpectation", "Table2Result", "run_table2", "PAPER_SIGNATURES"]


@dataclass(frozen=True)
class SignatureExpectation:
    """The paper's stated signature for one anomaly type.

    ``None`` for a boolean field means the paper makes no claim about it.
    """

    spike_types: Tuple[TrafficType, ...]
    dip: bool = False
    dominant_src: Optional[bool] = None
    dominant_dst: Optional[bool] = None
    dominant_dst_port: Optional[bool] = None


#: Table 2's "Features" column, encoded.
PAPER_SIGNATURES: Dict[AnomalyType, SignatureExpectation] = {
    AnomalyType.ALPHA: SignatureExpectation(
        spike_types=(TrafficType.BYTES, TrafficType.PACKETS),
        dominant_src=True, dominant_dst=True),
    AnomalyType.DOS: SignatureExpectation(
        spike_types=(TrafficType.PACKETS, TrafficType.FLOWS),
        dominant_src=False, dominant_dst=True),
    AnomalyType.DDOS: SignatureExpectation(
        spike_types=(TrafficType.PACKETS, TrafficType.FLOWS),
        dominant_src=False, dominant_dst=True),
    AnomalyType.FLASH_CROWD: SignatureExpectation(
        spike_types=(TrafficType.FLOWS, TrafficType.PACKETS),
        dominant_dst=True, dominant_dst_port=True),
    AnomalyType.SCAN: SignatureExpectation(
        spike_types=(TrafficType.FLOWS,),
        dominant_src=True),
    AnomalyType.WORM: SignatureExpectation(
        spike_types=(TrafficType.FLOWS,),
        dominant_src=False, dominant_dst=False, dominant_dst_port=True),
    AnomalyType.POINT_MULTIPOINT: SignatureExpectation(
        spike_types=(TrafficType.BYTES, TrafficType.PACKETS),
        dominant_src=True, dominant_dst=False, dominant_dst_port=True),
    AnomalyType.OUTAGE: SignatureExpectation(
        spike_types=(), dip=True),
    AnomalyType.INGRESS_SHIFT: SignatureExpectation(
        spike_types=(TrafficType.FLOWS,)),
}


@dataclass
class TypeSignatureObservation:
    """Observed signature statistics for one anomaly type."""

    anomaly_type: AnomalyType
    n_injected: int
    n_detected: int
    n_signature_consistent: int
    spike_type_counts: Dict[TrafficType, int]
    dip_count: int
    dominant_src_count: int
    dominant_dst_count: int
    dominant_dst_port_count: int

    @property
    def detection_rate(self) -> float:
        """Fraction of injected anomalies of this type that were detected."""
        return self.n_detected / self.n_injected if self.n_injected else 0.0

    @property
    def signature_consistency(self) -> float:
        """Fraction of detected instances whose features match Table 2."""
        return (self.n_signature_consistent / self.n_detected
                if self.n_detected else 0.0)


@dataclass
class Table2Result:
    """Observed per-type signatures against the paper's Table 2."""

    observations: Dict[AnomalyType, TypeSignatureObservation]

    def observation(self, anomaly_type: AnomalyType) -> TypeSignatureObservation:
        """The observation row of one anomaly type."""
        return self.observations[AnomalyType(anomaly_type)]

    def overall_consistency(self) -> float:
        """Detected-instance-weighted mean signature consistency."""
        detected = sum(o.n_detected for o in self.observations.values())
        if not detected:
            return 0.0
        consistent = sum(o.n_signature_consistent for o in self.observations.values())
        return consistent / detected

    def render(self) -> str:
        """Paper-style taxonomy table with observed signatures."""
        rows = []
        for anomaly_type, observation in self.observations.items():
            spikes = "/".join(
                t.short_label for t, c in observation.spike_type_counts.items() if c > 0)
            rows.append([
                anomaly_type.table_label,
                observation.n_injected,
                observation.n_detected,
                spikes or ("dip" if observation.dip_count else "-"),
                f"{observation.dominant_src_count}/{observation.n_detected}",
                f"{observation.dominant_dst_count}/{observation.n_detected}",
                f"{observation.dominant_dst_port_count}/{observation.n_detected}",
                f"{observation.signature_consistency:.0%}",
            ])
        return format_table(
            ["Anomaly", "#inj", "#det", "spike types", "dom src", "dom dst",
             "dom dst port", "consistent"],
            rows,
            title="Table 2 — anomaly signatures as observed in the reproduction",
        )


def _matches_expectation(features: EventFeatures,
                         expectation: SignatureExpectation) -> bool:
    """Whether an event's features are consistent with the paper's signature."""
    if expectation.dip:
        if not features.has_dip():
            return False
    else:
        if not any(features.spikes_in(t) for t in expectation.spike_types):
            return False
    dominance = features.dominance
    if expectation.dominant_src is True and not dominance.any_dominant("src_range"):
        return False
    if expectation.dominant_dst is True and not dominance.any_dominant("dst_range"):
        return False
    if expectation.dominant_dst_port is True and dominance.dominant_port("dst_port") is None:
        return False
    # "False" expectations (explicitly *no* dominant attribute) are treated
    # leniently: background traffic can contribute a dominant value without
    # contradicting the paper's description of the anomalous traffic itself.
    return True


def run_table2(
    dataset: SyntheticDataset,
    n_normal: int = 4,
    confidence: float = 0.999,
) -> Table2Result:
    """Verify Table 2's signatures on the injected anomalies of *dataset*."""
    require(len(dataset.ground_truth) > 0, "dataset has no injected anomalies")
    report = detect_network_anomalies(dataset.series, n_normal=n_normal,
                                      confidence=confidence)
    match_report = match_events(report.events, dataset.ground_truth,
                                series=dataset.series)
    analyzer = DominanceAnalyzer(dataset.series, dataset.composition)

    features_by_event: Dict[int, EventFeatures] = {}

    def _features(event_index: int) -> EventFeatures:
        if event_index not in features_by_event:
            features_by_event[event_index] = extract_event_features(
                report.events[event_index], dataset.series, analyzer)
        return features_by_event[event_index]

    observations: Dict[AnomalyType, TypeSignatureObservation] = {}
    for anomaly_type in AnomalyType.injectable():
        injected = dataset.ground_truth.by_type(anomaly_type)
        if not injected:
            continue
        expectation = PAPER_SIGNATURES[anomaly_type]
        n_detected = 0
        n_consistent = 0
        spike_counts = {t: 0 for t in TrafficType.all()}
        dip_count = 0
        src_count = 0
        dst_count = 0
        port_count = 0
        for anomaly in injected:
            event_indices = match_report.events_for_anomaly(anomaly.anomaly_id)
            if not event_indices:
                continue
            n_detected += 1
            # Score the anomaly against its best-overlapping event.
            best_index = max(
                event_indices,
                key=lambda i: len(set(report.events[i].bins) & set(anomaly.bins)))
            features = _features(best_index)
            for traffic_type in TrafficType.all():
                if features.spikes_in(traffic_type):
                    spike_counts[traffic_type] += 1
            if features.has_dip():
                dip_count += 1
            if features.dominance.any_dominant("src_range"):
                src_count += 1
            if features.dominance.any_dominant("dst_range"):
                dst_count += 1
            if features.dominance.dominant_port("dst_port") is not None:
                port_count += 1
            if _matches_expectation(features, expectation):
                n_consistent += 1
        observations[anomaly_type] = TypeSignatureObservation(
            anomaly_type=anomaly_type,
            n_injected=len(injected),
            n_detected=n_detected,
            n_signature_consistent=n_consistent,
            spike_type_counts=spike_counts,
            dip_count=dip_count,
            dominant_src_count=src_count,
            dominant_dst_count=dst_count,
            dominant_dst_port_count=port_count,
        )
    return Table2Result(observations=observations)
