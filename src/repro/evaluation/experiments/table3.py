"""Table 3: range of anomalies found for each traffic type.

Table 3 cross-tabulates the classified anomaly type against the traffic-type
combination in which the anomaly was detected, over the four weeks of data.
Its qualitative claims are:

* ALPHA flows dominate and are detected in byte/packet traffic (B, P, BP);
* DOS attacks are detected in flow/packet traffic but not bytes;
* SCAN and FLASH events are (mostly) flow anomalies;
* only ~8% of detections are false alarms and ~10% remain unclassified.

:func:`run_table3` runs detection, classification, and ground-truth matching
on a synthetic dataset and produces the same cross-tab, next to the paper's
own numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.anomalies.types import AnomalyType
from repro.classification.classifier import ClassificationResult, RuleBasedClassifier
from repro.classification.dominance import DominanceAnalyzer
from repro.classification.features import extract_event_features
from repro.core.events import COMBINATION_LABELS
from repro.core.pipeline import detect_network_anomalies
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.matching import MatchReport, match_events
from repro.evaluation.metrics import (
    DetectionMetrics,
    aggregate_match_metrics,
    classification_accuracy,
    classification_confusion,
)
from repro.evaluation.reporting import format_table
from repro.utils.timebins import week_windows
from repro.utils.validation import require

__all__ = ["Table3Result", "run_table3", "PAPER_TABLE3", "TABLE3_COLUMNS"]

#: Column order of Table 3 in the paper.
TABLE3_COLUMNS: Tuple[str, ...] = (
    "ALPHA", "DOS", "SCAN", "FLASH", "PT.-MULT.", "WORM", "OUTAGE",
    "INGR.-SHIFT", "Unknown", "False Alarm",
)

#: The paper's Table 3 (four weeks of Abilene data).
PAPER_TABLE3: Dict[str, Dict[str, int]] = {
    "B":   {"ALPHA": 59, "DOS": 4, "SCAN": 1, "FLASH": 1, "PT.-MULT.": 0, "WORM": 0,
            "OUTAGE": 0, "INGR.-SHIFT": 0, "Unknown": 4, "False Alarm": 5},
    "F":   {"ALPHA": 5, "DOS": 19, "SCAN": 44, "FLASH": 50, "PT.-MULT.": 0, "WORM": 2,
            "OUTAGE": 1, "INGR.-SHIFT": 0, "Unknown": 8, "False Alarm": 13},
    "P":   {"ALPHA": 54, "DOS": 18, "SCAN": 2, "FLASH": 2, "PT.-MULT.": 2, "WORM": 0,
            "OUTAGE": 0, "INGR.-SHIFT": 1, "Unknown": 13, "False Alarm": 10},
    "BP":  {"ALPHA": 19, "DOS": 0, "SCAN": 0, "FLASH": 0, "PT.-MULT.": 0, "WORM": 0,
            "OUTAGE": 0, "INGR.-SHIFT": 1, "Unknown": 6, "False Alarm": 1},
    "FP":  {"ALPHA": 0, "DOS": 3, "SCAN": 8, "FLASH": 10, "PT.-MULT.": 0, "WORM": 0,
            "OUTAGE": 0, "INGR.-SHIFT": 1, "Unknown": 5, "False Alarm": 1},
    "BFP": {"ALPHA": 0, "DOS": 0, "SCAN": 1, "FLASH": 1, "PT.-MULT.": 1, "WORM": 0,
            "OUTAGE": 2, "INGR.-SHIFT": 1, "Unknown": 3, "False Alarm": 1},
}


def _column_of(result: ClassificationResult, matched: bool) -> str:
    """Table 3 column of one classified event."""
    anomaly_type = result.anomaly_type
    if anomaly_type in (AnomalyType.UNKNOWN,):
        return "Unknown"
    if anomaly_type is AnomalyType.FALSE_ALARM:
        return "False Alarm"
    return anomaly_type.table_label


@dataclass
class Table3Result:
    """Reproduced Table 3 cross-tab plus the supporting metrics."""

    counts: Dict[str, Dict[str, int]]
    paper_counts: Dict[str, Dict[str, int]]
    detection: DetectionMetrics
    confusion: Dict[Tuple[AnomalyType, AnomalyType], int]
    classifications: List[ClassificationResult] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # summaries the paper highlights
    # ------------------------------------------------------------------ #
    def column_total(self, column: str) -> int:
        """Total events classified into *column* across traffic labels."""
        return sum(row.get(column, 0) for row in self.counts.values())

    def total_events(self) -> int:
        """Total classified events."""
        return sum(self.column_total(column) for column in TABLE3_COLUMNS)

    def false_alarm_fraction(self) -> float:
        """Fraction of events classified as false alarms (paper: ~8%)."""
        total = self.total_events()
        return self.column_total("False Alarm") / total if total else 0.0

    def unknown_fraction(self) -> float:
        """Fraction of events left unclassified (paper: ~10%)."""
        total = self.total_events()
        return self.column_total("Unknown") / total if total else 0.0

    def classification_accuracy(self) -> float:
        """Accuracy of the classifier against the injected ground truth."""
        return classification_accuracy(self.confusion)

    def alpha_in_byte_rows_fraction(self) -> float:
        """Fraction of ALPHA events detected in byte-involving combinations."""
        alpha_total = self.column_total("ALPHA")
        if not alpha_total:
            return 0.0
        byte_rows = [label for label in self.counts if "B" in label]
        alpha_bytes = sum(self.counts[label].get("ALPHA", 0) for label in byte_rows)
        return alpha_bytes / alpha_total

    def dos_in_byte_only_row(self) -> int:
        """Number of DOS events detected only in bytes (paper: essentially none)."""
        return self.counts.get("B", {}).get("DOS", 0)

    def render(self) -> str:
        """Paper-style cross-tab (reproduction), then the paper's own numbers."""
        def _table(counts: Mapping[str, Mapping[str, int]], title: str) -> str:
            rows = []
            for label in ("B", "F", "P", "BF", "BP", "FP", "BFP"):
                if label not in counts and label == "BF":
                    continue
                row_counts = counts.get(label, {})
                rows.append([label] + [row_counts.get(col, 0) for col in TABLE3_COLUMNS])
            totals = ["Total"] + [
                sum(counts.get(label, {}).get(col, 0) for label in counts)
                for col in TABLE3_COLUMNS
            ]
            rows.append(totals)
            return format_table(["Type"] + list(TABLE3_COLUMNS), rows, title=title)

        lines = [
            _table(self.counts, "Table 3 (reproduction) — anomaly type vs traffic type"),
            "",
            _table(self.paper_counts, "Table 3 (paper, for shape comparison)"),
            "",
            f"false alarms: {self.false_alarm_fraction():.1%}  "
            f"unknown: {self.unknown_fraction():.1%}  "
            f"classification accuracy vs ground truth: "
            f"{self.classification_accuracy():.1%}  "
            f"detection rate: {self.detection.detection_rate:.1%}",
        ]
        return "\n".join(lines)


def run_table3(
    dataset: SyntheticDataset,
    n_normal: int = 4,
    confidence: float = 0.999,
    week_by_week: bool = True,
    dominance_threshold: float = 0.2,
) -> Table3Result:
    """Reproduce Table 3 on *dataset* (detection + classification + matching)."""
    require(len(dataset.ground_truth) > 0, "dataset has no injected anomalies")
    classifier = RuleBasedClassifier()
    counts: Dict[str, Dict[str, int]] = {
        label: {column: 0 for column in TABLE3_COLUMNS} for label in COMBINATION_LABELS
    }

    all_matches: List[MatchReport] = []

    if week_by_week:
        windows = week_windows(dataset.n_bins, dataset.config.bin_seconds,
                               min_bins=n_normal + 3)
    else:
        windows = [(0, dataset.n_bins)]

    combined_events = []
    combined_classifications: List[ClassificationResult] = []

    for start, end in windows:
        window_series = dataset.series.window(start, end)
        report = detect_network_anomalies(window_series, n_normal=n_normal,
                                          confidence=confidence)
        analyzer = DominanceAnalyzer(window_series, dataset.composition,
                                     threshold=dominance_threshold,
                                     bin_offset=start)
        window_truth = dataset.ground_truth.shifted(-start)
        match_report = match_events(report.events, window_truth, series=window_series)

        window_classifications: List[ClassificationResult] = []
        for event in report.events:
            features = extract_event_features(event, window_series, analyzer)
            window_classifications.append(classifier.classify(features))

        for event_index, (event, classification) in enumerate(
                zip(report.events, window_classifications)):
            matched = bool(match_report.anomalies_for_event(event_index))
            column = _column_of(classification, matched)
            counts[event.traffic_label][column] += 1

        combined_events.extend(report.events)
        combined_classifications.extend(window_classifications)
        all_matches.append(match_report)

    # Aggregate matching/metrics over windows (anomaly ids are global, so
    # an anomaly detected in any window counts once).
    detection = aggregate_match_metrics(all_matches, dataset.ground_truth)

    # Confusion over all windows (per window, then summed).
    confusion: Dict[Tuple[AnomalyType, AnomalyType], int] = {}
    offset = 0
    for match_report, (start, end) in zip(all_matches, windows):
        window_classifications = combined_classifications[offset:offset + match_report.n_events]
        window_confusion = classification_confusion(window_classifications, match_report)
        for key, value in window_confusion.items():
            confusion[key] = confusion.get(key, 0) + value
        offset += match_report.n_events

    return Table3Result(
        counts=counts,
        paper_counts=dict(PAPER_TABLE3),
        detection=detection,
        confusion=confusion,
        classifications=combined_classifications,
    )
