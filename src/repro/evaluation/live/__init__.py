"""Live-mode evaluation: online Table 1/3 analogues for the streaming path.

The batch experiments (:mod:`repro.evaluation.experiments`) quantify the
reproduction's detection quality with the paper's own artifacts — Table 1
(events per traffic-type combination) and Table 3 (per-anomaly-type
detection breakdown) — but only for the offline, full-window fit.  This
package replays the same labeled weeks through the **single-pass streaming
pipeline** (:func:`~repro.streaming.pipeline.stream_detect`, any engine:
exact, sharded, or low-rank) and computes the same analogues online:

* :func:`~repro.evaluation.live.harness.run_live_evaluation` — one engine,
  week-by-week live replay, Table 1-analogue label counts plus
  Table 3-analogue detection metrics (detection rate, false-alarm rate,
  per-anomaly-type recall) against the injected ground truth;
* :func:`~repro.evaluation.live.harness.run_live_engine_suite` — the same
  across all three engines, side by side;
* :func:`~repro.evaluation.live.harness.batch_reference` — the batch
  counterpart, windowed and matched **identically**, so every live number
  has an apples-to-apples batch twin;
* :func:`~repro.evaluation.live.delta.compare_batch_live` — the structured
  batch-vs-live delta report (:class:`~repro.evaluation.live.delta
  .BatchLiveDelta`) whose ``to_dict`` feeds the ``BENCH_streaming.json``
  trajectory.
"""

from repro.evaluation.live.delta import BatchLiveDelta, compare_batch_live
from repro.evaluation.live.harness import (
    LIVE_ENGINES,
    BatchReference,
    LiveEvaluationResult,
    LiveWindowResult,
    batch_reference,
    engine_config,
    run_live_engine_suite,
    run_live_evaluation,
)

__all__ = [
    "LIVE_ENGINES",
    "BatchReference",
    "BatchLiveDelta",
    "LiveEvaluationResult",
    "LiveWindowResult",
    "batch_reference",
    "compare_batch_live",
    "engine_config",
    "run_live_engine_suite",
    "run_live_evaluation",
]
