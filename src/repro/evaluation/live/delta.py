"""Batch-vs-live delta reports.

A live (single-pass streaming) diagnosis differs from the batch reference
for well-understood reasons — warmup bins are never flagged, the model
keeps recalibrating instead of fitting once, a low-rank engine truncates
the spectrum.  :func:`compare_batch_live` quantifies the difference as one
structured :class:`BatchLiveDelta`: Table 1-analogue count deltas,
Table 3-analogue metric deltas, and a window-merged event-parity summary.
``to_dict`` is consumed by ``benchmarks/test_bench_live_eval.py`` and the
``BENCH_streaming.json`` trajectory, so live-mode quality regressions trip
CI like any other tracked metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.events import COMBINATION_LABELS
from repro.evaluation.live.harness import BatchReference, LiveEvaluationResult
from repro.evaluation.reporting import format_table
from repro.evaluation.streaming_parity import EventParityReport, event_parity
from repro.utils.validation import require

__all__ = ["BatchLiveDelta", "compare_batch_live"]


def _merged_parity(per_window: Sequence[EventParityReport]) -> Dict[str, object]:
    """Window-merged parity counters (events stay window-local)."""
    n_batch = sum(r.n_batch for r in per_window)
    n_streaming = sum(r.n_streaming for r in per_window)
    n_matched = sum(r.n_matched for r in per_window)
    n_span_matched = sum(r.n_span_matched for r in per_window)
    return {
        "n_batch": n_batch,
        "n_streaming": n_streaming,
        "n_matched": n_matched,
        "n_span_matched": n_span_matched,
        "exact": all(r.exact for r in per_window),
        "recall": n_matched / n_batch if n_batch else 1.0,
        "span_recall": n_span_matched / n_batch if n_batch else 1.0,
    }


@dataclass
class BatchLiveDelta:
    """How one engine's live diagnosis compares to the batch reference."""

    engine: str
    batch: BatchReference
    live: LiveEvaluationResult
    parity_per_window: List[EventParityReport]

    # ------------------------------------------------------------------ #
    # headline deltas (live minus batch)
    # ------------------------------------------------------------------ #
    @property
    def detection_rate_delta(self) -> float:
        """Live detection rate minus batch detection rate."""
        return (self.live.metrics.detection_rate
                - self.batch.metrics.detection_rate)

    @property
    def false_alarm_rate_delta(self) -> float:
        """Live false-alarm rate minus batch false-alarm rate."""
        return (self.live.metrics.false_alarm_rate
                - self.batch.metrics.false_alarm_rate)

    @property
    def n_events_delta(self) -> int:
        """Live total event count minus batch total event count."""
        return self.live.total_events - self.batch.total_events

    def per_type_delta(self) -> Dict[str, float]:
        """Per-anomaly-type recall delta (live minus batch)."""
        batch_rates = {t.value: r for t, r in
                       self.batch.metrics.per_type_detection_rate.items()}
        live_rates = {t.value: r for t, r in
                      self.live.metrics.per_type_detection_rate.items()}
        return {name: round(live_rates.get(name, 0.0)
                            - batch_rates.get(name, 0.0), 4)
                for name in sorted(set(batch_rates) | set(live_rates))}

    def parity(self) -> Dict[str, object]:
        """Window-merged live-vs-batch event parity counters."""
        return _merged_parity(self.parity_per_window)

    # ------------------------------------------------------------------ #
    # structured output
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable delta report for the bench trajectory."""
        return {
            "engine": self.engine,
            "chunk_size": self.live.chunk_size,
            "n_warmup_bins": self.live.n_warmup_bins,
            "label_counts": {
                "batch": dict(self.batch.label_counts),
                "live": dict(self.live.label_counts),
            },
            "metrics": {
                "batch": self.batch.metrics.as_dict(),
                "live": self.live.metrics.as_dict(),
            },
            "delta": {
                "detection_rate": round(self.detection_rate_delta, 4),
                "false_alarm_rate": round(self.false_alarm_rate_delta, 4),
                "n_events": self.n_events_delta,
                "per_type_detection_rate": self.per_type_delta(),
            },
            "parity": self.parity(),
        }

    def render(self) -> str:
        """Side-by-side Table 1 analogue plus the headline metric deltas."""
        rows = []
        for label in COMBINATION_LABELS:
            batch_count = self.batch.label_counts.get(label, 0)
            live_count = self.live.label_counts.get(label, 0)
            rows.append([label, batch_count, live_count,
                         live_count - batch_count])
        rows.append(["Total", self.batch.total_events, self.live.total_events,
                     self.n_events_delta])
        table = format_table(
            ["Traffic", "# Batch", f"# Live ({self.engine})", "Delta"],
            rows,
            title="Table 1 analogue — batch vs live",
        )
        parity = self.parity()
        return "\n".join([
            table,
            "",
            f"detection rate: batch {self.batch.metrics.detection_rate:.1%} "
            f"-> live {self.live.metrics.detection_rate:.1%} "
            f"({self.detection_rate_delta:+.1%})  "
            f"false alarms: batch {self.batch.metrics.false_alarm_rate:.1%} "
            f"-> live {self.live.metrics.false_alarm_rate:.1%} "
            f"({self.false_alarm_rate_delta:+.1%})",
            f"event parity vs batch: recall {parity['recall']:.3f}, "
            f"span recall {parity['span_recall']:.3f}",
        ])


def compare_batch_live(batch: BatchReference,
                       live: LiveEvaluationResult) -> BatchLiveDelta:
    """Build the delta report of one live run against the batch reference.

    Both sides must have been produced over the same dataset windowing
    (the harness guarantees this when both come from the same dataset and
    ``week_by_week`` setting).
    """
    live_windows = [(w.start_bin, w.end_bin) for w in live.windows]
    require(live_windows == list(batch.windows),
            "batch and live evaluations cover different windows")
    parity_per_window = [
        event_parity(batch_events, window.events)
        for batch_events, window in zip(batch.events_per_window, live.windows)
    ]
    return BatchLiveDelta(
        engine=live.engine,
        batch=batch,
        live=live,
        parity_per_window=parity_per_window,
    )
