"""The online evaluation harness: labeled weeks through the streaming path.

Replays a labeled :class:`~repro.datasets.synthetic.SyntheticDataset` week
by week through :func:`~repro.streaming.pipeline.stream_detect` — the
deployment mode the paper targets, where the model trains, recalibrates,
and flags in a single pass — and scores the emitted events against the
injected ground truth with exactly the matching and aggregation the batch
Table 3 runner uses.  The result carries both paper analogues:

* **Table 1 analogue** — fused event counts per traffic-type combination
  label (B, F, P, BF, BP, FP, BFP);
* **Table 3 analogue** — detection rate, false-alarm rate, and
  per-anomaly-type recall against the ground-truth log.

:func:`batch_reference` computes the batch twin over the identical windows
with the identical matcher, so a live number minus its batch twin is a pure
measurement of the online approximation (warmup, recalibration cadence,
forgetting, engine truncation) — see :mod:`repro.evaluation.live.delta`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import COMBINATION_LABELS, AnomalyEvent, count_by_label
from repro.core.pipeline import detect_network_anomalies
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.matching import MatchReport, match_events
from repro.evaluation.metrics import DetectionMetrics, aggregate_match_metrics
from repro.evaluation.reporting import format_table
from repro.streaming.config import StreamingConfig
from repro.streaming.pipeline import StreamingReport, stream_detect
from repro.streaming.sources import chunk_series
from repro.utils.timebins import week_windows
from repro.utils.validation import require

__all__ = ["LIVE_ENGINES", "LiveWindowResult", "LiveEvaluationResult",
           "BatchReference", "engine_config", "run_live_evaluation",
           "run_live_engine_suite", "batch_reference"]

#: The three streaming engines the live harness evaluates side by side.
LIVE_ENGINES: Tuple[str, ...] = ("exact", "sharded", "lowrank")

#: Default chunk size (bins) of the simulated live feed.
DEFAULT_CHUNK_BINS = 32


def engine_config(base: StreamingConfig, engine: str,
                  n_shards: int = 4) -> StreamingConfig:
    """*base* specialized to one of the :data:`LIVE_ENGINES`.

    ``"exact"`` is the single full-scatter engine, ``"sharded"`` partitions
    the columns across *n_shards* exact shards, ``"lowrank"`` tracks only
    the top eigenpairs — all three share every other knob of *base* so the
    comparison isolates the engine.
    """
    require(engine in LIVE_ENGINES,
            f"engine must be one of {LIVE_ENGINES}, got {engine!r}")
    if engine == "exact":
        return replace(base, engine="exact", n_shards=1)
    if engine == "sharded":
        return replace(base, engine="exact", n_shards=n_shards)
    return replace(base, engine="lowrank", n_shards=1)


@dataclass
class LiveWindowResult:
    """One labeled week replayed live: the streaming report plus its match."""

    start_bin: int
    end_bin: int
    report: StreamingReport
    match: MatchReport

    @property
    def events(self) -> List[AnomalyEvent]:
        """The fused events of the window (bins are window-local)."""
        return self.report.events


@dataclass
class LiveEvaluationResult:
    """Online Table 1/3 analogues of one engine over all labeled weeks."""

    engine: str
    config: StreamingConfig
    chunk_size: int
    label_counts: Dict[str, int]
    metrics: DetectionMetrics
    windows: List[LiveWindowResult]

    @property
    def total_events(self) -> int:
        """Total fused events across windows."""
        return sum(self.label_counts.values())

    @property
    def n_warmup_bins(self) -> int:
        """Bins consumed by warmup (no detection) across windows."""
        return sum(w.report.n_warmup_bins for w in self.windows)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (benchmark artifacts, dashboards)."""
        return {
            "engine": self.engine,
            "chunk_size": self.chunk_size,
            "label_counts": dict(self.label_counts),
            "n_events": self.total_events,
            "n_warmup_bins": self.n_warmup_bins,
            "metrics": self.metrics.as_dict(),
        }

    def render(self) -> str:
        """Paper-style Table 1 analogue plus the headline metrics."""
        rows = [[label, self.label_counts.get(label, 0)]
                for label in COMBINATION_LABELS]
        rows.append(["Total", self.total_events])
        table = format_table(
            ["Traffic", f"# Found (live, {self.engine})"], rows,
            title="Table 1 analogue — live streaming detection",
        )
        metrics = self.metrics
        return "\n".join([
            table,
            "",
            f"detection rate: {metrics.detection_rate:.1%}  "
            f"false alarms: {metrics.false_alarm_rate:.1%}  "
            f"warmup bins: {self.n_warmup_bins}",
        ])


@dataclass
class BatchReference:
    """The batch twin of a live evaluation: same windows, same matcher."""

    label_counts: Dict[str, int]
    metrics: DetectionMetrics
    windows: List[Tuple[int, int]]
    events_per_window: List[List[AnomalyEvent]]
    matches: List[MatchReport]

    @property
    def total_events(self) -> int:
        """Total fused events across windows."""
        return sum(self.label_counts.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "label_counts": dict(self.label_counts),
            "n_events": self.total_events,
            "metrics": self.metrics.as_dict(),
        }


def _windows_of(dataset: SyntheticDataset, n_normal: int,
                week_by_week: bool) -> List[Tuple[int, int]]:
    if week_by_week:
        return week_windows(dataset.n_bins, dataset.config.bin_seconds,
                            min_bins=n_normal + 3)
    return [(0, dataset.n_bins)]


def _match_window(dataset, window_series, events, start: int) -> MatchReport:
    """Match window-local *events* against the window-shifted ground truth."""
    return match_events(events, dataset.ground_truth.shifted(-start),
                        series=window_series)


def run_live_evaluation(
    dataset: SyntheticDataset,
    config: StreamingConfig = StreamingConfig(min_train_bins=128,
                                              recalibrate_every_bins=96),
    chunk_size: int = DEFAULT_CHUNK_BINS,
    engine: Optional[str] = None,
    week_by_week: bool = True,
) -> LiveEvaluationResult:
    """Replay *dataset* live through one streaming engine and score it.

    Parameters
    ----------
    dataset:
        A labeled synthetic dataset (must carry injected ground truth).
    config:
        The streaming configuration.  The defaults mirror the streaming
        benchmarks: two-hour warmup, recalibration every 96 bins.
    chunk_size:
        Bins per chunk of the simulated live feed.
    engine:
        One of :data:`LIVE_ENGINES`, applied to *config* via
        :func:`engine_config`; ``None`` uses *config* verbatim (its
        ``engine``/``n_shards`` fields then name the engine).
    week_by_week:
        Window the dataset into paper-style weeks (the default), or replay
        it as a single window.
    """
    require(len(dataset.ground_truth) > 0, "dataset has no injected anomalies")
    if engine is not None:
        config = engine_config(config, engine)
    engine_name = engine if engine is not None else (
        "sharded" if config.n_shards > 1 else config.engine)

    counts = {label: 0 for label in COMBINATION_LABELS}
    windows: List[LiveWindowResult] = []
    for start, end in _windows_of(dataset, config.n_normal, week_by_week):
        window_series = dataset.series.window(start, end)
        report = stream_detect(chunk_series(window_series, chunk_size), config)
        match = _match_window(dataset, window_series, report.events, start)
        windows.append(LiveWindowResult(start_bin=start, end_bin=end,
                                        report=report, match=match))
        for label, count in count_by_label(report.events).items():
            counts[label] += count

    metrics = aggregate_match_metrics([w.match for w in windows],
                                      dataset.ground_truth)
    return LiveEvaluationResult(
        engine=engine_name,
        config=config,
        chunk_size=chunk_size,
        label_counts=counts,
        metrics=metrics,
        windows=windows,
    )


def run_live_engine_suite(
    dataset: SyntheticDataset,
    config: StreamingConfig = StreamingConfig(min_train_bins=128,
                                              recalibrate_every_bins=96),
    engines: Sequence[str] = LIVE_ENGINES,
    chunk_size: int = DEFAULT_CHUNK_BINS,
    week_by_week: bool = True,
) -> Dict[str, LiveEvaluationResult]:
    """The live evaluation across several engines, side by side."""
    require(len(engines) >= 1, "at least one engine must be evaluated")
    return {
        engine: run_live_evaluation(dataset, config, chunk_size=chunk_size,
                                    engine=engine, week_by_week=week_by_week)
        for engine in engines
    }


def batch_reference(
    dataset: SyntheticDataset,
    n_normal: int = 4,
    confidence: float = 0.999,
    week_by_week: bool = True,
) -> BatchReference:
    """The batch diagnosis over the identical windows and matcher.

    Runs :func:`~repro.core.pipeline.detect_network_anomalies` per window
    (the paper's offline procedure) and aggregates with the same helpers as
    the live harness, so live-vs-batch deltas are free of methodology skew.
    """
    require(len(dataset.ground_truth) > 0, "dataset has no injected anomalies")
    counts = {label: 0 for label in COMBINATION_LABELS}
    windows = _windows_of(dataset, n_normal, week_by_week)
    events_per_window: List[List[AnomalyEvent]] = []
    matches: List[MatchReport] = []
    for start, end in windows:
        window_series = dataset.series.window(start, end)
        report = detect_network_anomalies(window_series, n_normal=n_normal,
                                          confidence=confidence)
        match = _match_window(dataset, window_series, report.events, start)
        events_per_window.append(report.events)
        matches.append(match)
        for label, count in count_by_label(report.events).items():
            counts[label] += count
    return BatchReference(
        label_counts=counts,
        metrics=aggregate_match_metrics(matches, dataset.ground_truth),
        windows=windows,
        events_per_window=events_per_window,
        matches=matches,
    )
