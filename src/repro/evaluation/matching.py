"""Matching detected anomaly events to ground-truth injected anomalies.

A detected event *matches* a ground-truth anomaly when their timebin spans
overlap (optionally within a small tolerance) and, unless disabled, they
share at least one OD flow.  One ground-truth anomaly may be covered by
several events (e.g. a long outage split into pieces) and, rarely, one event
may cover several injected anomalies; the report keeps the full bipartite
mapping so metrics can count either way without double counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.anomalies.types import AnomalyType, GroundTruthAnomaly, GroundTruthLog
from repro.core.events import AnomalyEvent
from repro.flows.timeseries import TrafficMatrixSeries
from repro.utils.validation import require

__all__ = ["EventMatch", "MatchReport", "match_events"]


@dataclass(frozen=True)
class EventMatch:
    """One (detected event, ground-truth anomaly) match."""

    event_index: int
    anomaly_id: int
    overlap_bins: int

    def __post_init__(self) -> None:
        require(self.overlap_bins >= 1, "a match must overlap in at least one bin")


@dataclass
class MatchReport:
    """The result of matching a set of events against the ground truth."""

    events: List[AnomalyEvent]
    ground_truth: GroundTruthLog
    matches: List[EventMatch] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def matched_event_indices(self) -> Set[int]:
        """Indices of events matched to at least one injected anomaly."""
        return {m.event_index for m in self.matches}

    def matched_anomaly_ids(self) -> Set[int]:
        """Ids of injected anomalies covered by at least one event."""
        return {m.anomaly_id for m in self.matches}

    def unmatched_events(self) -> List[int]:
        """Indices of events with no ground-truth counterpart (false alarms)."""
        matched = self.matched_event_indices()
        return [i for i in range(len(self.events)) if i not in matched]

    def missed_anomalies(self) -> List[GroundTruthAnomaly]:
        """Injected anomalies not covered by any event."""
        matched = self.matched_anomaly_ids()
        return [a for a in self.ground_truth if a.anomaly_id not in matched]

    def events_for_anomaly(self, anomaly_id: int) -> List[int]:
        """Event indices covering one injected anomaly."""
        return [m.event_index for m in self.matches if m.anomaly_id == anomaly_id]

    def anomalies_for_event(self, event_index: int) -> List[int]:
        """Injected anomaly ids covered by one event."""
        return [m.anomaly_id for m in self.matches if m.event_index == event_index]

    # ------------------------------------------------------------------ #
    # headline numbers
    # ------------------------------------------------------------------ #
    @property
    def n_events(self) -> int:
        """Number of detected events."""
        return len(self.events)

    @property
    def n_ground_truth(self) -> int:
        """Number of injected anomalies."""
        return len(self.ground_truth)

    @property
    def detection_rate(self) -> float:
        """Fraction of injected anomalies covered by at least one event."""
        if not self.n_ground_truth:
            return 0.0
        return len(self.matched_anomaly_ids()) / self.n_ground_truth

    @property
    def false_alarm_rate(self) -> float:
        """Fraction of detected events with no ground-truth counterpart."""
        if not self.n_events:
            return 0.0
        return len(self.unmatched_events()) / self.n_events

    def detection_rate_by_type(self) -> Dict[AnomalyType, float]:
        """Per-anomaly-type detection rate."""
        rates: Dict[AnomalyType, float] = {}
        matched = self.matched_anomaly_ids()
        for anomaly_type, total in self.ground_truth.type_counts().items():
            found = sum(1 for a in self.ground_truth.by_type(anomaly_type)
                        if a.anomaly_id in matched)
            rates[anomaly_type] = found / total if total else 0.0
        return rates


def match_events(
    events: Sequence[AnomalyEvent],
    ground_truth: GroundTruthLog,
    series: Optional[TrafficMatrixSeries] = None,
    require_od_overlap: bool = True,
    bin_tolerance: int = 1,
) -> MatchReport:
    """Match detected events against the injected ground truth.

    Parameters
    ----------
    events:
        Detected anomaly events (OD flows are column indices).
    ground_truth:
        The injected anomaly log (OD pairs are PoP-name pairs).
    series:
        The traffic series, needed to translate event OD-flow indices into
        PoP-name pairs when *require_od_overlap* is set.
    require_od_overlap:
        Whether a match additionally requires at least one shared OD flow.
    bin_tolerance:
        Events and anomalies within this many bins of each other still
        count as overlapping (detection may lag by a bin).
    """
    require(bin_tolerance >= 0, "bin_tolerance must be non-negative")
    if require_od_overlap:
        require(series is not None,
                "series is required when require_od_overlap is set")

    report = MatchReport(events=list(events), ground_truth=ground_truth)
    for event_index, event in enumerate(report.events):
        event_bins = set(range(event.start_bin - bin_tolerance,
                               event.end_bin + bin_tolerance + 1))
        event_pairs: Set[Tuple[str, str]] = set()
        if require_od_overlap:
            event_pairs = {tuple(series.od_pairs[c]) for c in event.od_flows}
        for anomaly in ground_truth:
            overlap = event_bins & set(anomaly.bins)
            if not overlap:
                continue
            if require_od_overlap:
                anomaly_pairs = {tuple(p) for p in anomaly.od_pairs}
                if not (event_pairs & anomaly_pairs):
                    continue
            report.matches.append(EventMatch(
                event_index=event_index,
                anomaly_id=anomaly.anomaly_id,
                overlap_bins=len(overlap),
            ))
    return report
