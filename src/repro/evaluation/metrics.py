"""Detection and classification metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.anomalies.types import AnomalyType, GroundTruthLog
from repro.classification.classifier import ClassificationResult
from repro.evaluation.matching import MatchReport
from repro.utils.validation import require

__all__ = ["DetectionMetrics", "detection_metrics", "aggregate_match_metrics",
           "classification_confusion", "classification_accuracy"]


@dataclass(frozen=True)
class DetectionMetrics:
    """Headline detection metrics of one run."""

    n_ground_truth: int
    n_events: int
    n_detected: int
    n_missed: int
    n_false_alarms: int
    detection_rate: float
    false_alarm_rate: float
    per_type_detection_rate: Mapping[AnomalyType, float]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reports and benchmarks."""
        return {
            "n_ground_truth": self.n_ground_truth,
            "n_events": self.n_events,
            "n_detected": self.n_detected,
            "n_missed": self.n_missed,
            "n_false_alarms": self.n_false_alarms,
            "detection_rate": round(self.detection_rate, 4),
            "false_alarm_rate": round(self.false_alarm_rate, 4),
            "per_type_detection_rate": {
                t.value: round(r, 4) for t, r in self.per_type_detection_rate.items()
            },
        }


def detection_metrics(report: MatchReport) -> DetectionMetrics:
    """Compute headline detection metrics from a match report."""
    detected = len(report.matched_anomaly_ids())
    return DetectionMetrics(
        n_ground_truth=report.n_ground_truth,
        n_events=report.n_events,
        n_detected=detected,
        n_missed=report.n_ground_truth - detected,
        n_false_alarms=len(report.unmatched_events()),
        detection_rate=report.detection_rate,
        false_alarm_rate=report.false_alarm_rate,
        per_type_detection_rate=report.detection_rate_by_type(),
    )


def aggregate_match_metrics(
    match_reports: Sequence[MatchReport],
    ground_truth: GroundTruthLog,
) -> DetectionMetrics:
    """Headline metrics over several windowed match reports.

    The paper (and the table runners) fit and diagnose one week at a time;
    each window contributes a :class:`MatchReport` against the same global
    *ground_truth* (anomaly ids are global, so an anomaly detected in any
    window counts once).  Used by the batch Table 3 runner and the live
    evaluation harness so batch and live numbers aggregate identically.
    """
    detected_ids = set()
    n_false_alarms = 0
    n_events = 0
    for match_report in match_reports:
        detected_ids.update(match_report.matched_anomaly_ids())
        n_false_alarms += len(match_report.unmatched_events())
        n_events += match_report.n_events
    n_truth = len(ground_truth)
    per_type_rates: Dict[AnomalyType, float] = {}
    for anomaly_type, total in ground_truth.type_counts().items():
        found = sum(1 for a in ground_truth.by_type(anomaly_type)
                    if a.anomaly_id in detected_ids)
        per_type_rates[anomaly_type] = found / total if total else 0.0
    return DetectionMetrics(
        n_ground_truth=n_truth,
        n_events=n_events,
        n_detected=len(detected_ids),
        n_missed=n_truth - len(detected_ids),
        n_false_alarms=n_false_alarms,
        detection_rate=len(detected_ids) / n_truth if n_truth else 0.0,
        false_alarm_rate=n_false_alarms / n_events if n_events else 0.0,
        per_type_detection_rate=per_type_rates,
    )


def _truth_label(anomaly_type: AnomalyType) -> AnomalyType:
    """Collapse DOS/DDOS into a single label the way Table 3 does."""
    if anomaly_type is AnomalyType.DDOS:
        return AnomalyType.DOS
    return anomaly_type


def classification_confusion(
    classifications: Sequence[ClassificationResult],
    match_report: MatchReport,
) -> Dict[Tuple[AnomalyType, AnomalyType], int]:
    """Confusion counts (true type, predicted type) over matched events.

    Events matching no ground truth are counted against the special
    ``FALSE_ALARM`` "true" label; events matching several injected
    anomalies are scored against the one with the largest bin overlap.
    """
    require(len(classifications) == match_report.n_events,
            "one classification per detected event is required")
    anomalies_by_id = {a.anomaly_id: a for a in match_report.ground_truth}
    confusion: Dict[Tuple[AnomalyType, AnomalyType], int] = {}
    for event_index, classification in enumerate(classifications):
        matches = [m for m in match_report.matches if m.event_index == event_index]
        if matches:
            best = max(matches, key=lambda m: m.overlap_bins)
            truth = _truth_label(anomalies_by_id[best.anomaly_id].anomaly_type)
        else:
            truth = AnomalyType.FALSE_ALARM
        predicted = _truth_label(classification.anomaly_type)
        key = (truth, predicted)
        confusion[key] = confusion.get(key, 0) + 1
    return confusion


def classification_accuracy(
    confusion: Mapping[Tuple[AnomalyType, AnomalyType], int],
    include_false_alarms: bool = False,
) -> float:
    """Fraction of events whose predicted type matches the true type."""
    total = 0
    correct = 0
    for (truth, predicted), count in confusion.items():
        if truth is AnomalyType.FALSE_ALARM and not include_false_alarms:
            continue
        total += count
        if truth == predicted:
            correct += count
    return correct / total if total else 0.0
