"""Plain-text rendering of tables and histograms.

The benchmark harness prints the reproduced tables and figures in the same
row/column layout the paper uses, so a reader can compare shapes directly.
Everything is fixed-width text — no plotting dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.validation import require

__all__ = ["format_table", "format_histogram", "format_series_summary"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3g}",
) -> str:
    """Render a fixed-width text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Table rows; cells may be strings or numbers.
    title:
        Optional title printed above the table.
    float_format:
        Format applied to float cells.
    """
    require(len(headers) >= 1, "at least one column is required")

    def _render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        require(len(row) == len(headers), "every row must match the header width")

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(_format_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(_format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_histogram(
    values: Sequence[float],
    bin_edges: Sequence[float],
    title: str = "",
    max_bar_width: int = 40,
    label_format: str = "{:g}",
) -> str:
    """Render an ASCII histogram (used for Figure 2).

    Parameters
    ----------
    values:
        The observations to histogram.
    bin_edges:
        Monotonic bin edges (length ``n_bins + 1``).
    title:
        Optional title.
    max_bar_width:
        Width in characters of the largest bar.
    label_format:
        Format applied to the bin-edge labels.
    """
    require(len(bin_edges) >= 2, "at least two bin edges are required")
    counts, edges = np.histogram(list(values), bins=np.asarray(bin_edges, dtype=float))
    peak = counts.max() if counts.size and counts.max() > 0 else 1

    lines: List[str] = []
    if title:
        lines.append(title)
    for index, count in enumerate(counts):
        low = label_format.format(edges[index])
        high = label_format.format(edges[index + 1])
        bar = "#" * int(round(count / peak * max_bar_width))
        lines.append(f"[{low:>8} - {high:>8}) {count:>5d} {bar}")
    return "\n".join(lines)


def format_series_summary(
    name: str,
    values: np.ndarray,
    threshold: Optional[float] = None,
) -> str:
    """One-line summary of a detection-statistic timeseries (Figure 1 rows)."""
    values = np.asarray(values, dtype=float)
    require(values.size > 0, "values must be non-empty")
    parts = [
        f"{name}:",
        f"min={values.min():.3g}",
        f"median={np.median(values):.3g}",
        f"max={values.max():.3g}",
    ]
    if threshold is not None:
        exceed = int(np.sum(values > threshold))
        parts.append(f"threshold={threshold:.3g}")
        parts.append(f"bins_above={exceed}")
    return " ".join(parts)
