"""Streaming-vs-batch parity accounting.

The streaming subsystem guarantees that a full-window replay reproduces the
batch diagnosis; this module measures how true that is for any pair of
event lists (exact for the two-pass replay harness, approximate for live
single-pass runs with forgetting), giving tests, benchmarks, and operators
one shared report format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.events import AnomalyEvent

__all__ = ["EventParityReport", "event_parity", "report_parity"]


def _event_key(event: AnomalyEvent) -> Tuple:
    return (event.start_bin, event.end_bin, event.traffic_label,
            event.bins, event.od_flows, event.statistics)


@dataclass(frozen=True)
class EventParityReport:
    """How closely a streaming event list matches its batch reference.

    ``exact`` requires identical events in identical order; ``matched``
    counts events identical field-for-field regardless of order; spans
    count events whose (start, end, label) triple matches even if the
    OD-flow sets differ (the typical live-mode deviation).
    """

    n_batch: int
    n_streaming: int
    n_matched: int
    n_span_matched: int
    exact: bool
    missing: Tuple[AnomalyEvent, ...]
    extra: Tuple[AnomalyEvent, ...]

    @property
    def recall(self) -> float:
        """Fraction of batch events matched exactly by the stream."""
        return self.n_matched / self.n_batch if self.n_batch else 1.0

    @property
    def span_recall(self) -> float:
        """Fraction of batch events whose span+label the stream recovered."""
        return self.n_span_matched / self.n_batch if self.n_batch else 1.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (benchmark artifacts, CI reports).

        Mismatching events are included in full so a failed parity gate is
        diagnosable from the artifact alone.
        """
        return {
            "n_batch": self.n_batch,
            "n_streaming": self.n_streaming,
            "n_matched": self.n_matched,
            "n_span_matched": self.n_span_matched,
            "exact": self.exact,
            "recall": self.recall,
            "span_recall": self.span_recall,
            "missing": [event.to_dict() for event in self.missing],
            "extra": [event.to_dict() for event in self.extra],
        }


def event_parity(
    batch_events: Sequence[AnomalyEvent],
    streaming_events: Sequence[AnomalyEvent],
) -> EventParityReport:
    """Compare a streaming event list against its batch reference."""
    batch_keys = {_event_key(e) for e in batch_events}
    stream_keys = {_event_key(e) for e in streaming_events}
    matched = batch_keys & stream_keys

    batch_spans = {(e.start_bin, e.end_bin, e.traffic_label) for e in batch_events}
    stream_spans = {(e.start_bin, e.end_bin, e.traffic_label)
                    for e in streaming_events}
    span_matched = batch_spans & stream_spans

    missing = tuple(e for e in batch_events if _event_key(e) not in stream_keys)
    extra = tuple(e for e in streaming_events if _event_key(e) not in batch_keys)
    return EventParityReport(
        n_batch=len(batch_events),
        n_streaming=len(streaming_events),
        n_matched=len(matched),
        n_span_matched=len(span_matched),
        exact=list(batch_events) == list(streaming_events),
        missing=missing,
        extra=extra,
    )


def report_parity(reference, candidate) -> Dict[str, object]:
    """Full-report parity between two streaming runs (restart/shard vs base).

    Compares any two objects with the
    :class:`~repro.streaming.pipeline.StreamingReport` shape: the fused
    event lists (via :func:`event_parity`), the raw per-type detection
    lists, and the bin/chunk counters.  A sharded, parallel, or
    checkpoint-restored run passes iff every entry under ``"equal"`` is
    true.
    """
    events = event_parity(reference.events, candidate.events)
    detections_equal = {
        traffic_type.value:
            candidate.detections.get(traffic_type) == per_type
        for traffic_type, per_type in reference.detections.items()
    }
    return {
        "events": events.to_dict(),
        "equal": {
            "events": events.exact,
            "detections": (set(reference.detections) == set(candidate.detections)
                           and all(detections_equal.values())),
            "n_bins_processed": (reference.n_bins_processed
                                 == candidate.n_bins_processed),
            "n_warmup_bins": reference.n_warmup_bins == candidate.n_warmup_bins,
        },
        "detections_equal_by_type": detections_equal,
    }
