"""Seeded, deterministic fault injection for the distributed runtime.

The fault-tolerance claims of this repo are *parity* claims — a run that
loses a worker, a checkpoint generation, or a whole ingestion leaf must
end with the same event table as an undisturbed run.  Claims like that
are only testable if the faults themselves are reproducible, so every
primitive here is deterministic under a fixed seed and driven from the
coordinator's chunk clock instead of wall-clock timers:

* :class:`~repro.faults.plan.FaultPlan` — a scripted schedule of
  injections (kill worker *w* at chunk *k*, stall the feed for *s*
  seconds) exposed as the ``fault_hook`` callable that
  :func:`~repro.streaming.parallel.parallel_stream_detect` and
  :class:`~repro.streaming.parallel.WorkerSupervisor` accept.  Each
  injection fires exactly once, including across supervised restarts.
* :func:`~repro.faults.corrupt.corrupt_checkpoint` — torn-write and
  bit-rot simulation against a checkpoint directory: truncate or
  seeded-bit-flip the newest generation, so the fallback chain in
  :mod:`repro.streaming.checkpoint` has something real to recover from.
* :class:`~repro.faults.sinks.FailingSink` — an alert sink that always
  raises, exercising the dispatcher's retry/dead-letter path.

``tests/test_chaos.py`` drives these against the full stack; the CI
``chaos`` job runs them with fixed seeds on every push.
"""

from repro.faults.corrupt import corrupt_checkpoint
from repro.faults.plan import FaultInjection, FaultPlan
from repro.faults.sinks import FailingSink

__all__ = ["FaultPlan", "FaultInjection", "corrupt_checkpoint",
           "FailingSink"]
