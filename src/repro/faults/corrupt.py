"""Torn-write and bit-rot simulation against checkpoint directories.

:func:`corrupt_checkpoint` damages the **newest** checkpoint generation
the way real storage does — a truncated file from a crash mid-write, or
flipped bits from silent corruption — so tests can assert that
``load_checkpoint(..., fallback=True)`` walks back to the previous
verified generation and quarantines (never deletes) the damaged files.
Deterministic under a fixed seed: the same seed flips the same bits.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import List, Union

from repro.streaming.checkpoint import MANIFEST_FILENAME
from repro.utils.validation import require

__all__ = ["corrupt_checkpoint"]


def _newest_arrays_file(path: Path) -> Path:
    """The arrays file referenced by the current manifest."""
    manifest_path = path / MANIFEST_FILENAME
    require(manifest_path.exists(),
            f"no checkpoint manifest in {path} to corrupt")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    arrays_path = path / str(manifest.get("arrays_file"))
    require(arrays_path.exists(),
            f"checkpoint arrays file {arrays_path} missing")
    return arrays_path


def corrupt_checkpoint(directory: Union[str, Path],
                       mode: str = "truncate",
                       seed: int = 0,
                       n_bits: int = 16,
                       target: str = "arrays") -> List[str]:
    """Damage the newest checkpoint generation; return the victim paths.

    Parameters
    ----------
    directory:
        The checkpoint directory (as passed to ``save_checkpoint``).
    mode:
        ``"truncate"`` cuts the victim to half its length (torn write);
        ``"bitflip"`` flips *n_bits* seeded-random bits in place (bit
        rot).  Both leave the file present but failing verification.
    seed:
        RNG seed of the bit-flip positions — same seed, same damage.
    n_bits:
        How many bits ``"bitflip"`` flips.
    target:
        ``"arrays"`` (default) damages the npz payload the manifest's
        digest covers; ``"manifest"`` damages ``manifest.json`` itself —
        the torn-top-level-write case.
    """
    require(mode in ("truncate", "bitflip"),
            "mode must be 'truncate' or 'bitflip'")
    require(target in ("arrays", "manifest"),
            "target must be 'arrays' or 'manifest'")
    require(n_bits >= 1, "n_bits must be >= 1")
    path = Path(directory)
    victim = (path / MANIFEST_FILENAME if target == "manifest"
              else _newest_arrays_file(path))
    payload = victim.read_bytes()
    require(len(payload) >= 2, f"{victim} too small to corrupt")
    if mode == "truncate":
        damaged = payload[:len(payload) // 2]
    else:
        rng = random.Random(seed)
        mutable = bytearray(payload)
        for position in rng.sample(range(len(mutable) * 8),
                                   min(n_bits, len(mutable) * 8)):
            mutable[position // 8] ^= 1 << (position % 8)
        damaged = bytes(mutable)
    victim.write_bytes(damaged)
    return [str(victim)]
