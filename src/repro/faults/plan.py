"""Scripted fault schedules on the coordinator's chunk clock.

A :class:`FaultPlan` is a list of :class:`FaultInjection`\\ s keyed by
global chunk index.  The plan compiles to the two-argument
``fault_hook(chunk_index, pool)`` that the multi-process drivers call
immediately before feeding each chunk, so an injection lands at a
deterministic stream position regardless of scheduling noise.  Each
injection fires exactly once — the plan remembers what it already did,
which is what keeps a :class:`~repro.streaming.parallel.WorkerSupervisor`
restart (same plan object, replayed chunk indices) from re-killing the
worker it just resurrected.
"""

from __future__ import annotations

import random
import time as time_module
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.utils.validation import require

__all__ = ["FaultInjection", "FaultPlan"]

#: Injection kinds understood by :meth:`FaultPlan.hook`.
KIND_KILL_WORKER = "kill_worker"
KIND_STALL = "stall"


@dataclass(frozen=True)
class FaultInjection:
    """One scheduled fault: *kind* at global chunk *at_chunk*."""

    kind: str
    at_chunk: int
    worker: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        require(self.kind in (KIND_KILL_WORKER, KIND_STALL),
                f"unknown fault kind {self.kind!r}")
        require(self.at_chunk >= 0, "at_chunk must be >= 0")
        require(self.worker >= 0, "worker must be >= 0")
        require(self.seconds >= 0.0, "seconds must be >= 0")


@dataclass
class FaultPlan:
    """A deterministic, replay-safe schedule of runtime faults.

    Build one with the fluent helpers and hand :attr:`hook` to a driver::

        plan = FaultPlan().kill_worker(at_chunk=8, worker=0)
        supervisor = WorkerSupervisor(..., fault_hook=plan.hook)

    ``sleep`` is injectable so stall faults are testable without
    wall-clock waits.
    """

    injections: List[FaultInjection] = field(default_factory=list)
    sleep: Callable[[float], None] = time_module.sleep

    def __post_init__(self) -> None:
        self._fired: set = set()

    # ------------------------------------------------------------------ #
    # builders
    # ------------------------------------------------------------------ #
    def kill_worker(self, at_chunk: int, worker: int = 0) -> "FaultPlan":
        """SIGKILL worker *worker* just before chunk *at_chunk* is fed."""
        self.injections.append(FaultInjection(
            kind=KIND_KILL_WORKER, at_chunk=int(at_chunk),
            worker=int(worker)))
        return self

    def stall(self, at_chunk: int, seconds: float) -> "FaultPlan":
        """Block the coordinator's feed loop for *seconds* at *at_chunk*.

        Models a writer stall on the shared-memory bus: downstream
        readers drain the ring and then wait, which is exactly the
        backpressure path the bus is supposed to survive.
        """
        self.injections.append(FaultInjection(
            kind=KIND_STALL, at_chunk=int(at_chunk),
            seconds=float(seconds)))
        return self

    @classmethod
    def random_kills(cls, seed: int, n_chunks: int, n_workers: int,
                     n_kills: int = 1,
                     first_chunk: int = 1) -> "FaultPlan":
        """A seeded plan of *n_kills* worker kills at random positions.

        Same seed, same schedule — chaos sweeps stay reproducible.  Kill
        chunks are drawn without replacement from
        ``[first_chunk, n_chunks)``.
        """
        require(n_chunks > first_chunk,
                "need at least one chunk after first_chunk")
        require(n_workers >= 1, "n_workers must be >= 1")
        rng = random.Random(seed)
        span = range(int(first_chunk), int(n_chunks))
        n_kills = min(int(n_kills), len(span))
        plan = cls()
        for at_chunk in sorted(rng.sample(list(span), n_kills)):
            plan.kill_worker(at_chunk=at_chunk,
                             worker=rng.randrange(n_workers))
        return plan

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    @property
    def fired(self) -> int:
        """How many injections have fired so far."""
        return len(self._fired)

    def pending(self) -> List[FaultInjection]:
        """Injections that have not fired yet, in schedule order."""
        return [injection for index, injection in enumerate(self.injections)
                if index not in self._fired]

    def hook(self, chunk_index: int, pool) -> None:
        """The ``fault_hook`` callable: fire everything due at this chunk.

        *pool* is the driver's worker pool (``pool.processes`` holds the
        live :class:`multiprocessing.Process` objects).  Injections whose
        chunk has passed also fire — a restart that resumes past the
        scheduled chunk must not silently skip the fault.
        """
        for index, injection in enumerate(self.injections):
            if index in self._fired or chunk_index < injection.at_chunk:
                continue
            self._fired.add(index)
            if injection.kind == KIND_KILL_WORKER:
                processes = getattr(pool, "processes", [])
                if injection.worker < len(processes):
                    victim = processes[injection.worker]
                    victim.kill()
                    victim.join()
            elif injection.kind == KIND_STALL:
                self.sleep(injection.seconds)

    def reset(self) -> None:
        """Forget what fired — reuse the same schedule for a fresh run."""
        self._fired.clear()

    def describe(self) -> List[str]:
        """Human-readable schedule (for logs and the chaos example)."""
        lines = []
        for injection in self.injections:
            if injection.kind == KIND_KILL_WORKER:
                lines.append(f"chunk {injection.at_chunk}: kill worker "
                             f"{injection.worker}")
            else:
                lines.append(f"chunk {injection.at_chunk}: stall feed "
                             f"{injection.seconds:.3f}s")
        return lines
