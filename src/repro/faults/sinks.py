"""Always-failing alert sink: the chaos probe for the delivery policy.

:class:`FailingSink` raises on every ``emit``, optionally after
recording the payload, so tests can drive the dispatcher's full
retry → backoff → dead-letter path and assert that a run whose alert
channel is down still completes with its event store intact.
"""

from __future__ import annotations

from typing import Dict, List

from repro.service.sinks import AlertSink

__all__ = ["FailingSink"]


class FailingSink(AlertSink):
    """An alert sink whose delivery always fails (retryably)."""

    name = "failing"

    def __init__(self, error_message: str = "injected sink failure") -> None:
        self.error_message = str(error_message)
        #: Payloads the dispatcher attempted (one per attempt, in order).
        self.attempted: List[Dict[str, object]] = []

    def emit(self, payload: Dict[str, object]) -> None:
        self.attempted.append(payload)
        raise ConnectionError(self.error_message)
