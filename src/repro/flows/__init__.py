"""Flow-measurement substrate.

Contains the data structures and transformations of the measurement pipeline:

* :mod:`repro.flows.records` — 5-tuple IP flow records (sampled NetFlow
  style) and packet-level records;
* :mod:`repro.flows.sampling` — the 1%-packet sampling and one-minute flow
  export simulator;
* :mod:`repro.flows.timeseries` — :class:`TrafficMatrixSeries`, the
  ``n x p`` multivariate OD-flow timeseries of bytes, packets, and IP-flow
  counts that the subspace method consumes;
* :mod:`repro.flows.aggregation` — aggregation of resolved flow records into
  a :class:`TrafficMatrixSeries`;
* :mod:`repro.flows.composition` — lazily synthesized per-bin 5-tuple
  composition used by the anomaly classifier.
"""

from repro.flows.records import FiveTuple, FlowRecord, PacketRecord, TCP, UDP, ICMP
from repro.flows.sampling import PacketSampler, SamplingConfig, sample_flow_records
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.flows.aggregation import FlowAggregator, aggregate_records
from repro.flows.composition import BinComposition, FlowCompositionModel

__all__ = [
    "FiveTuple",
    "FlowRecord",
    "PacketRecord",
    "TCP",
    "UDP",
    "ICMP",
    "PacketSampler",
    "SamplingConfig",
    "sample_flow_records",
    "TrafficMatrixSeries",
    "TrafficType",
    "FlowAggregator",
    "aggregate_records",
    "BinComposition",
    "FlowCompositionModel",
]
