"""Aggregation of resolved flow records into OD-flow timeseries.

This is the final data-reduction step of the paper's pipeline: flow records
annotated with their ingress/egress PoPs are summed per OD pair per 5-minute
bin into the three matrices (# bytes, # packets, # IP-flows) that the
subspace method consumes.  Records that span bin boundaries contribute to
the bin containing their start time (flow export intervals are one minute,
so a record never spans more than one 5-minute bin boundary by much; the
paper bins the same way).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.flows.records import FlowRecord
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.utils.timebins import TimeBinning

__all__ = ["FlowAggregator", "aggregate_records"]


class FlowAggregator:
    """Incremental aggregator of resolved flow records into a traffic matrix.

    Parameters
    ----------
    od_pairs:
        Column ordering of the output matrices.
    binning:
        Time binning of the output (paper: 5-minute bins).
    strict:
        When ``True``, records whose OD pair is not in *od_pairs* or whose
        start time falls outside the binning raise ``ValueError``; when
        ``False`` (default) they are silently counted as dropped — matching
        the paper's treatment of unresolvable traffic.
    """

    def __init__(self, od_pairs: Sequence[Tuple[str, str]], binning: TimeBinning,
                 strict: bool = False) -> None:
        self._series = TrafficMatrixSeries.zeros(od_pairs, binning)
        self._index: Dict[Tuple[str, str], int] = {
            pair: i for i, pair in enumerate(self._series.od_pairs)
        }
        self._binning = binning
        self._strict = strict
        self._dropped = 0
        self._added = 0

    @property
    def dropped_records(self) -> int:
        """Number of records dropped (unknown OD pair or out-of-range time)."""
        return self._dropped

    @property
    def added_records(self) -> int:
        """Number of records aggregated so far."""
        return self._added

    def add(self, record: FlowRecord) -> bool:
        """Aggregate one resolved record; returns whether it was counted."""
        od = record.od_pair
        if od is None or od not in self._index:
            if self._strict:
                raise ValueError(f"record OD pair {od!r} not in the aggregation universe")
            self._dropped += 1
            return False
        try:
            bin_index = self._binning.bin_of(record.start_time)
        except ValueError:
            if self._strict:
                raise
            self._dropped += 1
            return False
        column = self._index[od]
        self._series.matrix(TrafficType.BYTES)[bin_index, column] += record.bytes
        self._series.matrix(TrafficType.PACKETS)[bin_index, column] += record.packets
        self._series.matrix(TrafficType.FLOWS)[bin_index, column] += 1.0
        self._added += 1
        return True

    def add_many(self, records: Iterable[FlowRecord]) -> int:
        """Aggregate many records; returns the number counted."""
        return sum(1 for record in records if self.add(record))

    def result(self) -> TrafficMatrixSeries:
        """The aggregated traffic-matrix series (a live reference)."""
        return self._series


def aggregate_records(
    records: Iterable[FlowRecord],
    od_pairs: Sequence[Tuple[str, str]],
    binning: TimeBinning,
    strict: bool = False,
) -> TrafficMatrixSeries:
    """One-shot aggregation of resolved flow records into a traffic matrix."""
    aggregator = FlowAggregator(od_pairs, binning, strict=strict)
    aggregator.add_many(records)
    return aggregator.result()
