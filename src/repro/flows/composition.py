"""Per-bin 5-tuple composition of OD-flow traffic.

The subspace method only needs OD-level counts, but *classifying* a detected
anomaly requires looking at the raw flows inside the anomalous bins: which
source/destination address ranges and ports dominate (the paper's p = 0.2
dominance heuristic).

Simulating every background IP flow of a multi-week trace would be wasteful,
so the composition is synthesized lazily: :class:`FlowCompositionModel`
produces, for any (OD pair, bin), a :class:`BinComposition` whose totals
match the traffic matrix, consisting of

* a *background* mixture of flows drawn from the customer prefixes of the
  origin/destination PoPs and a realistic application-port profile, plus
* any *injected* flow groups registered by the anomaly injectors for that
  (OD pair, bin) — e.g. the DOS attack's packet storm toward a single
  destination address.

Because injected groups are registered with their exact byte/packet/flow
volumes, dominance analysis on the synthesized composition sees precisely
the signal the corresponding real anomaly would produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.flows.records import TCP, UDP
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.routing.prefixes import Prefix, random_address_in_prefix
from repro.topology.network import Network
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.validation import ensure_probability, require

__all__ = ["FlowGroup", "BinComposition", "FlowCompositionModel",
           "DEFAULT_APPLICATION_PORTS"]

#: Default application mixture for background traffic: (dst port, protocol,
#: relative weight).  Web leads, with mail, ssh, dns, ftp, news, file sharing
#: and a generic "ephemeral/other" bucket (dst port 0 stands for "random high
#: port").  No single port exceeds the paper's 0.2 dominance threshold, so
#: ordinary background cells exhibit no dominant port — dominance is a
#: property of anomalies, as in the paper.
DEFAULT_APPLICATION_PORTS: Tuple[Tuple[int, int, float], ...] = (
    (80, TCP, 0.18),
    (443, TCP, 0.12),
    (25, TCP, 0.07),
    (22, TCP, 0.06),
    (53, UDP, 0.07),
    (21, TCP, 0.04),
    (119, TCP, 0.03),
    (554, TCP, 0.04),
    (1412, TCP, 0.10),   # file sharing (kazaa/morpheus), as noted in the paper
    (6346, TCP, 0.05),   # gnutella
    (0, TCP, 0.24),      # ephemeral / other
)


@dataclass(frozen=True)
class FlowGroup:
    """A group of IP flows sharing (or summarized by) common attributes.

    This is the unit of dominance analysis: a group may describe a single
    heavy flow (an ALPHA transfer), a set of flows from many sources to one
    destination (a DDOS), or a slice of background traffic.

    ``src_address``/``dst_address`` are representative addresses; ``spread``
    attributes indicate how many distinct values the group actually spans
    (1 = a single address/port, large = many).
    """

    src_address: int
    dst_address: int
    src_port: int
    dst_port: int
    protocol: int
    bytes: float
    packets: float
    flows: float
    n_src_addresses: int = 1
    n_dst_addresses: int = 1
    n_src_ports: int = 1
    n_dst_ports: int = 1
    label: str = "background"

    def __post_init__(self) -> None:
        require(self.bytes >= 0 and self.packets >= 0 and self.flows >= 0,
                "volumes must be non-negative")
        require(self.n_src_addresses >= 1 and self.n_dst_addresses >= 1,
                "address spreads must be >= 1")
        require(self.n_src_ports >= 1 and self.n_dst_ports >= 1,
                "port spreads must be >= 1")

    def volume(self, traffic_type: TrafficType) -> float:
        """The group's volume in the given traffic type."""
        return {TrafficType.BYTES: self.bytes,
                TrafficType.PACKETS: self.packets,
                TrafficType.FLOWS: self.flows}[TrafficType(traffic_type)]


class BinComposition:
    """The flow composition of one (OD pair, timebin) cell.

    Provides the dominance queries the paper's classification heuristics
    need: whether a single source address range, destination address range,
    source port, or destination port accounts for more than a fraction
    ``p`` of the cell's traffic (for any chosen traffic type).
    """

    #: Address-range granularity for "address range" dominance (a /24).
    RANGE_PREFIX_LENGTH = 24

    def __init__(self, od_pair: Tuple[str, str], bin_index: int,
                 groups: Sequence[FlowGroup]) -> None:
        self.od_pair = tuple(od_pair)
        self.bin_index = int(bin_index)
        self.groups: List[FlowGroup] = list(groups)

    # ------------------------------------------------------------------ #
    # totals
    # ------------------------------------------------------------------ #
    def total(self, traffic_type: TrafficType) -> float:
        """Total volume of the cell in *traffic_type*."""
        return float(sum(g.volume(traffic_type) for g in self.groups))

    # ------------------------------------------------------------------ #
    # dominance analysis
    # ------------------------------------------------------------------ #
    def _aggregate(self, key_fn, traffic_type: TrafficType,
                   spread_fn=None) -> Dict:
        totals: Dict = {}
        for group in self.groups:
            volume = group.volume(traffic_type)
            if volume <= 0:
                continue
            # Groups spanning many distinct values of the keyed attribute do
            # not concentrate volume on any single value: spread their volume
            # across that many values so dominance is computed fairly.
            spread = spread_fn(group) if spread_fn is not None else 1
            key = key_fn(group)
            totals[key] = totals.get(key, 0.0) + volume / max(spread, 1)
        return totals

    def dominant_value(self, attribute: str, traffic_type: TrafficType,
                       threshold: float = 0.2) -> Optional[int]:
        """Return the dominant value of *attribute*, or ``None``.

        *attribute* is one of ``"src_range"``, ``"dst_range"``,
        ``"src_port"``, ``"dst_port"``.  A value is dominant when it carries
        more than *threshold* of the cell's total volume in *traffic_type*
        (paper: threshold 0.2).
        """
        ensure_probability(threshold, "threshold")
        total = self.total(traffic_type)
        if total <= 0:
            return None
        shift = 32 - self.RANGE_PREFIX_LENGTH
        key_fns = {
            "src_range": (lambda g: g.src_address >> shift, lambda g: g.n_src_addresses),
            "dst_range": (lambda g: g.dst_address >> shift, lambda g: g.n_dst_addresses),
            "src_port": (lambda g: g.src_port, lambda g: g.n_src_ports),
            "dst_port": (lambda g: g.dst_port, lambda g: g.n_dst_ports),
        }
        if attribute not in key_fns:
            raise ValueError(f"unknown attribute {attribute!r}")
        key_fn, spread_fn = key_fns[attribute]
        totals = self._aggregate(key_fn, traffic_type, spread_fn)
        if not totals:
            return None
        best_key, best_volume = max(totals.items(), key=lambda kv: kv[1])
        if best_volume / total > threshold:
            if attribute.endswith("range"):
                return int(best_key) << shift
            return int(best_key)
        return None

    def has_dominant(self, attribute: str, traffic_type: TrafficType,
                     threshold: float = 0.2) -> bool:
        """Whether any value of *attribute* is dominant."""
        return self.dominant_value(attribute, traffic_type, threshold) is not None

    def dominant_summary(self, traffic_type: TrafficType,
                         threshold: float = 0.2) -> Dict[str, Optional[int]]:
        """Dominant value (or ``None``) for all four attributes."""
        return {
            attribute: self.dominant_value(attribute, traffic_type, threshold)
            for attribute in ("src_range", "dst_range", "src_port", "dst_port")
        }

    def labels(self) -> List[str]:
        """Distinct group labels present in the cell (diagnostics)."""
        return sorted({g.label for g in self.groups})

    def merge(self, other: "BinComposition") -> "BinComposition":
        """Concatenate two compositions of the same cell."""
        require(self.od_pair == other.od_pair and self.bin_index == other.bin_index,
                "can only merge compositions of the same cell")
        return BinComposition(self.od_pair, self.bin_index, self.groups + other.groups)


class FlowCompositionModel:
    """Lazily synthesizes the per-bin flow composition of a dataset.

    Parameters
    ----------
    network:
        The backbone network (provides customer prefixes per PoP).
    application_ports:
        The background application-port mixture.
    n_background_groups:
        Number of background flow groups synthesized per cell.
    seed:
        Randomness source; compositions are deterministic per
        (OD pair, bin) for a fixed seed.
    """

    def __init__(
        self,
        network: Network,
        application_ports: Sequence[Tuple[int, int, float]] = DEFAULT_APPLICATION_PORTS,
        n_background_groups: int = 24,
        seed: RandomState = None,
    ) -> None:
        require(n_background_groups >= 1, "n_background_groups must be >= 1")
        self._network = network
        self._ports = list(application_ports)
        port_weights = np.array([w for _, _, w in self._ports], dtype=float)
        require(np.all(port_weights > 0), "port weights must be positive")
        self._port_probabilities = port_weights / port_weights.sum()
        self._n_background_groups = n_background_groups
        self._base_seed = spawn_rng(seed, stream="composition").integers(0, 2**31)
        self._injected: Dict[Tuple[Tuple[str, str], int], List[FlowGroup]] = {}
        self._pop_prefixes: Dict[str, List[Prefix]] = {}
        for pop in network.pop_names:
            prefixes = [Prefix.parse(p) for c in network.customers_at(pop)
                        for p in c.prefixes]
            if not prefixes:
                # PoPs without explicit customers still need some address
                # space for background traffic.
                index = network.pop_names.index(pop)
                prefixes = [Prefix.parse(f"172.{16 + index}.0.0/16")]
            self._pop_prefixes[pop] = prefixes

    # ------------------------------------------------------------------ #
    # injection interface (used by anomaly injectors)
    # ------------------------------------------------------------------ #
    def register_injected_groups(self, od_pair: Tuple[str, str], bin_index: int,
                                 groups: Iterable[FlowGroup]) -> None:
        """Attach injected flow groups to a (OD pair, bin) cell."""
        key = (tuple(od_pair), int(bin_index))
        self._injected.setdefault(key, []).extend(groups)

    def injected_groups(self, od_pair: Tuple[str, str], bin_index: int) -> List[FlowGroup]:
        """Injected groups registered for a cell (empty list if none)."""
        return list(self._injected.get((tuple(od_pair), int(bin_index)), []))

    def injected_cells(self) -> List[Tuple[Tuple[str, str], int]]:
        """All cells that carry injected groups."""
        return list(self._injected.keys())

    # ------------------------------------------------------------------ #
    # composition synthesis
    # ------------------------------------------------------------------ #
    def composition(self, series: TrafficMatrixSeries, od_pair: Tuple[str, str],
                    bin_index: int,
                    injected_bin_index: Optional[int] = None) -> BinComposition:
        """Synthesize the composition of one cell, consistent with *series*.

        The injected groups are included as registered; the remaining volume
        (cell total minus injected) is filled with background groups.

        Parameters
        ----------
        series, od_pair, bin_index:
            The cell to synthesize; *bin_index* indexes into *series*.
        injected_bin_index:
            Bin index under which injected groups were registered, when it
            differs from *bin_index* (e.g. the series is a window of a
            longer dataset).  Defaults to *bin_index*.
        """
        od_pair = tuple(od_pair)
        lookup_bin = bin_index if injected_bin_index is None else injected_bin_index
        injected = self.injected_groups(od_pair, lookup_bin)
        totals = {
            t: float(series.matrix(t)[bin_index, series.od_index(*od_pair)])
            for t in series.traffic_types
        }
        injected_totals = {
            t: sum(g.volume(t) for g in injected) for t in totals
        }
        residual = {
            t: max(totals[t] - injected_totals[t], 0.0) for t in totals
        }
        background = self._background_groups(od_pair, bin_index, residual)
        return BinComposition(od_pair, bin_index, injected + background)

    def _background_groups(self, od_pair: Tuple[str, str], bin_index: int,
                           residual: Mapping[TrafficType, float]) -> List[FlowGroup]:
        if all(v <= 0 for v in residual.values()):
            return []
        origin, destination = od_pair
        rng = self._cell_rng(od_pair, bin_index)
        n_groups = self._n_background_groups
        shares = rng.dirichlet(np.full(n_groups, 1.5))

        src_prefixes = self._pop_prefixes[origin]
        dst_prefixes = self._pop_prefixes[destination]
        byte_total = residual.get(TrafficType.BYTES, 0.0)
        packet_total = residual.get(TrafficType.PACKETS, 0.0)
        flow_total = residual.get(TrafficType.FLOWS, 0.0)

        groups: List[FlowGroup] = []
        for i in range(n_groups):
            share = float(shares[i])
            if share <= 0:
                continue
            port_index = int(rng.choice(len(self._ports), p=self._port_probabilities))
            dst_port, protocol, _weight = self._ports[port_index]
            if dst_port == 0:
                dst_port = int(rng.integers(1024, 65536))
            src_prefix = src_prefixes[int(rng.integers(0, len(src_prefixes)))]
            dst_prefix = dst_prefixes[int(rng.integers(0, len(dst_prefixes)))]
            flows = flow_total * share
            groups.append(FlowGroup(
                src_address=random_address_in_prefix(src_prefix, rng),
                dst_address=random_address_in_prefix(dst_prefix, rng),
                src_port=int(rng.integers(1024, 65536)),
                dst_port=dst_port,
                protocol=protocol,
                bytes=byte_total * share,
                packets=packet_total * share,
                flows=flows,
                n_src_addresses=max(1, int(round(flows))),
                n_dst_addresses=max(1, int(round(flows / 4)) or 1),
                n_src_ports=max(1, int(round(flows))),
                n_dst_ports=1,
                label="background",
            ))
        return groups

    def _cell_rng(self, od_pair: Tuple[str, str], bin_index: int) -> np.random.Generator:
        """Deterministic per-cell RNG so compositions are reproducible."""
        label = f"{od_pair[0]}->{od_pair[1]}@{bin_index}"
        label_hash = 0
        for char in label.encode("utf-8"):
            label_hash = (label_hash * 131 + char) % (2**31)
        return np.random.default_rng(int(self._base_seed) ^ label_hash)
