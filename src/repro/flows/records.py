"""Flow and packet record data structures.

A *flow record* is what Juniper's Traffic Sampling / NetFlow exports: packets
sampled at a router are aggregated per 5-tuple (source/destination address
and port, protocol) over an export interval, carrying the sampled byte and
packet counts.  The paper builds all of its analysis on such records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.routing.prefixes import format_ipv4
from repro.utils.validation import require

__all__ = ["TCP", "UDP", "ICMP", "FiveTuple", "PacketRecord", "FlowRecord"]

#: IANA protocol numbers used throughout the synthetic traffic.
ICMP = 1
TCP = 6
UDP = 17


@dataclass(frozen=True)
class FiveTuple:
    """The classic 5-tuple flow key."""

    src_address: int
    dst_address: int
    src_port: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        require(0 <= self.src_port <= 65535, "src_port out of range")
        require(0 <= self.dst_port <= 65535, "dst_port out of range")
        require(0 <= self.protocol <= 255, "protocol out of range")

    def reversed(self) -> "FiveTuple":
        """The key of the reverse direction of this flow."""
        return FiveTuple(
            src_address=self.dst_address,
            dst_address=self.src_address,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def __str__(self) -> str:
        return (
            f"{format_ipv4(self.src_address)}:{self.src_port} -> "
            f"{format_ipv4(self.dst_address)}:{self.dst_port} proto {self.protocol}"
        )


@dataclass(frozen=True)
class PacketRecord:
    """A single packet observation at a router (pre-sampling)."""

    timestamp: float
    key: FiveTuple
    size_bytes: int
    observing_router: Optional[str] = None

    def __post_init__(self) -> None:
        require(self.size_bytes > 0, "packet size must be positive")


@dataclass(frozen=True)
class FlowRecord:
    """A sampled, exported flow record.

    Parameters
    ----------
    key:
        The 5-tuple flow key.
    start_time, end_time:
        Flow activity window in seconds (within the export interval).
    bytes, packets:
        Sampled byte and packet counts (i.e. the counts *after* packet
        sampling; multiply by the inverse sampling rate to estimate the
        original volume).
    observing_router:
        The router that exported the record (identifies the ingress PoP).
    ingress_pop, egress_pop:
        Filled in by the PoP resolver; ``None`` on raw records.
    """

    key: FiveTuple
    start_time: float
    end_time: float
    bytes: float
    packets: float
    observing_router: Optional[str] = None
    ingress_pop: Optional[str] = None
    egress_pop: Optional[str] = None

    def __post_init__(self) -> None:
        require(self.end_time >= self.start_time, "end_time must be >= start_time")
        require(self.bytes >= 0, "bytes must be non-negative")
        require(self.packets >= 0, "packets must be non-negative")

    # Convenience accessors mirroring the 5-tuple fields ----------------- #
    @property
    def src_address(self) -> int:
        """Source IPv4 address (integer form)."""
        return self.key.src_address

    @property
    def dst_address(self) -> int:
        """Destination IPv4 address (integer form)."""
        return self.key.dst_address

    @property
    def src_port(self) -> int:
        """Source transport port."""
        return self.key.src_port

    @property
    def dst_port(self) -> int:
        """Destination transport port."""
        return self.key.dst_port

    @property
    def protocol(self) -> int:
        """IP protocol number."""
        return self.key.protocol

    @property
    def duration(self) -> float:
        """Flow activity duration in seconds."""
        return self.end_time - self.start_time

    @property
    def od_pair(self) -> Optional[Tuple[str, str]]:
        """The (ingress, egress) PoP pair if resolved, else ``None``."""
        if self.ingress_pop is None or self.egress_pop is None:
            return None
        return self.ingress_pop, self.egress_pop

    def with_od(self, ingress_pop: str, egress_pop: str) -> "FlowRecord":
        """Return a copy annotated with the resolved OD pair."""
        return replace(self, ingress_pop=ingress_pop, egress_pop=egress_pop)

    def scaled(self, inverse_sampling_rate: float) -> "FlowRecord":
        """Return a copy with counts scaled by *inverse_sampling_rate*.

        Used to renormalize sampled counts back to estimated true volumes.
        """
        require(inverse_sampling_rate > 0, "inverse_sampling_rate must be positive")
        return replace(self,
                       bytes=self.bytes * inverse_sampling_rate,
                       packets=self.packets * inverse_sampling_rate)
