"""Packet sampling and flow export simulation.

Abilene's measurement infrastructure samples 1% of packets at every router
(random packet sampling), aggregates sampled packets into 5-tuple flow
records every minute (Juniper Traffic Sampling), and the paper then re-bins
those records into 5-minute intervals.

Two levels of fidelity are provided:

* :class:`PacketSampler` consumes individual :class:`PacketRecord` objects —
  the exact mechanism, used in tests and the pipeline example;
* :func:`sample_flow_records` thins pre-aggregated *true* flow records
  directly using the standard binomial model of random packet sampling
  (each of the flow's packets is kept independently with probability ``q``),
  which is statistically equivalent and fast enough for week-long synthetic
  datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.flows.records import FiveTuple, FlowRecord, PacketRecord
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.validation import ensure_probability, require

__all__ = ["SamplingConfig", "PacketSampler", "sample_flow_records"]


@dataclass(frozen=True)
class SamplingConfig:
    """Configuration of the sampling / export process.

    Parameters
    ----------
    sampling_rate:
        Probability of keeping each packet (paper: 0.01).
    export_interval_seconds:
        Flow-record export interval (paper: 60 s).
    rescale:
        Whether exported counts are multiplied by ``1 / sampling_rate`` to
        estimate the original volumes (the paper works with sampled counts;
        rescaling only changes units, not detectability).
    """

    sampling_rate: float = 0.01
    export_interval_seconds: int = 60
    rescale: bool = False

    def __post_init__(self) -> None:
        ensure_probability(self.sampling_rate, "sampling_rate")
        require(self.export_interval_seconds > 0, "export_interval_seconds must be positive")

    @property
    def inverse_rate(self) -> float:
        """``1 / sampling_rate``."""
        return 1.0 / self.sampling_rate


class PacketSampler:
    """Random packet sampling with per-minute 5-tuple flow export.

    Packets are offered one at a time (:meth:`observe`); each is kept with
    probability ``sampling_rate``.  Kept packets are accumulated per
    (export interval, observing router, 5-tuple) and emitted as
    :class:`FlowRecord` objects by :meth:`export`.
    """

    def __init__(self, config: SamplingConfig = SamplingConfig(),
                 seed: RandomState = None) -> None:
        self._config = config
        self._rng = spawn_rng(seed, stream="packet-sampler")
        # (interval index, router, key) -> [bytes, packets, first_ts, last_ts]
        self._accumulator: Dict[Tuple[int, Optional[str], FiveTuple], List[float]] = {}

    @property
    def config(self) -> SamplingConfig:
        """The sampling configuration."""
        return self._config

    def observe(self, packet: PacketRecord) -> bool:
        """Offer one packet to the sampler; returns whether it was sampled."""
        if self._rng.random() >= self._config.sampling_rate:
            return False
        interval = int(packet.timestamp // self._config.export_interval_seconds)
        key = (interval, packet.observing_router, packet.key)
        entry = self._accumulator.get(key)
        if entry is None:
            self._accumulator[key] = [float(packet.size_bytes), 1.0,
                                      packet.timestamp, packet.timestamp]
        else:
            entry[0] += packet.size_bytes
            entry[1] += 1.0
            entry[2] = min(entry[2], packet.timestamp)
            entry[3] = max(entry[3], packet.timestamp)
        return True

    def observe_many(self, packets: Iterable[PacketRecord]) -> int:
        """Offer many packets; returns the number sampled."""
        return sum(1 for p in packets if self.observe(p))

    def export(self) -> List[FlowRecord]:
        """Flush the accumulator and return the exported flow records."""
        records: List[FlowRecord] = []
        scale = self._config.inverse_rate if self._config.rescale else 1.0
        for (interval, router, key), (byte_count, packet_count, first, last) in \
                self._accumulator.items():
            records.append(FlowRecord(
                key=key,
                start_time=first,
                end_time=last,
                bytes=byte_count * scale,
                packets=packet_count * scale,
                observing_router=router,
            ))
        self._accumulator.clear()
        records.sort(key=lambda r: (r.start_time, str(r.key)))
        return records


def sample_flow_records(
    true_flows: Iterable[FlowRecord],
    config: SamplingConfig = SamplingConfig(),
    seed: RandomState = None,
) -> List[FlowRecord]:
    """Apply random packet sampling to pre-aggregated *true* flow records.

    For a flow with ``m`` packets and ``b`` bytes, the number of sampled
    packets is ``Binomial(m, q)`` and sampled bytes are assigned
    proportionally (each sampled packet carries the flow's mean packet
    size).  Flows whose sampled packet count is zero disappear — exactly
    the thinning behaviour that makes small flows invisible to sampled
    NetFlow.
    """
    rng = spawn_rng(seed, stream="flow-sampling")
    scale = config.inverse_rate if config.rescale else 1.0
    sampled: List[FlowRecord] = []
    for flow in true_flows:
        packet_count = int(round(flow.packets))
        if packet_count <= 0:
            continue
        kept = int(rng.binomial(packet_count, config.sampling_rate))
        if kept == 0:
            continue
        mean_packet_size = flow.bytes / packet_count if packet_count else 0.0
        sampled.append(FlowRecord(
            key=flow.key,
            start_time=flow.start_time,
            end_time=flow.end_time,
            bytes=kept * mean_packet_size * scale,
            packets=kept * scale,
            observing_router=flow.observing_router,
            ingress_pop=flow.ingress_pop,
            egress_pop=flow.egress_pop,
        ))
    return sampled
