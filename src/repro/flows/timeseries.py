"""The multivariate OD-flow timeseries container.

:class:`TrafficMatrixSeries` holds the three ``n x p`` matrices the paper
analyzes — byte counts, packet counts, and IP-flow counts per OD pair per
5-minute bin — together with the OD-pair labels and the time binning.  It is
the single data structure exchanged between the traffic generator, the
measurement pipeline, the subspace detector, the baselines, and the
evaluation code.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.utils.timebins import TimeBinning
from repro.utils.validation import ensure_2d, require

__all__ = ["TrafficType", "TrafficMatrixSeries"]


class TrafficType(str, enum.Enum):
    """The three OD-flow traffic types analyzed in the paper."""

    BYTES = "bytes"
    PACKETS = "packets"
    FLOWS = "flows"

    @property
    def short_label(self) -> str:
        """The single-letter label used in the paper's tables (B, P, F)."""
        return {"bytes": "B", "packets": "P", "flows": "F"}[self.value]

    @classmethod
    def from_short_label(cls, label: str) -> "TrafficType":
        """Inverse of :attr:`short_label`."""
        mapping = {"B": cls.BYTES, "P": cls.PACKETS, "F": cls.FLOWS}
        try:
            return mapping[label.upper()]
        except KeyError:
            raise ValueError(f"unknown traffic-type label {label!r}") from None

    @classmethod
    def all(cls) -> Tuple["TrafficType", ...]:
        """All three traffic types, in the paper's (B, P, F) order."""
        return (cls.BYTES, cls.PACKETS, cls.FLOWS)


class TrafficMatrixSeries:
    """Timeseries of OD-flow traffic for the three traffic types.

    Parameters
    ----------
    od_pairs:
        The ``p`` OD-pair labels ``(origin, destination)`` giving the column
        ordering of all matrices.
    binning:
        The time binning shared by all matrices (``n`` bins).
    matrices:
        Mapping from :class:`TrafficType` to an ``n x p`` non-negative array.
        At least one traffic type must be present.
    """

    def __init__(
        self,
        od_pairs: Sequence[Tuple[str, str]],
        binning: TimeBinning,
        matrices: Mapping[TrafficType, np.ndarray],
    ) -> None:
        require(len(od_pairs) >= 1, "od_pairs must be non-empty")
        require(len(matrices) >= 1, "at least one traffic type is required")
        self._od_pairs: List[Tuple[str, str]] = [tuple(pair) for pair in od_pairs]
        if len(set(self._od_pairs)) != len(self._od_pairs):
            raise ValueError("od_pairs contains duplicates")
        self._binning = binning
        self._index: Dict[Tuple[str, str], int] = {
            pair: i for i, pair in enumerate(self._od_pairs)
        }
        self._matrices: Dict[TrafficType, np.ndarray] = {}
        for traffic_type, matrix in matrices.items():
            array = ensure_2d(matrix, f"matrix[{traffic_type.value}]")
            if array.shape != (binning.n_bins, len(self._od_pairs)):
                raise ValueError(
                    f"matrix[{traffic_type.value}] has shape {array.shape}, "
                    f"expected {(binning.n_bins, len(self._od_pairs))}"
                )
            if np.any(array < 0):
                raise ValueError(f"matrix[{traffic_type.value}] must be non-negative")
            self._matrices[TrafficType(traffic_type)] = array

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, od_pairs: Sequence[Tuple[str, str]], binning: TimeBinning,
              traffic_types: Iterable[TrafficType] = TrafficType.all()) -> "TrafficMatrixSeries":
        """An all-zero series with the given shape (used by aggregators)."""
        matrices = {
            TrafficType(t): np.zeros((binning.n_bins, len(od_pairs)))
            for t in traffic_types
        }
        return cls(od_pairs, binning, matrices)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def od_pairs(self) -> List[Tuple[str, str]]:
        """OD-pair labels in column order."""
        return list(self._od_pairs)

    @property
    def binning(self) -> TimeBinning:
        """The shared time binning."""
        return self._binning

    @property
    def n_bins(self) -> int:
        """Number of timebins ``n``."""
        return self._binning.n_bins

    @property
    def n_od_pairs(self) -> int:
        """Number of OD pairs ``p``."""
        return len(self._od_pairs)

    @property
    def traffic_types(self) -> List[TrafficType]:
        """Traffic types present in this series."""
        return list(self._matrices.keys())

    def matrix(self, traffic_type: TrafficType) -> np.ndarray:
        """The ``n x p`` matrix for *traffic_type* (a live view, not a copy)."""
        try:
            return self._matrices[TrafficType(traffic_type)]
        except KeyError:
            raise KeyError(f"traffic type {traffic_type!r} not present") from None

    def od_index(self, origin: str, destination: str) -> int:
        """Column index of the OD pair ``(origin, destination)``."""
        try:
            return self._index[(origin, destination)]
        except KeyError:
            raise KeyError(f"unknown OD pair ({origin!r}, {destination!r})") from None

    def od_series(self, traffic_type: TrafficType, origin: str,
                  destination: str) -> np.ndarray:
        """The length-``n`` timeseries of a single OD flow."""
        return self.matrix(traffic_type)[:, self.od_index(origin, destination)]

    def total_series(self, traffic_type: TrafficType) -> np.ndarray:
        """Network-wide total traffic per bin (sum over OD pairs)."""
        return self.matrix(traffic_type).sum(axis=1)

    # ------------------------------------------------------------------ #
    # mutation (used by generators, aggregators, and injectors)
    # ------------------------------------------------------------------ #
    def add(self, traffic_type: TrafficType, bin_index: int, origin: str,
            destination: str, amount: float) -> None:
        """Add *amount* to one cell (may be negative but never below zero)."""
        matrix = self.matrix(traffic_type)
        column = self.od_index(origin, destination)
        new_value = matrix[bin_index, column] + amount
        matrix[bin_index, column] = max(new_value, 0.0)

    def add_block(self, traffic_type: TrafficType, bin_indices: Sequence[int],
                  origin: str, destination: str, amounts: Sequence[float]) -> None:
        """Add a vector of *amounts* to consecutive bins of one OD flow."""
        require(len(bin_indices) == len(amounts),
                "bin_indices and amounts must have the same length")
        matrix = self.matrix(traffic_type)
        column = self.od_index(origin, destination)
        for bin_index, amount in zip(bin_indices, amounts):
            matrix[bin_index, column] = max(matrix[bin_index, column] + amount, 0.0)

    def scale_od(self, traffic_type: TrafficType, origin: str, destination: str,
                 bin_indices: Sequence[int], factor: float) -> np.ndarray:
        """Multiply selected bins of one OD flow by *factor*; returns the delta."""
        require(factor >= 0, "factor must be non-negative")
        matrix = self.matrix(traffic_type)
        column = self.od_index(origin, destination)
        indices = np.asarray(bin_indices, dtype=int)
        before = matrix[indices, column].copy()
        matrix[indices, column] = before * factor
        return matrix[indices, column] - before

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def window(self, start_bin: int, end_bin: int) -> "TrafficMatrixSeries":
        """Return a new series restricted to bins ``[start_bin, end_bin)``."""
        require(0 <= start_bin < end_bin <= self.n_bins, "invalid bin window")
        new_binning = TimeBinning(
            n_bins=end_bin - start_bin,
            bin_seconds=self._binning.bin_seconds,
            start_seconds=self._binning.bin_start(start_bin),
        )
        matrices = {
            t: m[start_bin:end_bin, :].copy() for t, m in self._matrices.items()
        }
        return TrafficMatrixSeries(self._od_pairs, new_binning, matrices)

    def select_od_pairs(self, pairs: Sequence[Tuple[str, str]]) -> "TrafficMatrixSeries":
        """Return a new series containing only the given OD pairs."""
        indices = [self.od_index(o, d) for o, d in pairs]
        matrices = {t: m[:, indices].copy() for t, m in self._matrices.items()}
        return TrafficMatrixSeries(list(pairs), self._binning, matrices)

    def copy(self) -> "TrafficMatrixSeries":
        """Deep copy of the series."""
        matrices = {t: m.copy() for t, m in self._matrices.items()}
        return TrafficMatrixSeries(self._od_pairs, self._binning, matrices)

    def iter_chunks(
        self, chunk_size: int,
    ) -> Iterator[Tuple[int, Dict[TrafficType, np.ndarray]]]:
        """Iterate over consecutive row-chunks of all matrices.

        Yields ``(start_bin, {traffic_type: chunk})`` where each chunk is a
        *view* of ``chunk_size`` rows (the final chunk may be shorter) — no
        data is copied, so this is the zero-cost adapter feeding the
        streaming subsystem.  Callers must not mutate the views.
        """
        require(chunk_size >= 1, "chunk_size must be >= 1")
        for start in range(0, self.n_bins, chunk_size):
            stop = min(start + chunk_size, self.n_bins)
            yield start, {
                traffic_type: matrix[start:stop, :]
                for traffic_type, matrix in self._matrices.items()
            }

    def rebin(self, coarse_bin_seconds: int) -> "TrafficMatrixSeries":
        """Aggregate into coarser bins by summation (e.g. 1-min → 5-min).

        The paper's pipeline aggregates one-minute exports into five-minute
        bins; this is that step.  The number of fine bins must be a multiple
        of the rebin factor.
        """
        factor = self._binning.rebin_factor(coarse_bin_seconds)
        require(self.n_bins % factor == 0,
                "number of bins must be divisible by the rebin factor")
        n_coarse = self.n_bins // factor
        new_binning = TimeBinning(n_bins=n_coarse, bin_seconds=coarse_bin_seconds,
                                  start_seconds=self._binning.start_seconds)
        matrices = {}
        for traffic_type, matrix in self._matrices.items():
            reshaped = matrix.reshape(n_coarse, factor, self.n_od_pairs)
            matrices[traffic_type] = reshaped.sum(axis=1)
        return TrafficMatrixSeries(self._od_pairs, new_binning, matrices)

    # ------------------------------------------------------------------ #
    # comparisons / summaries
    # ------------------------------------------------------------------ #
    def allclose(self, other: "TrafficMatrixSeries", rtol: float = 1e-9,
                 atol: float = 1e-6) -> bool:
        """Whether two series hold (numerically) identical data."""
        if self._od_pairs != other._od_pairs or self.n_bins != other.n_bins:
            return False
        if set(self._matrices) != set(other._matrices):
            return False
        return all(
            np.allclose(self._matrices[t], other._matrices[t], rtol=rtol, atol=atol)
            for t in self._matrices
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-traffic-type summary statistics (totals, means, maxima)."""
        result: Dict[str, Dict[str, float]] = {}
        for traffic_type, matrix in self._matrices.items():
            result[traffic_type.value] = {
                "total": float(matrix.sum()),
                "mean_per_bin": float(matrix.sum(axis=1).mean()),
                "max_cell": float(matrix.max()),
                "nonzero_fraction": float(np.count_nonzero(matrix) / matrix.size),
            }
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        types = ",".join(t.short_label for t in self._matrices)
        return (
            f"TrafficMatrixSeries(n_bins={self.n_bins}, n_od_pairs={self.n_od_pairs}, "
            f"types=[{types}])"
        )
