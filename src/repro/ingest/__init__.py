"""Bulk flow-record ingestion: on-disk exports → ``TrafficChunk`` stream.

The front end the paper assumes and ROADMAP item 3 calls for: sampled
NetFlow-style CSV exports are parsed in vectorized batches
(:mod:`~repro.ingest.csv_io`), resolved to OD pairs and accumulated
behind a lateness watermark (:mod:`~repro.ingest.binning`), inverted for
packet sampling, and emitted as the same gapless in-order chunk stream
every detection engine consumes (:class:`FlowCsvSource`, a
:class:`~repro.streaming.sources.ChunkSource`).  The whole plane is held
to a byte-identical round-trip parity proof (:mod:`~repro.ingest.parity`).
"""

from repro.ingest.csv_io import (
    FLOW_CSV_COLUMNS,
    ParseStats,
    RecordBatch,
    export_flow_csv,
    read_flow_batches,
)
from repro.ingest.binning import BinningStats, FlowRecordBinner
from repro.ingest.source import FlowCsvSource, IngestConfig, IngestStats
from repro.ingest.parity import (
    RoundTripReport,
    export_series_records,
    round_trip_check,
)

__all__ = [
    "FLOW_CSV_COLUMNS",
    "ParseStats",
    "RecordBatch",
    "export_flow_csv",
    "read_flow_batches",
    "BinningStats",
    "FlowRecordBinner",
    "FlowCsvSource",
    "IngestConfig",
    "IngestStats",
    "RoundTripReport",
    "export_series_records",
    "round_trip_check",
]
