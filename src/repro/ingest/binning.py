"""Vectorized binning of parsed flow-record batches into traffic chunks.

:class:`FlowRecordBinner` is the bulk counterpart of
:class:`~repro.flows.aggregation.FlowAggregator`: record batches are
resolved to OD pairs through :class:`~repro.routing.resolver.PoPResolver`
(vectorized over the batch with per-unique-key caches — Abilene's 11-bit
destination anonymization collapses the egress key space, so the cache hit
rate is high), mapped to time bins, and accumulated per (bin, OD column)
with :func:`numpy.add.at`.

``np.add.at`` is unbuffered — it applies additions element by element in
index order — so per cell the floating-point addition order is exactly the
sequential ``+=`` of :class:`FlowAggregator` over the same record stream.
That is what makes the ingest path's matrices **byte-identical** to the
direct aggregation path, not merely close.

Emission is watermark-driven: a bin is sealed once the high-water bin has
advanced ``lateness_bins`` past it, chunks come out gapless and in order
(bins nothing was recorded for are explicit zero rows), and records behind
the emission floor are counted late and dropped — the same discipline
``OnlineEventAggregator`` applies on the detection side, so the two
watermarks compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows.timeseries import TrafficType
from repro.ingest.csv_io import RecordBatch
from repro.routing.resolver import PoPResolver, anonymize_address
from repro.streaming.sources import TrafficChunk
from repro.utils.validation import require

__all__ = ["BinningStats", "FlowRecordBinner"]


@dataclass
class BinningStats:
    """Counters describing one binning pass (mutated in place)."""

    records: int = 0              #: records offered
    binned: int = 0               #: records accumulated into some cell
    late_records: int = 0         #: behind the emission floor, dropped
    skipped_records: int = 0      #: before the resume bin (suffix replay)
    out_of_range: int = 0         #: outside the configured bin range
    unresolved_ingress: int = 0   #: no ingress PoP
    unresolved_egress: int = 0    #: ingress ok, no egress PoP
    unknown_od: int = 0           #: resolved OD pair not in the universe

    @property
    def dropped(self) -> int:
        """Total records that did not land in a cell."""
        return self.records - self.binned


class FlowRecordBinner:
    """Accumulate :class:`RecordBatch`es into gapless in-order chunks.

    Parameters
    ----------
    resolver:
        Ingress/egress PoP resolution (the paper's data-reduction step).
    od_pairs:
        Column universe and ordering of the emitted matrices.
    chunk_size:
        Bins per emitted chunk.  Chunk boundaries are fixed global
        multiples of the chunk size, so a resumed stream reproduces the
        chunks an uninterrupted run would emit.
    bin_seconds, start_seconds:
        The time binning (paper: 300 s bins).
    n_bins:
        Total bins of the stream when known; ``None`` leaves the end open
        (:meth:`finish` then closes at the high-water bin).
    lateness_bins:
        How many bins the high-water mark must advance past a bin before
        it is sealed — the tolerance for out-of-order records.
    start_bin:
        Resume point: bins below it are neither buffered nor emitted
        (their records count as ``skipped``), and the first chunk starts
        exactly there.
    inverse_rate:
        Multiplier applied to byte/packet counts (sampling inversion;
        flow counts are *not* scaled — a sampled export cannot recover
        the true flow count by rescaling, see ``flows/sampling.py``).
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; late/bad/
        resolution counters are published under ``ingest_*`` names.
    """

    def __init__(
        self,
        resolver: PoPResolver,
        od_pairs: Sequence[Tuple[str, str]],
        chunk_size: int,
        bin_seconds: int = 300,
        start_seconds: float = 0.0,
        n_bins: Optional[int] = None,
        lateness_bins: int = 0,
        start_bin: int = 0,
        inverse_rate: float = 1.0,
        registry=None,
    ) -> None:
        require(chunk_size >= 1, "chunk_size must be >= 1")
        require(bin_seconds >= 1, "bin_seconds must be >= 1")
        require(n_bins is None or n_bins >= 1,
                "n_bins must be >= 1 when given")
        require(lateness_bins >= 0, "lateness_bins must be non-negative")
        require(start_bin >= 0, "start_bin must be non-negative")
        require(inverse_rate > 0, "inverse_rate must be positive")
        self._resolver = resolver
        self._od_pairs = list(od_pairs)
        self._n_columns = len(self._od_pairs)
        require(self._n_columns >= 1, "od_pairs must be non-empty")
        self._chunk_size = int(chunk_size)
        self._bin_seconds = int(bin_seconds)
        self._start_seconds = float(start_seconds)
        self._n_bins = n_bins if n_bins is None else int(n_bins)
        self._lateness_bins = int(lateness_bins)
        self._start_bin = int(start_bin)
        self._inverse_rate = float(inverse_rate)
        self._stats = BinningStats()
        self._registry = registry

        # PoP-code tables: resolution is vectorized by mapping PoP names to
        # small integer codes and OD pairs to a code × code column matrix.
        pops = sorted({p for pair in self._od_pairs for p in pair}
                      | set(resolver.network.pop_names))
        self._pop_code = {name: i for i, name in enumerate(pops)}
        n_pops = len(pops)
        self._od_column = np.full((n_pops + 1, n_pops + 1), -1, np.int64)
        for column, (origin, destination) in enumerate(self._od_pairs):
            self._od_column[self._pop_code[origin],
                            self._pop_code[destination]] = column
        self._pop_names = pops
        #: router name -> pop code (or None when unknown to the topology)
        self._router_code: Dict[str, Optional[int]] = {}
        #: src address -> pop code for records without a known router
        self._src_code: Dict[int, Optional[int]] = {}
        #: anonymized dst -> egress pop code (int), unreachable (None), or
        #: the candidate-PoP tuple of a multihomed route (hot-potato
        #: tie-break still needed — stage two below)
        self._dst_resolution: Dict[int, object] = {}
        #: (candidate tuple, ingress code) -> chosen egress pop code
        self._hot_potato: Dict[Tuple[Tuple[str, ...], int], int] = {}
        self._anonymized_bits = resolver.anonymized_bits

        # Open bins live in one contiguous rolling window per traffic type
        # (rows for global bins [window_base, window_base + len)): the whole
        # batch accumulates with a single unbuffered np.add.at per type on
        # a flat (bin, column) index, and emission is a row slice.
        self._window_base = self._start_bin
        self._window_bytes = np.zeros((0, self._n_columns))
        self._window_packets = np.zeros((0, self._n_columns))
        self._window_flows = np.zeros((0, self._n_columns))
        self._emit_floor = self._start_bin  # next bin to emit
        self._high_bin = self._start_bin - 1  # highest bin seen
        self._finished = False

    @property
    def stats(self) -> BinningStats:
        """Counters for this binning pass."""
        return self._stats

    @property
    def emitted_watermark(self) -> int:
        """Exclusive end bin of everything emitted so far."""
        return self._emit_floor

    # ------------------------------------------------------------------ #
    # resolution (vectorized with caches)
    # ------------------------------------------------------------------ #
    def _ingress_codes(self, batch: RecordBatch) -> np.ndarray:
        routers = batch.router
        # Unique router names first: the common case is a handful of names
        # per batch, each resolved once via the router -> PoP table.
        unique_routers, inverse = np.unique(routers.astype(str),
                                            return_inverse=True)
        router_codes = np.full(len(unique_routers), -1, np.int64)
        needs_lookup = np.zeros(len(unique_routers), bool)
        for i, name in enumerate(unique_routers):
            if not name:
                needs_lookup[i] = True
                continue
            if name not in self._router_code:
                pop = self._resolver.router_pop_map.get(name)
                self._router_code[name] = (None if pop is None
                                           else self._pop_code[pop])
            code = self._router_code[name]
            if code is None:
                # Unknown router name: fall back to the source-address
                # table, like PoPResolver.resolve_ingress does.
                needs_lookup[i] = True
            else:
                router_codes[i] = code
        codes = router_codes[inverse]
        fallback = needs_lookup[inverse]
        if np.any(fallback):
            table = self._resolver.ingress_table
            for index in np.nonzero(fallback)[0]:
                src = int(batch.src_addr[index])
                if src not in self._src_code:
                    pop = table.lookup(src)
                    self._src_code[src] = (None if pop is None
                                           else self._pop_code[pop])
                code = self._src_code[src]
                codes[index] = -1 if code is None else code
        return codes

    def _egress_codes(self, batch: RecordBatch,
                      ingress: np.ndarray) -> np.ndarray:
        mask = 0xFFFFFFFF & ~((1 << self._anonymized_bits) - 1) \
            if self._anonymized_bits > 0 else 0xFFFFFFFF
        anonymized = batch.dst_addr & np.int64(mask)
        pop_names = self._pop_names
        bgp = self._resolver.bgp_table
        igp = self._resolver.igp
        dst_resolution = self._dst_resolution
        missing = dst_resolution  # sentinel no address can map to

        # Stage one, ingress-independent: one LPM per distinct anonymized
        # destination (anonymization collapses the key space, so there are
        # few), resolved to a final PoP code, unreachable (-1), or a
        # multihomed marker (-2) whose hot-potato tie-break needs the
        # ingress PoP.
        unique_dsts, dst_inverse = np.unique(anonymized, return_inverse=True)
        dst_codes = np.full(len(unique_dsts), -1, np.int64)
        multihomed: Dict[int, Tuple[str, ...]] = {}
        for i, dst in enumerate(unique_dsts):
            dst = int(dst)
            entry = dst_resolution.get(dst, missing)
            if entry is missing:
                route = bgp.lookup(dst)
                if route is None:
                    # Same fallback PoPResolver.resolve_egress applies:
                    # customer prefixes absent from BGP.
                    pop = self._resolver.ingress_table.lookup(dst)
                    entry = None if pop is None else self._pop_code[pop]
                elif len(route.egress_pops) == 1:
                    entry = self._pop_code[route.egress_pops[0]]
                else:
                    entry = tuple(route.egress_pops)
                dst_resolution[dst] = entry
            if entry is None:
                continue
            if isinstance(entry, tuple):
                dst_codes[i] = -2
                multihomed[i] = entry
            else:
                dst_codes[i] = entry
        codes = dst_codes[dst_inverse]

        if multihomed:
            # Stage two, only where needed: hot-potato tie-break per
            # (candidate set, ingress) — a handful of keys total.
            pending = np.nonzero((codes == -2) & (ingress >= 0))[0]
            codes[(codes == -2) & (ingress < 0)] = -1
            for index in pending:
                entry = multihomed[int(dst_inverse[index])]
                ingress_code = int(ingress[index])
                hot_key = (entry, ingress_code)
                code = self._hot_potato.get(hot_key)
                if code is None:
                    choice = igp.closest_pop(list(entry),
                                             pop_names[ingress_code])
                    if choice is None:
                        choice = entry[0]
                    code = self._pop_code[choice]
                    self._hot_potato[hot_key] = code
                codes[index] = code
        return codes

    # ------------------------------------------------------------------ #
    # accumulation
    # ------------------------------------------------------------------ #
    def add_batch(self, batch: RecordBatch) -> List[TrafficChunk]:
        """Accumulate one batch; returns chunks sealed by its arrival."""
        require(not self._finished, "binner is finished")
        n = batch.n_records
        self._stats.records += n
        if n == 0:
            return []

        ingress = self._ingress_codes(batch)
        resolved_ingress = ingress >= 0
        self._stats.unresolved_ingress += int(n - np.count_nonzero(
            resolved_ingress))
        egress = self._egress_codes(batch, ingress)
        resolved = resolved_ingress & (egress >= 0)
        self._stats.unresolved_egress += int(
            np.count_nonzero(resolved_ingress & (egress < 0)))

        columns = self._od_column[np.where(resolved, ingress, 0),
                                  np.where(resolved, egress, 0)]
        known_od = resolved & (columns >= 0)
        self._stats.unknown_od += int(np.count_nonzero(resolved
                                                       & (columns < 0)))

        # floor_divide matches Python's float // (TimeBinning.bin_of), so
        # edge-of-bin timestamps land in the same bin as the direct path.
        bins = np.floor_divide(batch.start_time - self._start_seconds,
                               self._bin_seconds).astype(np.int64)
        in_range = (bins >= 0) & ((bins < self._n_bins)
                                  if self._n_bins is not None else True)
        self._stats.out_of_range += int(np.count_nonzero(known_od
                                                         & ~in_range))
        skipped = known_od & in_range & (bins < self._start_bin)
        self._stats.skipped_records += int(np.count_nonzero(skipped))
        late = known_od & in_range & ~skipped & (bins < self._emit_floor)
        self._stats.late_records += int(np.count_nonzero(late))
        keep = known_od & in_range & ~skipped & ~late

        n_kept = int(np.count_nonzero(keep))
        if n_kept:
            kept_bins = bins[keep]
            kept_columns = columns[keep]
            high = int(kept_bins.max())
            self._grow_window(high)
            # One unbuffered np.add.at per traffic type on the flat
            # (bin, column) index: masking preserves record order, so the
            # per-cell addition order matches the sequential FlowAggregator
            # loop exactly (byte-identical sums).
            flat = (kept_bins - self._window_base) * self._n_columns \
                + kept_columns
            np.add.at(self._window_bytes.ravel(), flat,
                      batch.bytes[keep] * self._inverse_rate)
            np.add.at(self._window_packets.ravel(), flat,
                      batch.packets[keep] * self._inverse_rate)
            np.add.at(self._window_flows.ravel(), flat, 1.0)
            self._high_bin = max(self._high_bin, high)
            self._stats.binned += n_kept
        self._publish_metrics()
        return self._drain_sealed()

    def _grow_window(self, high_bin: int) -> None:
        needed = high_bin + 1 - self._window_base
        have = self._window_bytes.shape[0]
        if needed <= have:
            return
        extra = max(needed - have, have)  # at least double: amortized growth
        pad = ((0, extra), (0, 0))
        self._window_bytes = np.pad(self._window_bytes, pad)
        self._window_packets = np.pad(self._window_packets, pad)
        self._window_flows = np.pad(self._window_flows, pad)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def _sealed_end(self) -> int:
        """Exclusive end of the bins allowed to leave the buffer."""
        return max(self._emit_floor, self._high_bin + 1 - self._lateness_bins)

    def _emit_range(self, start: int, stop: int) -> TrafficChunk:
        # Gapless by construction: window rows no record touched are the
        # zero rows they were allocated as.
        lo, hi = start - self._window_base, stop - self._window_base
        have = self._window_bytes.shape[0]
        n, width = stop - start, self._n_columns

        def rows(window: np.ndarray) -> np.ndarray:
            if hi <= have:
                return window[lo:hi].copy()
            taken = np.zeros((n, width))
            taken[:max(0, have - lo)] = window[lo:have]
            return taken

        chunk = TrafficChunk(start_bin=start, matrices={
            TrafficType.BYTES: rows(self._window_bytes),
            TrafficType.PACKETS: rows(self._window_packets),
            TrafficType.FLOWS: rows(self._window_flows),
        })
        # Slide the window past the emitted rows.
        keep = min(hi, have)
        self._window_bytes = self._window_bytes[keep:]
        self._window_packets = self._window_packets[keep:]
        self._window_flows = self._window_flows[keep:]
        self._window_base = stop
        return chunk

    def _drain_sealed(self) -> List[TrafficChunk]:
        """Emit every complete chunk whose bins are all sealed."""
        sealed = self._sealed_end()
        if self._n_bins is not None:
            sealed = min(sealed, self._n_bins)
        chunks: List[TrafficChunk] = []
        while True:
            # Boundaries at fixed global multiples of chunk_size: resumed
            # streams reproduce the original chunking.
            boundary = (self._emit_floor // self._chunk_size + 1) \
                * self._chunk_size
            if self._n_bins is not None:
                boundary = min(boundary, self._n_bins)
            if boundary > sealed or boundary <= self._emit_floor:
                return chunks
            chunks.append(self._emit_range(self._emit_floor, boundary))
            self._emit_floor = boundary

    def finish(self) -> List[TrafficChunk]:
        """Seal everything and emit the tail (idempotent)."""
        if self._finished:
            return []
        self._finished = True
        end = self._n_bins if self._n_bins is not None else self._high_bin + 1
        chunks: List[TrafficChunk] = []
        while self._emit_floor < end:
            boundary = min(end, (self._emit_floor // self._chunk_size + 1)
                           * self._chunk_size)
            chunks.append(self._emit_range(self._emit_floor, boundary))
            self._emit_floor = boundary
        require(not np.any(self._window_bytes),
                "internal error: buffered bins survived finish()")
        self._publish_metrics()
        return chunks

    def _publish_metrics(self) -> None:
        if self._registry is None:
            return
        stats = self._stats
        for name, value, help_text in (
            ("ingest_records_total", stats.records,
             "Flow records offered to the binner"),
            ("ingest_records_binned_total", stats.binned,
             "Flow records accumulated into an OD cell"),
            ("ingest_late_records_total", stats.late_records,
             "Records dropped behind the emission watermark"),
            ("ingest_unresolved_records_total",
             stats.unresolved_ingress + stats.unresolved_egress,
             "Records whose ingress or egress PoP did not resolve"),
        ):
            counter = self._registry.counter(name, help=help_text)
            delta = value - counter.value
            if delta > 0:
                counter.inc(delta)
