"""Vectorized CSV flow-record I/O — the on-disk wire format of the plane.

The schema mirrors a NetFlow-style CSV export, one record per line::

    src_addr,dst_addr,src_port,dst_port,protocol,start_time,end_time,bytes,packets,router

* ``src_addr`` / ``dst_addr``: IPv4 addresses, integer form in canonical
  exports; the parser also accepts dotted-quad (both are exact).
* ``start_time`` / ``end_time``: seconds, written with ``repr`` so the
  shortest-round-trip float survives the text hop bit for bit (likewise
  ``bytes`` / ``packets``) — the foundation of the generator-vs-ingest
  byte-parity proof.
* ``router``: name of the exporting router, empty when unknown.

Real exports are dirty — files get concatenated (stray header lines
mid-file), fields go missing, counters come back ``NaN``.  Parsing is
batch-vectorized through numpy with an explicit policy: a batch is parsed
column-wise in one shot, and only when that fails (a malformed or header
row somewhere in the batch) does the parser drop to per-line
classification of exactly that batch.  ``pandas.read_csv`` can be chosen
as the engine where pandas is installed (it only walks the file; numeric
conversion still runs through the shared fast path, keeping parity
engine-independent); the numpy path is the dependency-free reference.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.flows.records import FlowRecord
from repro.routing.prefixes import parse_ipv4
from repro.utils.validation import require

__all__ = [
    "FLOW_CSV_COLUMNS",
    "ParseStats",
    "RecordBatch",
    "export_flow_csv",
    "read_flow_batches",
]

#: Column order of the on-disk schema.
FLOW_CSV_COLUMNS = (
    "src_addr", "dst_addr", "src_port", "dst_port", "protocol",
    "start_time", "end_time", "bytes", "packets", "router",
)
_N_COLUMNS = len(FLOW_CSV_COLUMNS)
_HEADER_LINE = ",".join(FLOW_CSV_COLUMNS)

#: Dirty-row policies: drop and count, fail fast, or keep non-finite
#: byte/packet values so they surface as NaN cells for the detector's
#: ``on_bad_chunk`` discipline to judge.
BAD_ROW_POLICIES = ("skip", "raise", "propagate")


@dataclass
class ParseStats:
    """Counters describing one parsing pass (mutated in place)."""

    rows: int = 0            #: physical data lines seen (headers excluded)
    records: int = 0         #: rows that became records
    bad_rows: int = 0        #: rows dropped (or that raised) under the policy
    header_rows: int = 0     #: stray header lines skipped (concat artifacts)
    propagated_rows: int = 0  #: rows kept with non-finite bytes/packets
    engine: str = ""         #: parser engine actually used

    def merge(self, other: "ParseStats") -> "ParseStats":
        """Element-wise sum (engines must agree; used by multi-file reads)."""
        return ParseStats(
            rows=self.rows + other.rows,
            records=self.records + other.records,
            bad_rows=self.bad_rows + other.bad_rows,
            header_rows=self.header_rows + other.header_rows,
            propagated_rows=self.propagated_rows + other.propagated_rows,
            engine=self.engine or other.engine,
        )


@dataclass
class RecordBatch:
    """A column-oriented batch of parsed flow records.

    The vectorized analogue of ``List[FlowRecord]``: one numpy array per
    schema column, all of length :attr:`n_records`, in file order.
    """

    src_addr: np.ndarray      #: int64
    dst_addr: np.ndarray      #: int64
    src_port: np.ndarray      #: int64
    dst_port: np.ndarray      #: int64
    protocol: np.ndarray      #: int64
    start_time: np.ndarray    #: float64
    end_time: np.ndarray      #: float64
    bytes: np.ndarray         #: float64 (NaN/Inf only under ``propagate``)
    packets: np.ndarray       #: float64 (NaN/Inf only under ``propagate``)
    router: np.ndarray = field(default_factory=lambda: np.empty(0, object))
    #: object array of router names ("" = unknown)

    @property
    def n_records(self) -> int:
        """Number of records in the batch."""
        return int(self.src_addr.shape[0])


def _format_value(value: float) -> str:
    """Render a count/time losslessly and compactly (ints without ``.0``)."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 2**53:
        return str(int(as_float))
    return repr(as_float)


def export_flow_csv(records: Iterable[FlowRecord], path,
                    append: bool = False, header: bool = True) -> int:
    """Write *records* to *path* in the canonical schema; returns the count.

    ``append=True`` with ``header=True`` reproduces the concatenated-export
    artifact (a second header line mid-file) on purpose — the parser must
    survive it, and tests build dirty fixtures this way.
    """
    n_written = 0
    with open(path, "a" if append else "w", encoding="utf-8", newline="") as fh:
        if header:
            fh.write(_HEADER_LINE + "\n")
        for record in records:
            fh.write(",".join((
                str(record.src_address),
                str(record.dst_address),
                str(record.src_port),
                str(record.dst_port),
                str(record.protocol),
                _format_value(record.start_time),
                _format_value(record.end_time),
                _format_value(record.bytes),
                _format_value(record.packets),
                record.observing_router or "",
            )) + "\n")
            n_written += 1
    return n_written


# --------------------------------------------------------------------- #
# parsing — numpy engine
# --------------------------------------------------------------------- #
def _parse_addresses(values: List[str], n: int) -> np.ndarray:
    """Integer addresses from string fields (dotted-quad tolerated)."""
    try:
        return np.array(values, np.int64)
    except ValueError:
        return np.fromiter(
            (parse_ipv4(s) if "." in s else int(s) for s in values),
            np.int64, n)


def _batch_fast_path(fields: List[str], n: int, on_bad_row: str):
    """Whole-batch column-wise parse of *n* rows' flat *fields* list;
    raises ``ValueError`` on any dirt the vectorized path cannot classify
    (the caller then re-parses the batch line by line)."""
    if len(fields) != n * _N_COLUMNS:
        raise ValueError("ragged batch")
    # Columns by list slicing + fromiter(map(...)): no intermediate
    # unicode array, the int/float parse is the only per-field pass —
    # roughly 3x faster than np.array(fields).astype(...).
    src = _parse_addresses(fields[0::_N_COLUMNS], n)
    dst = _parse_addresses(fields[1::_N_COLUMNS], n)
    src_port = np.array(fields[2::_N_COLUMNS], np.int64)
    dst_port = np.array(fields[3::_N_COLUMNS], np.int64)
    protocol = np.array(fields[4::_N_COLUMNS], np.int64)
    start = np.array(fields[5::_N_COLUMNS], np.float64)
    end = np.array(fields[6::_N_COLUMNS], np.float64)
    byte_count = np.array(fields[7::_N_COLUMNS], np.float64)
    packet_count = np.array(fields[8::_N_COLUMNS], np.float64)
    router = np.empty(n, object)
    router[:] = fields[9::_N_COLUMNS]

    valid = ((src >= 0) & (src <= 0xFFFFFFFF)
             & (dst >= 0) & (dst <= 0xFFFFFFFF)
             & (src_port >= 0) & (src_port <= 65535)
             & (dst_port >= 0) & (dst_port <= 65535)
             & (protocol >= 0) & (protocol <= 255)
             & np.isfinite(start) & np.isfinite(end) & (end >= start))
    counts_clean = (np.isfinite(byte_count) & (byte_count >= 0)
                    & np.isfinite(packet_count) & (packet_count >= 0))
    if on_bad_row == "propagate":
        # Non-finite counts ride through (they become NaN cells for the
        # detector's on_bad_chunk policy); finite-but-negative counts are
        # structurally bad under every policy.
        counts_ok = ((~np.isfinite(byte_count) | (byte_count >= 0))
                     & (~np.isfinite(packet_count) | (packet_count >= 0)))
        keep = valid & counts_ok
        n_propagated = int(np.count_nonzero(keep & ~counts_clean))
    else:
        keep = valid & counts_clean
        n_propagated = 0
    n_bad = n - int(np.count_nonzero(keep))
    if n_bad and on_bad_row == "raise":
        raise ValueError("structurally bad row")  # caller pinpoints the line
    if n_bad:
        src, dst = src[keep], dst[keep]
        src_port, dst_port, protocol = src_port[keep], dst_port[keep], protocol[keep]
        start, end = start[keep], end[keep]
        byte_count, packet_count = byte_count[keep], packet_count[keep]
        router = router[keep]
    batch = RecordBatch(src, dst, src_port, dst_port, protocol,
                        start, end, byte_count, packet_count, router)
    return batch, n_bad, n_propagated


def _parse_line(line: str, on_bad_row: str):
    """Classify one line: ``None`` (header), a field tuple, or raise."""
    fields = line.split(",")
    if [f.strip() for f in fields] == list(FLOW_CSV_COLUMNS):
        return None
    if len(fields) != _N_COLUMNS:
        raise ValueError(f"expected {_N_COLUMNS} fields, got {len(fields)}")
    src = parse_ipv4(fields[0]) if "." in fields[0] else int(fields[0])
    dst = parse_ipv4(fields[1]) if "." in fields[1] else int(fields[1])
    src_port, dst_port, protocol = (int(fields[2]), int(fields[3]),
                                    int(fields[4]))
    start, end = float(fields[5]), float(fields[6])
    byte_count, packet_count = float(fields[7]), float(fields[8])
    if not (0 <= src <= 0xFFFFFFFF and 0 <= dst <= 0xFFFFFFFF
            and 0 <= src_port <= 65535 and 0 <= dst_port <= 65535
            and 0 <= protocol <= 255
            and math.isfinite(start) and math.isfinite(end)
            and end >= start):
        raise ValueError("field out of range")
    counts_clean = (math.isfinite(byte_count) and byte_count >= 0
                    and math.isfinite(packet_count) and packet_count >= 0)
    if not counts_clean:
        if on_bad_row != "propagate":
            raise ValueError("non-finite byte/packet count")
        if ((math.isfinite(byte_count) and byte_count < 0)
                or (math.isfinite(packet_count) and packet_count < 0)):
            raise ValueError("negative byte/packet count")
    return (src, dst, src_port, dst_port, protocol, start, end,
            byte_count, packet_count, fields[9].strip(), not counts_clean)


def _batch_line_fallback(lines: List[str], on_bad_row: str,
                         stats: ParseStats):
    """Per-line re-parse of a batch the fast path rejected.

    Owns all the row/header accounting for the batch (the caller adds
    only the record count)."""
    columns: List[list] = [[] for _ in range(_N_COLUMNS + 1)]
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            parsed = _parse_line(stripped, on_bad_row)
        except ValueError as exc:
            if on_bad_row == "raise":
                raise ValueError(
                    f"bad flow-record row {stripped!r}: {exc}") from exc
            stats.rows += 1
            stats.bad_rows += 1
            continue
        if parsed is None:
            stats.header_rows += 1
            continue
        stats.rows += 1
        for column, value in zip(columns, parsed):
            column.append(value)
    if columns[-1]:
        stats.propagated_rows += int(np.count_nonzero(columns[-1]))
    return RecordBatch(
        np.array(columns[0], dtype=np.int64),
        np.array(columns[1], dtype=np.int64),
        np.array(columns[2], dtype=np.int64),
        np.array(columns[3], dtype=np.int64),
        np.array(columns[4], dtype=np.int64),
        np.array(columns[5], dtype=np.float64),
        np.array(columns[6], dtype=np.float64),
        np.array(columns[7], dtype=np.float64),
        np.array(columns[8], dtype=np.float64),
        np.array(columns[9], dtype=object),
    )


def _split_batch(lines: List[str]):
    """Flatten a batch of raw lines to ``(fields, n_rows, n_headers)``
    in C-speed string ops, peeling header/blank lines only when present."""
    buffer = "".join(lines)
    if "\r" in buffer:
        buffer = buffer.replace("\r\n", "\n").replace("\r", "\n")
    n_headers = 0
    if FLOW_CSV_COLUMNS[0] in buffer or "\n\n" in buffer \
            or buffer.startswith("\n"):
        # Header lines (the leading one and mid-file concat artifacts) and
        # blank lines are peeled here so one stray header does not push
        # the whole batch off the vectorized fast path.
        kept = []
        for line in buffer.split("\n"):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped == _HEADER_LINE:
                n_headers += 1
                continue
            kept.append(stripped)
        fields = ",".join(kept).split(",") if kept else []
        return fields, len(kept), n_headers
    if buffer.endswith("\n"):
        buffer = buffer[:-1]
    n_rows = buffer.count("\n") + 1
    return buffer.replace("\n", ",").split(","), n_rows, 0


def _parse_block(lines: List[str], on_bad_row: str):
    """Parse one block of raw lines to ``(batch, local ParseStats)``.

    Top-level and self-accounting so it runs identically inline and in a
    worker process (``parse_workers`` parallelism)."""
    local = ParseStats()
    fields, n_rows, n_headers = _split_batch(lines)
    if not n_rows:
        local.header_rows += n_headers
        return None, local
    try:
        batch, n_bad, n_propagated = _batch_fast_path(
            fields, n_rows, on_bad_row)
        local.rows += n_rows
        local.header_rows += n_headers
        local.bad_rows += n_bad
        local.propagated_rows += n_propagated
    except ValueError:
        # The fallback re-reads the raw lines and does its own row/header
        # accounting for this batch.
        batch = _batch_line_fallback(lines, on_bad_row, local)
    local.records += batch.n_records
    return batch, local


def _iter_line_blocks(path, batch_rows: int) -> Iterator[List[str]]:
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            lines = fh.readlines(batch_rows * 64)
            if not lines:
                return
            yield lines


def _read_batches_numpy(path, batch_rows: int, on_bad_row: str,
                        stats: ParseStats,
                        workers: int = 1) -> Iterator[RecordBatch]:
    blocks = _iter_line_blocks(path, batch_rows)
    if workers <= 1:
        parsed = (_parse_block(lines, on_bad_row) for lines in blocks)
        yield from _drain_parsed(parsed, stats)
        return
    # Process-parallel parse: blocks fan out to worker processes, results
    # come back in file order (pool.map preserves it), and the merged
    # stats are identical to the serial pass because each block accounts
    # for itself.  Binning stays downstream and sequential — ordering and
    # byte-parity are untouched.
    from concurrent.futures import ProcessPoolExecutor
    from functools import partial
    with ProcessPoolExecutor(max_workers=workers) as pool:
        yield from _drain_parsed(
            pool.map(partial(_parse_block, on_bad_row=on_bad_row),
                     blocks), stats)


def _drain_parsed(parsed, stats: ParseStats) -> Iterator[RecordBatch]:
    for batch, local in parsed:
        stats.rows += local.rows
        stats.records += local.records
        stats.bad_rows += local.bad_rows
        stats.header_rows += local.header_rows
        stats.propagated_rows += local.propagated_rows
        if batch is not None and batch.n_records:
            yield batch


# --------------------------------------------------------------------- #
# parsing — optional pandas engine
# --------------------------------------------------------------------- #
def _read_batches_pandas(path, batch_rows: int, on_bad_row: str,
                         stats: ParseStats) -> Iterator[RecordBatch]:
    import pandas as pd  # gated: the numpy engine is the reference

    # pandas does the chunked file walking; fields stay strings (dtype=str,
    # keep_default_na=False) and numeric conversion goes through the same
    # numpy fast path as the reference engine, so the byte-parity guarantee
    # is engine-independent.
    frames = pd.read_csv(
        path, names=FLOW_CSV_COLUMNS, header=None, chunksize=batch_rows,
        dtype=str, keep_default_na=False)

    def parsed():  # pragma: no cover - exercised only with pandas
        for frame in frames:
            lines = [",".join(row) + "\n"
                     for row in frame.itertuples(index=False)]
            yield _parse_block(lines, on_bad_row)

    yield from _drain_parsed(parsed(), stats)


def _resolve_engine(engine: str) -> str:
    require(engine in ("auto", "numpy", "pandas"),
            f"unknown parse engine {engine!r}")
    if engine == "pandas":
        try:
            import pandas  # noqa: F401
        except ImportError as exc:
            raise RuntimeError(
                "engine='pandas' requested but pandas is not installed; "
                "use engine='numpy' (the dependency-free reference)"
            ) from exc
        return "pandas"
    # "auto" prefers the numpy reference: it is always present and its
    # parity behaviour is what the round-trip proof is stated against.
    return "numpy"


def read_flow_batches(
    paths: Union[str, Sequence[str]],
    batch_rows: int = 8192,
    on_bad_row: str = "skip",
    engine: str = "auto",
    stats: Optional[ParseStats] = None,
    workers: int = 1,
) -> Iterator[RecordBatch]:
    """Stream column-oriented :class:`RecordBatch`es from CSV export(s).

    Parameters
    ----------
    paths:
        One path or an ordered sequence (read back to back, the logical
        concatenation — stray header lines are skipped and counted).
    batch_rows:
        Rows per vectorized parse batch (bounds memory).
    on_bad_row:
        ``"skip"`` (drop and count), ``"raise"`` (fail fast), or
        ``"propagate"`` (keep rows whose byte/packet counts are non-finite
        so they surface as NaN cells downstream; structurally broken rows
        are still skipped).
    engine:
        ``"auto"`` | ``"numpy"`` | ``"pandas"``.
    stats:
        A :class:`ParseStats` mutated in place as batches are drawn.
    workers:
        Parse processes.  ``1`` (default) parses inline; ``> 1`` fans
        blocks out to a process pool (numpy engine only) — batch order,
        stats, and byte-parity are identical to the serial pass.
    """
    require(batch_rows >= 1, "batch_rows must be >= 1")
    require(on_bad_row in BAD_ROW_POLICIES,
            f"on_bad_row must be one of {BAD_ROW_POLICIES}")
    require(workers >= 1, "workers must be >= 1")
    if stats is None:
        stats = ParseStats()
    stats.engine = _resolve_engine(engine)
    path_list = [paths] if isinstance(paths, (str, bytes)) else list(paths)
    require(len(path_list) >= 1, "at least one path is required")
    if stats.engine == "pandas":  # pragma: no cover - needs pandas
        for path in path_list:
            yield from _read_batches_pandas(path, batch_rows, on_bad_row,
                                            stats)
        return
    for path in path_list:
        yield from _read_batches_numpy(path, batch_rows, on_bad_row,
                                       stats, workers=workers)
