"""Round-trip parity proof: generator path ≡ export → parse → bin path.

The acceptance bar of the ingestion plane is not "close": a synthesized
traffic week, expanded to flow records, exported to CSV, parsed back and
re-binned must produce **byte-identical** OD matrices — and therefore
identical detection events — to aggregating the very same records in
memory.  Three mechanisms make that exact:

1. the CSV hop is lossless (``repr`` shortest-round-trip floats,
   integer addresses);
2. the binner's ``np.add.at`` accumulates per cell in record order, the
   same floating-point addition order as ``FlowAggregator``'s sequential
   ``+=``;
3. both paths share one resolver, one binning, and one OD column order.

:func:`round_trip_check` runs both paths end to end and reports the
comparison; tests and the CI ingest smoke step call it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.flows.aggregation import aggregate_records
from repro.flows.sampling import SamplingConfig, sample_flow_records
from repro.flows.timeseries import TrafficMatrixSeries
from repro.ingest.csv_io import export_flow_csv
from repro.ingest.source import FlowCsvSource, IngestConfig
from repro.routing.resolver import PoPResolver
from repro.streaming.config import StreamingConfig
from repro.streaming.pipeline import stream_detect
from repro.streaming.sources import ChunkedSeriesSource
from repro.topology.network import Network
from repro.traffic.flowgen import FlowSynthesizer
from repro.utils.validation import require

__all__ = ["RoundTripReport", "export_series_records", "round_trip_check"]


@dataclass
class RoundTripReport:
    """Outcome of one generator-vs-ingest round trip."""

    matrices_identical: bool      #: every traffic type bit-for-bit equal
    events_identical: bool        #: detection event lists equal
    max_abs_difference: float     #: 0.0 when identical
    n_records_exported: int       #: raw records written to CSV
    n_direct_events: int
    n_ingest_events: int

    @property
    def ok(self) -> bool:
        """True when both matrices and events match exactly."""
        return self.matrices_identical and self.events_identical


def export_series_records(
    series: TrafficMatrixSeries,
    network: Network,
    path,
    seed: int = 0,
    max_flows_per_cell: int = 50,
    sampling: Optional[SamplingConfig] = None,
    append: bool = False,
    header: bool = True,
):
    """Expand *series* to flow records and export them to CSV at *path*.

    Returns the synthesized record list (post-sampling when *sampling* is
    given) so callers can run the in-memory path over the very same
    records.
    """
    synthesizer = FlowSynthesizer(network, seed=seed,
                                  max_flows_per_cell=max_flows_per_cell)
    records = list(synthesizer.synthesize_series(series))
    if sampling is not None:
        records = sample_flow_records(records, sampling, seed=seed)
    export_flow_csv(records, path, append=append, header=header)
    return records


def round_trip_check(
    series: TrafficMatrixSeries,
    network: Network,
    csv_path,
    seed: int = 0,
    max_flows_per_cell: int = 50,
    sampling: Optional[SamplingConfig] = None,
    streaming_config: Optional[StreamingConfig] = None,
    ingest_config: Optional[IngestConfig] = None,
) -> RoundTripReport:
    """Run both paths over one synthesized record stream and compare.

    Direct path: synthesize → resolve → ``aggregate_records`` →
    ``ChunkedSeriesSource`` → ``stream_detect``.  Ingest path: the same
    records → CSV at *csv_path* → ``FlowCsvSource`` → ``stream_detect``.
    """
    binning = series.binning
    records = export_series_records(
        series, network, csv_path, seed=seed,
        max_flows_per_cell=max_flows_per_cell, sampling=sampling)

    resolver = PoPResolver(network)
    od_pairs = network.od_pairs()
    if ingest_config is None:
        ingest_config = IngestConfig(
            bin_seconds=binning.bin_seconds,
            start_seconds=binning.start_seconds,
            n_bins=binning.n_bins,
            sampling=sampling,
        )
    require(ingest_config.n_bins == binning.n_bins
            and ingest_config.bin_seconds == binning.bin_seconds,
            "ingest_config binning must match the series binning")

    # Direct path over the identical records — including the identical
    # inverse-rate scaling, applied per record before aggregation with
    # the same multiply the binner uses.
    scale = ingest_config.inverse_rate
    resolved, _ = resolver.resolve_records(records)
    if scale != 1.0:
        resolved = [r.scaled(scale) for r in resolved]
    direct_series = aggregate_records(resolved, od_pairs, binning)
    direct_source = ChunkedSeriesSource(direct_series,
                                        ingest_config.chunk_size)

    ingest_source = FlowCsvSource(
        csv_path, config=ingest_config, resolver=resolver,
        od_pairs=od_pairs)
    ingest_chunks = list(ingest_source)

    max_diff = 0.0
    identical = True
    direct_chunks = list(direct_source)
    if len(direct_chunks) != len(ingest_chunks):
        identical = False
        max_diff = float("inf")
    else:
        for direct, ingest in zip(direct_chunks, ingest_chunks):
            for traffic_type in direct.traffic_types:
                a = direct.matrix(traffic_type)
                b = ingest.matrix(traffic_type)
                if a.shape != b.shape or direct.start_bin != ingest.start_bin:
                    identical = False
                    max_diff = float("inf")
                    continue
                if not np.array_equal(a, b):
                    identical = False
                    max_diff = max(max_diff,
                                   float(np.max(np.abs(a - b))))

    if streaming_config is None:
        streaming_config = StreamingConfig()
    direct_events = _events(direct_source, streaming_config)
    ingest_events = _events(ingest_source, streaming_config)

    return RoundTripReport(
        matrices_identical=identical,
        events_identical=direct_events == ingest_events,
        max_abs_difference=max_diff,
        n_records_exported=len(records),
        n_direct_events=len(direct_events),
        n_ingest_events=len(ingest_events),
    )


def _events(source, config: StreamingConfig) -> List:
    report = stream_detect(source, config=config)
    return list(report.events)
