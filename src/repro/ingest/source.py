"""The flow-record ingestion :class:`~repro.streaming.sources.ChunkSource`.

:class:`FlowCsvSource` wires the vectorized parser
(:mod:`repro.ingest.csv_io`) into the watermark binner
(:mod:`repro.ingest.binning`) behind the same ``ChunkSource`` protocol
every other feed implements, so on-disk NetFlow-style exports drive
``stream_detect`` / ``parallel_stream_detect`` / ``DetectionService``
exactly like the synthetic generators do — including ``resume(start_bin)``
suffix replay for checkpoint-restored detectors (the file is re-read;
records before the resume bin are skipped cheaply at the binning stage).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.flows.sampling import SamplingConfig
from repro.ingest.binning import BinningStats, FlowRecordBinner
from repro.ingest.csv_io import (
    BAD_ROW_POLICIES,
    ParseStats,
    read_flow_batches,
)
from repro.routing.resolver import PoPResolver
from repro.streaming.sources import TrafficChunk
from repro.topology.network import Network
from repro.utils.validation import require

__all__ = ["IngestConfig", "IngestStats", "FlowCsvSource"]


@dataclass(frozen=True)
class IngestConfig:
    """Configuration of the CSV → chunk ingestion pipeline.

    Parameters
    ----------
    chunk_size:
        Timebins per emitted :class:`TrafficChunk`.
    bin_seconds, start_seconds:
        The time binning (paper: 300 s bins).
    n_bins:
        Total bins of the stream when known (closes the stream end and
        makes the final chunk align with the direct generator path);
        ``None`` leaves the end open — it is determined by the data.
    lateness_bins:
        Watermark slack for out-of-order records: a bin seals only once
        the high-water bin is this far past it.
    batch_rows:
        CSV rows per vectorized parse batch.
    on_bad_row:
        Dirty-row policy: ``"skip"`` | ``"raise"`` | ``"propagate"``
        (see :func:`repro.ingest.csv_io.read_flow_batches`).
    engine:
        Parser engine: ``"auto"`` | ``"numpy"`` | ``"pandas"``.
    parse_workers:
        Parse processes; ``1`` parses inline, ``> 1`` fans batches out to
        a process pool (multi-core boxes) with identical output.
    sampling:
        The :class:`SamplingConfig` the export was produced under, if
        any.  Byte/packet counts are multiplied by the inverse sampling
        rate (unless the exporter already rescaled) so sampled exports
        yield unbiased OD volume matrices; flow counts are left as
        sampled (thinning is not invertible per record).
    """

    chunk_size: int = 48
    bin_seconds: int = 300
    start_seconds: float = 0.0
    n_bins: Optional[int] = None
    lateness_bins: int = 0
    batch_rows: int = 8192
    on_bad_row: str = "skip"
    engine: str = "auto"
    parse_workers: int = 1
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        require(self.chunk_size >= 1, "chunk_size must be >= 1")
        require(self.bin_seconds >= 1, "bin_seconds must be >= 1")
        require(self.n_bins is None or self.n_bins >= 1,
                "n_bins must be >= 1 when given")
        require(self.lateness_bins >= 0,
                "lateness_bins must be non-negative")
        require(self.batch_rows >= 1, "batch_rows must be >= 1")
        require(self.on_bad_row in BAD_ROW_POLICIES,
                f"on_bad_row must be one of {BAD_ROW_POLICIES}")
        require(self.parse_workers >= 1, "parse_workers must be >= 1")

    @property
    def inverse_rate(self) -> float:
        """Byte/packet multiplier that inverts the export's sampling."""
        if self.sampling is None or self.sampling.rescale:
            return 1.0
        return self.sampling.inverse_rate


@dataclass
class IngestStats:
    """Snapshot of one ingestion pass: parsing + binning + throughput."""

    parse: ParseStats
    binning: BinningStats
    emitted_bins: int = 0
    elapsed_seconds: float = 0.0

    @property
    def records_per_second(self) -> float:
        """Parsed records per wall-clock second of the pass."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.parse.records / self.elapsed_seconds

    @property
    def bins_per_second(self) -> float:
        """Emitted bins per wall-clock second of the pass."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.emitted_bins / self.elapsed_seconds


class FlowCsvSource:
    """Chunked OD-matrix stream parsed from CSV flow-record export(s).

    Parameters
    ----------
    paths:
        One CSV path or an ordered sequence (their logical concatenation).
    network:
        Backbone topology; provides the default resolver and OD universe.
    config:
        The :class:`IngestConfig`.
    resolver:
        Explicit :class:`PoPResolver` (default: built from *network*).
    od_pairs:
        Column universe/order (default: ``network.od_pairs()`` — the same
        row-major order the synthetic datasets use).
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry` for the
        ``ingest_*`` counters and the records/sec gauge.
    """

    def __init__(
        self,
        paths: Union[str, Sequence[str]],
        network: Optional[Network] = None,
        config: IngestConfig = IngestConfig(),
        resolver: Optional[PoPResolver] = None,
        od_pairs: Optional[Sequence[Tuple[str, str]]] = None,
        registry=None,
    ) -> None:
        require(network is not None or resolver is not None,
                "either network or resolver is required")
        self._paths = ([paths] if isinstance(paths, (str, bytes))
                       else list(paths))
        require(len(self._paths) >= 1, "at least one path is required")
        self._resolver = (resolver if resolver is not None
                          else PoPResolver(network))
        self._od_pairs = (list(od_pairs) if od_pairs is not None
                          else self._resolver.network.od_pairs())
        self._config = config
        self._registry = registry
        self._resume_bin = 0
        self._last_stats: Optional[IngestStats] = None

    @property
    def config(self) -> IngestConfig:
        """The ingestion configuration."""
        return self._config

    @property
    def od_pairs(self) -> List[Tuple[str, str]]:
        """Column universe and ordering of the emitted matrices."""
        return list(self._od_pairs)

    @property
    def start_bin(self) -> int:
        """Stream-global bin iteration starts at."""
        return self._resume_bin

    @property
    def stats(self) -> Optional[IngestStats]:
        """Statistics of the most recent (possibly in-flight) iteration."""
        return self._last_stats

    def resume(self, start_bin: int) -> "FlowCsvSource":
        """This stream from *start_bin* on (the file is re-read; earlier
        records are skipped at the binning stage without being buffered)."""
        require(start_bin >= 0, "start_bin must be non-negative")
        require(self._config.n_bins is None
                or start_bin <= self._config.n_bins,
                f"resume bin {start_bin} past the stream end "
                f"{self._config.n_bins}")
        clone = FlowCsvSource(
            list(self._paths),
            config=self._config,
            resolver=self._resolver,
            od_pairs=self._od_pairs,
            registry=self._registry,
        )
        clone._resume_bin = int(start_bin)
        return clone

    def __iter__(self) -> Iterator[TrafficChunk]:
        config = self._config
        parse_stats = ParseStats()
        binner = FlowRecordBinner(
            self._resolver,
            self._od_pairs,
            chunk_size=config.chunk_size,
            bin_seconds=config.bin_seconds,
            start_seconds=config.start_seconds,
            n_bins=config.n_bins,
            lateness_bins=config.lateness_bins,
            start_bin=self._resume_bin,
            inverse_rate=config.inverse_rate,
            registry=self._registry,
        )
        stats = IngestStats(parse=parse_stats, binning=binner.stats)
        self._last_stats = stats
        started = time.perf_counter()

        def account(chunks: List[TrafficChunk]) -> List[TrafficChunk]:
            stats.elapsed_seconds = time.perf_counter() - started
            for chunk in chunks:
                stats.emitted_bins += chunk.n_bins
            if self._registry is not None and stats.elapsed_seconds > 0:
                self._registry.gauge(
                    "ingest_records_per_second",
                    help="Parse+bin throughput of the last ingest pass",
                ).set(stats.records_per_second)
            return chunks

        for batch in read_flow_batches(
                self._paths, batch_rows=config.batch_rows,
                on_bad_row=config.on_bad_row, engine=config.engine,
                stats=parse_stats, workers=config.parse_workers):
            yield from account(binner.add_batch(batch))
        yield from account(binner.finish())
