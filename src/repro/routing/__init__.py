"""Routing substrate.

Implements the pieces of the measurement pipeline the paper uses to turn raw
flow records into Origin-Destination flows:

* :mod:`repro.routing.prefixes` — IPv4 address/prefix arithmetic and a
  longest-prefix-match trie;
* :mod:`repro.routing.igp` — IS-IS-like shortest path routing over the
  backbone (used for path/egress computation and the OUTAGE rerouting);
* :mod:`repro.routing.bgp` — a BGP-style RIB mapping destination prefixes to
  egress PoPs;
* :mod:`repro.routing.config` — router configuration files listing customer
  and peer interfaces (used for ingress resolution);
* :mod:`repro.routing.resolver` — the :class:`PoPResolver` that assigns
  ingress and egress PoPs to each flow record, including the paper's 11-bit
  destination-address anonymization;
* :mod:`repro.routing.tables` — daily routing-table snapshots.
"""

from repro.routing.prefixes import (
    Prefix,
    PrefixTable,
    format_ipv4,
    parse_ipv4,
    random_address_in_prefix,
)
from repro.routing.igp import IGPRouting
from repro.routing.bgp import BGPTable, BGPRoute
from repro.routing.config import InterfaceConfig, RouterConfig, build_router_configs
from repro.routing.resolver import PoPResolver, ResolutionStats, anonymize_address
from repro.routing.tables import RoutingSnapshot, SnapshotSeries

__all__ = [
    "Prefix",
    "PrefixTable",
    "parse_ipv4",
    "format_ipv4",
    "random_address_in_prefix",
    "IGPRouting",
    "BGPTable",
    "BGPRoute",
    "InterfaceConfig",
    "RouterConfig",
    "build_router_configs",
    "PoPResolver",
    "ResolutionStats",
    "anonymize_address",
    "RoutingSnapshot",
    "SnapshotSeries",
]
