"""BGP-style routing information base for egress-PoP resolution.

The paper resolves the egress PoP of each flow by looking the destination
address up in BGP (and ISIS) tables, following the methodology of Feldmann
et al.  Our :class:`BGPTable` maps destination prefixes to the set of egress
PoPs announcing them; when several egress PoPs announce the same prefix the
lookup breaks the tie hot-potato style, i.e. the egress closest (in IGP
distance) to the ingress PoP wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.routing.igp import IGPRouting
from repro.routing.prefixes import Prefix, PrefixTable
from repro.topology.network import Customer, Network
from repro.utils.validation import require

__all__ = ["BGPRoute", "BGPTable"]


@dataclass(frozen=True)
class BGPRoute:
    """A BGP route: a destination prefix and the PoPs announcing it."""

    prefix: Prefix
    egress_pops: Tuple[str, ...]
    origin: str = ""

    def __post_init__(self) -> None:
        require(len(self.egress_pops) >= 1, "a BGP route needs at least one egress PoP")


class BGPTable:
    """Prefix → egress-PoP table with hot-potato tie-breaking.

    Parameters
    ----------
    network:
        The backbone network (used to validate PoP names).
    """

    def __init__(self, network: Network) -> None:
        self._network = network
        self._table: PrefixTable[BGPRoute] = PrefixTable()
        self._routes: List[BGPRoute] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def announce(self, prefix: Prefix | str, egress_pops: Sequence[str],
                 origin: str = "") -> None:
        """Announce *prefix* from *egress_pops*.

        A later announcement of the same prefix replaces the earlier one
        (routing tables in the paper are recomputed once per day).
        """
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        for pop in egress_pops:
            self._network.pop(pop)
        route = BGPRoute(prefix=prefix, egress_pops=tuple(egress_pops), origin=origin)
        self._table.insert(prefix, route)
        self._routes.append(route)

    @classmethod
    def from_customers(cls, network: Network,
                       customers: Optional[Iterable[Customer]] = None) -> "BGPTable":
        """Build a table announcing every customer prefix from its PoP(s).

        Multihomed customers are announced from all their attachment PoPs,
        which is what makes hot-potato egress selection (and the
        INGRESS-SHIFT anomaly) possible.
        """
        table = cls(network)
        for customer in (customers if customers is not None else network.customers):
            for prefix_text in customer.prefixes:
                table.announce(prefix_text, customer.attachment_pops, origin=customer.name)
        return table

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._table)

    @property
    def routes(self) -> List[BGPRoute]:
        """All announced routes (most recent announcement per prefix wins on lookup)."""
        return list(self._routes)

    def lookup(self, address: int) -> Optional[BGPRoute]:
        """Longest-prefix-match lookup of *address*."""
        return self._table.lookup(address)

    def egress_pop(self, address: int, ingress_pop: Optional[str] = None,
                   igp: Optional[IGPRouting] = None) -> Optional[str]:
        """Resolve the egress PoP for a destination *address*.

        When the covering route is announced from several PoPs the choice is
        hot-potato: the candidate with minimum IGP distance from
        *ingress_pop* (requires *igp*); otherwise the first announced PoP.
        Returns ``None`` when no route covers the address.
        """
        route = self._table.lookup(address)
        if route is None:
            return None
        if len(route.egress_pops) == 1:
            return route.egress_pops[0]
        if ingress_pop is not None and igp is not None:
            choice = igp.closest_pop(route.egress_pops, ingress_pop)
            if choice is not None:
                return choice
        return route.egress_pops[0]

    def coverage_fraction(self, addresses: Iterable[int]) -> float:
        """Fraction of *addresses* covered by some route (diagnostic helper)."""
        addresses = list(addresses)
        require(len(addresses) > 0, "addresses must be non-empty")
        covered = sum(1 for a in addresses if self._table.covers(a))
        return covered / len(addresses)
