"""Router configuration files.

The paper identifies the *ingress* PoP of a flow "by inspecting the router
configuration files for interfaces connecting Abilene's customers and peers";
it also uses the configs to resolve customer addresses missing from the BGP
tables.  This module models just enough of a router configuration to support
that: a list of access interfaces, each bound to a customer/peer and the
prefixes reachable through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.routing.prefixes import Prefix, PrefixTable
from repro.topology.network import Network
from repro.utils.validation import require

__all__ = ["InterfaceConfig", "RouterConfig", "build_router_configs"]


@dataclass(frozen=True)
class InterfaceConfig:
    """An access interface on a backbone router.

    Parameters
    ----------
    name:
        Interface name, e.g. ``"ge-0/1/0"``.
    description:
        Free-form description; by convention names the attached customer.
    customer:
        Name of the attached customer or peer.
    prefixes:
        Prefixes reachable through this interface.
    """

    name: str
    description: str
    customer: str
    prefixes: Tuple[str, ...] = ()

    def parsed_prefixes(self) -> List[Prefix]:
        """The interface prefixes parsed into :class:`Prefix` objects."""
        return [Prefix.parse(p) for p in self.prefixes]


@dataclass
class RouterConfig:
    """Configuration of one backbone router: its PoP and access interfaces."""

    router: str
    pop: str
    interfaces: List[InterfaceConfig] = field(default_factory=list)

    def add_interface(self, interface: InterfaceConfig) -> None:
        """Append an access interface."""
        self.interfaces.append(interface)

    def customer_prefixes(self) -> List[Tuple[Prefix, str]]:
        """All (prefix, customer) pairs configured on this router."""
        pairs: List[Tuple[Prefix, str]] = []
        for interface in self.interfaces:
            for prefix in interface.parsed_prefixes():
                pairs.append((prefix, interface.customer))
        return pairs

    def render(self) -> str:
        """Render a Juniper-flavoured textual configuration (for examples/docs)."""
        lines = [f"## router {self.router} (pop {self.pop})", "interfaces {"]
        for index, interface in enumerate(self.interfaces):
            lines.append(f"    {interface.name} {{")
            lines.append(f'        description "{interface.description}";')
            for prefix in interface.prefixes:
                lines.append(f"        family inet {{ address {prefix}; }}")
            lines.append("    }")
        lines.append("}")
        return "\n".join(lines)


def build_router_configs(network: Network) -> Dict[str, RouterConfig]:
    """Derive router configurations from the network's customer attachments.

    Every customer gets one access interface on the (first) backbone router
    of each PoP it attaches to; the interface carries the customer's
    prefixes.  The result maps router name → configuration.
    """
    configs: Dict[str, RouterConfig] = {}
    for router in network.routers:
        configs[router.name] = RouterConfig(router=router.name, pop=router.pop)

    for customer in network.customers:
        for pop_index, pop_name in enumerate(customer.attachment_pops):
            routers = network.routers_at(pop_name)
            require(len(routers) > 0, f"PoP {pop_name!r} has no routers")
            router_name = routers[0].name
            interface = InterfaceConfig(
                name=f"ge-{pop_index}/0/{len(configs[router_name].interfaces)}",
                description=f"to {customer.name}",
                customer=customer.name,
                prefixes=customer.prefixes,
            )
            configs[router_name].add_interface(interface)
    return configs


def ingress_prefix_table(configs: Iterable[RouterConfig],
                         network: Network) -> PrefixTable[str]:
    """Build a prefix → ingress-PoP table from router configurations.

    When a prefix appears on interfaces at several PoPs (a multihomed
    customer) the customer's *primary* attachment wins; the resolver may
    override this per-flow (e.g. during an ingress shift).
    """
    table: PrefixTable[str] = PrefixTable()
    chosen: Dict[Prefix, Tuple[bool, str]] = {}
    for config in configs:
        for prefix, customer_name in config.customer_prefixes():
            try:
                primary_pop = network.customer(customer_name).pop
            except KeyError:
                primary_pop = config.pop
            is_primary = config.pop == primary_pop
            current = chosen.get(prefix)
            if current is None or (is_primary and not current[0]):
                chosen[prefix] = (is_primary, config.pop)
    for prefix, (_is_primary, pop) in chosen.items():
        table.insert(prefix, pop)
    return table
