"""IS-IS-like intra-domain routing.

The paper's measurement pipeline uses ISIS (plus BGP) tables to resolve the
egress PoP of each flow.  Here we compute shortest paths over the backbone
router graph with Dijkstra (via networkx), expose next-hop / path / egress
queries, and support link and PoP failures so that the OUTAGE and
INGRESS-SHIFT anomalies can reroute traffic the way a real IGP would.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.topology.network import Network
from repro.utils.validation import require

__all__ = ["IGPRouting"]


class IGPRouting:
    """Shortest-path routing over a :class:`~repro.topology.network.Network`.

    Parameters
    ----------
    network:
        The backbone network.
    failed_links:
        Router-level directed links ``(src_router, dst_router)`` to exclude,
        e.g. during a simulated outage.
    failed_pops:
        PoPs whose routers are entirely removed from the graph (a full PoP
        outage, like the LOSA maintenance event in the paper).
    """

    def __init__(
        self,
        network: Network,
        failed_links: Iterable[Tuple[str, str]] = (),
        failed_pops: Iterable[str] = (),
    ) -> None:
        self._network = network
        self._failed_links: FrozenSet[Tuple[str, str]] = frozenset(failed_links)
        self._failed_pops: FrozenSet[str] = frozenset(failed_pops)
        for pop in self._failed_pops:
            network.pop(pop)  # validates existence
        self._graph = self._build_graph()
        self._paths: Dict[str, Dict[str, List[str]]] = {}
        self._distances: Dict[str, Dict[str, float]] = {}
        self._compute_paths()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_graph(self) -> nx.DiGraph:
        graph = self._network.router_graph()
        for pop in self._failed_pops:
            for router in self._network.routers_at(pop):
                if graph.has_node(router.name):
                    graph.remove_node(router.name)
        for src, dst in self._failed_links:
            if graph.has_edge(src, dst):
                graph.remove_edge(src, dst)
        return graph

    def _compute_paths(self) -> None:
        for source in self._graph.nodes:
            lengths, paths = nx.single_source_dijkstra(self._graph, source, weight="weight")
            self._paths[source] = paths
            self._distances[source] = lengths

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> Network:
        """The underlying network."""
        return self._network

    @property
    def failed_pops(self) -> FrozenSet[str]:
        """PoPs excluded from the routing graph."""
        return self._failed_pops

    @property
    def failed_links(self) -> FrozenSet[Tuple[str, str]]:
        """Router-level links excluded from the routing graph."""
        return self._failed_links

    def is_reachable(self, src_pop: str, dst_pop: str) -> bool:
        """Whether traffic from *src_pop* can reach *dst_pop*."""
        if src_pop in self._failed_pops or dst_pop in self._failed_pops:
            return False
        if src_pop == dst_pop:
            return True
        src_router = self._default_router(src_pop)
        dst_router = self._default_router(dst_pop)
        if src_router is None or dst_router is None:
            return False
        return dst_router in self._paths.get(src_router, {})

    def router_path(self, src_pop: str, dst_pop: str) -> List[str]:
        """Router-level shortest path between two PoPs.

        Returns an empty list when the destination is unreachable, and a
        single-element list for intra-PoP (self-pair) traffic.
        """
        self._network.pop(src_pop)
        self._network.pop(dst_pop)
        src_router = self._default_router(src_pop)
        dst_router = self._default_router(dst_pop)
        if src_router is None or dst_router is None:
            return []
        if src_pop == dst_pop:
            return [src_router]
        return list(self._paths.get(src_router, {}).get(dst_router, []))

    def pop_path(self, src_pop: str, dst_pop: str) -> List[str]:
        """PoP-level shortest path (deduplicated router path)."""
        path = self.router_path(src_pop, dst_pop)
        pops: List[str] = []
        for router_name in path:
            pop = self._network.router(router_name).pop
            if not pops or pops[-1] != pop:
                pops.append(pop)
        return pops

    def distance(self, src_pop: str, dst_pop: str) -> float:
        """IGP distance between two PoPs (``inf`` when unreachable)."""
        if src_pop == dst_pop:
            return 0.0
        src_router = self._default_router(src_pop)
        dst_router = self._default_router(dst_pop)
        if src_router is None or dst_router is None:
            return float("inf")
        return float(self._distances.get(src_router, {}).get(dst_router, float("inf")))

    def next_hop(self, src_pop: str, dst_pop: str) -> Optional[str]:
        """Next-hop PoP from *src_pop* toward *dst_pop* (``None`` if unreachable)."""
        path = self.pop_path(src_pop, dst_pop)
        if len(path) < 2:
            return None
        return path[1]

    def closest_pop(self, candidate_pops: Sequence[str], from_pop: str) -> Optional[str]:
        """The candidate PoP with minimum IGP distance from *from_pop*.

        Used for hot-potato style egress selection when a destination prefix
        is reachable through multiple egress PoPs.  Returns ``None`` when no
        candidate is reachable.
        """
        require(len(candidate_pops) > 0, "candidate_pops must be non-empty")
        best: Optional[str] = None
        best_distance = float("inf")
        for pop in candidate_pops:
            if pop in self._failed_pops:
                continue
            dist = self.distance(from_pop, pop)
            if dist < best_distance:
                best, best_distance = pop, dist
        return best

    def with_failures(
        self,
        failed_links: Iterable[Tuple[str, str]] = (),
        failed_pops: Iterable[str] = (),
    ) -> "IGPRouting":
        """Return a new routing instance with additional failures applied."""
        return IGPRouting(
            self._network,
            failed_links=set(self._failed_links) | set(failed_links),
            failed_pops=set(self._failed_pops) | set(failed_pops),
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _default_router(self, pop_name: str) -> Optional[str]:
        if pop_name in self._failed_pops:
            return None
        routers = self._network.routers_at(pop_name)
        for router in routers:
            if self._graph.has_node(router.name):
                return router.name
        return None
