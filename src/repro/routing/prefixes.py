"""IPv4 address and prefix arithmetic plus longest-prefix matching.

Addresses are represented as plain ``int`` (0..2^32-1) throughout the flow
pipeline for speed; the helpers here convert to and from dotted-quad strings
and implement a binary-trie :class:`PrefixTable` for longest-prefix match,
which is what both the BGP RIB and the customer-interface lookup build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.utils.rng import RandomState, spawn_rng
from repro.utils.validation import require

__all__ = [
    "parse_ipv4",
    "format_ipv4",
    "Prefix",
    "PrefixTable",
    "random_address_in_prefix",
]

_MAX_ADDRESS = 2**32 - 1

T = TypeVar("T")


def parse_ipv4(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise ValueError(f"invalid IPv4 address {text!r}") from exc
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(address: int) -> str:
    """Format an integer address as a dotted-quad string."""
    if not 0 <= address <= _MAX_ADDRESS:
        raise ValueError(f"address {address} out of IPv4 range")
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (network address + mask length)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        require(0 <= self.length <= 32, "prefix length must be in [0, 32]")
        require(0 <= self.network <= _MAX_ADDRESS, "network address out of range")
        if self.network & ~self.mask:
            raise ValueError(
                f"network address {format_ipv4(self.network)} has host bits set "
                f"for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation (bare addresses are /32)."""
        if "/" in text:
            addr_text, length_text = text.split("/", 1)
            length = int(length_text)
        else:
            addr_text, length = text, 32
        address = parse_ipv4(addr_text)
        mask = _mask_for(length)
        return cls(network=address & mask, length=length)

    @property
    def mask(self) -> int:
        """The netmask as an integer."""
        return _mask_for(self.length)

    @property
    def n_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    @property
    def first_address(self) -> int:
        """Lowest address in the prefix."""
        return self.network

    @property
    def last_address(self) -> int:
        """Highest address in the prefix."""
        return self.network | ~self.mask & _MAX_ADDRESS

    def contains(self, address: int) -> bool:
        """Whether *address* falls inside the prefix."""
        return (address & self.mask) == self.network

    def subnets(self, new_length: int) -> List["Prefix"]:
        """Enumerate the subnets of the prefix at *new_length*."""
        require(new_length >= self.length, "new_length must be >= current length")
        require(new_length <= 32, "new_length must be <= 32")
        step = 1 << (32 - new_length)
        return [
            Prefix(network=self.network + i * step, length=new_length)
            for i in range(1 << (new_length - self.length))
        ]

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


def _mask_for(length: int) -> int:
    require(0 <= length <= 32, "prefix length must be in [0, 32]")
    if length == 0:
        return 0
    return (_MAX_ADDRESS << (32 - length)) & _MAX_ADDRESS


def random_address_in_prefix(prefix: Prefix, rng: RandomState = None) -> int:
    """Draw a uniformly random address inside *prefix*."""
    generator = spawn_rng(rng)
    offset = int(generator.integers(0, prefix.n_addresses))
    return prefix.network + offset


class _TrieNode(Generic[T]):
    """Node of the binary prefix trie."""

    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode[T]"]] = [None, None]
        self.value: Optional[T] = None
        self.has_value = False


class PrefixTable(Generic[T]):
    """Longest-prefix-match table mapping prefixes to arbitrary values.

    Implemented as a binary trie over address bits; lookups walk at most 32
    levels and return the value of the most specific covering prefix.
    """

    def __init__(self) -> None:
        self._root: _TrieNode[T] = _TrieNode()
        self._entries: Dict[Prefix, T] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[Prefix, T]]:
        return iter(self._entries.items())

    def insert(self, prefix: Prefix, value: T) -> None:
        """Insert or replace the entry for *prefix*."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        node.value = value
        node.has_value = True
        self._entries[prefix] = value

    def insert_str(self, prefix_text: str, value: T) -> None:
        """Insert using ``"a.b.c.d/len"`` notation."""
        self.insert(Prefix.parse(prefix_text), value)

    def lookup(self, address: int) -> Optional[T]:
        """Longest-prefix-match lookup; returns ``None`` when no prefix covers."""
        node = self._root
        best: Optional[T] = node.value if node.has_value else None
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = node.value
        return best

    def lookup_prefix(self, address: int) -> Optional[Tuple[Prefix, T]]:
        """Like :meth:`lookup` but also returns the matching prefix."""
        best: Optional[Tuple[Prefix, T]] = None
        best_length = -1
        for prefix, value in self._entries.items():
            if prefix.contains(address) and prefix.length > best_length:
                best = (prefix, value)
                best_length = prefix.length
        return best

    def covers(self, address: int) -> bool:
        """Whether any prefix in the table covers *address*."""
        return self.lookup(address) is not None

    def prefixes(self) -> List[Prefix]:
        """All prefixes currently in the table."""
        return list(self._entries.keys())
