"""Ingress/egress PoP resolution for flow records.

This is the heart of the paper's data-reduction step: every sampled IP flow
is mapped to an Origin-Destination pair of PoPs.

* The **ingress** PoP is taken from the router where the flow was observed
  (the paper collects flow records at every router, so the observing
  router's PoP is the ingress); when resolving records without an observing
  router, the source address is matched against customer interfaces from
  the router configurations.
* The **egress** PoP is resolved by longest-prefix-match against the BGP
  table (augmented with configuration prefixes), with hot-potato
  tie-breaking for multihomed prefixes.
* Abilene anonymizes the last 11 bits of destination addresses; the
  resolver reproduces this (:func:`anonymize_address`) and the resolution
  statistics show it rarely matters because few routing prefixes are longer
  than /21.

The paper reports that ≥ 93% of IP flows (≥ 90% of bytes) resolve; the
:class:`ResolutionStats` returned by :meth:`PoPResolver.resolve_records`
measures the same quantities for experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.routing.bgp import BGPTable
from repro.routing.config import RouterConfig, build_router_configs, ingress_prefix_table
from repro.routing.igp import IGPRouting
from repro.routing.prefixes import PrefixTable
from repro.topology.network import Network

__all__ = ["anonymize_address", "ResolutionStats", "PoPResolver"]

#: Number of low-order destination-address bits Abilene zeroes for privacy.
ANONYMIZED_BITS = 11


def anonymize_address(address: int, bits: int = ANONYMIZED_BITS) -> int:
    """Zero the last *bits* bits of *address* (Abilene's destination anonymization)."""
    if bits <= 0:
        return address
    mask = ~((1 << bits) - 1) & 0xFFFFFFFF
    return address & mask


@dataclass
class ResolutionStats:
    """Counters describing how well flow records resolved to OD pairs."""

    total_flows: int = 0
    resolved_flows: int = 0
    total_bytes: float = 0.0
    resolved_bytes: float = 0.0
    unresolved_ingress: int = 0
    unresolved_egress: int = 0

    @property
    def flow_resolution_rate(self) -> float:
        """Fraction of flow records fully resolved to an OD pair."""
        return self.resolved_flows / self.total_flows if self.total_flows else 0.0

    @property
    def byte_resolution_rate(self) -> float:
        """Fraction of byte volume carried by resolved flow records."""
        return self.resolved_bytes / self.total_bytes if self.total_bytes else 0.0

    def merge(self, other: "ResolutionStats") -> "ResolutionStats":
        """Return the element-wise sum of two stats objects."""
        return ResolutionStats(
            total_flows=self.total_flows + other.total_flows,
            resolved_flows=self.resolved_flows + other.resolved_flows,
            total_bytes=self.total_bytes + other.total_bytes,
            resolved_bytes=self.resolved_bytes + other.resolved_bytes,
            unresolved_ingress=self.unresolved_ingress + other.unresolved_ingress,
            unresolved_egress=self.unresolved_egress + other.unresolved_egress,
        )


class PoPResolver:
    """Resolve flow records to (ingress PoP, egress PoP) pairs.

    Parameters
    ----------
    network:
        The backbone network.
    bgp_table:
        BGP RIB used for egress resolution.  When ``None`` it is built from
        the network's customer prefixes.
    igp:
        IGP routing used for hot-potato tie-breaking and reachability.  When
        ``None`` a failure-free instance is built.
    router_configs:
        Router configurations used for ingress resolution of records that do
        not carry an observation router, and to augment the egress table with
        customer prefixes missing from BGP (the paper does the same).
    anonymized_bits:
        Number of destination-address bits zeroed before egress lookup.
    """

    def __init__(
        self,
        network: Network,
        bgp_table: Optional[BGPTable] = None,
        igp: Optional[IGPRouting] = None,
        router_configs: Optional[Dict[str, RouterConfig]] = None,
        anonymized_bits: int = ANONYMIZED_BITS,
    ) -> None:
        self._network = network
        self._igp = igp if igp is not None else IGPRouting(network)
        self._bgp = bgp_table if bgp_table is not None else BGPTable.from_customers(network)
        configs = router_configs if router_configs is not None else build_router_configs(network)
        self._configs = configs
        self._ingress_table: PrefixTable[str] = ingress_prefix_table(configs.values(), network)
        self._router_pop: Dict[str, str] = {r.name: r.pop for r in network.routers}
        self._anonymized_bits = anonymized_bits

    # ------------------------------------------------------------------ #
    # single-record resolution
    # ------------------------------------------------------------------ #
    def resolve_ingress(self, src_address: int,
                        observing_router: Optional[str] = None) -> Optional[str]:
        """Resolve the ingress PoP of a record.

        Prefers the observing router's PoP (the record was exported by the
        ingress router); falls back to matching the source address against
        customer interface prefixes.
        """
        if observing_router is not None:
            pop = self._router_pop.get(observing_router)
            if pop is not None:
                return pop
        return self._ingress_table.lookup(src_address)

    def resolve_egress(self, dst_address: int,
                       ingress_pop: Optional[str] = None) -> Optional[str]:
        """Resolve the egress PoP of a record from its destination address.

        The destination address is anonymized first (as in the Abilene data),
        then looked up in the BGP table with hot-potato tie-breaking.
        Customer prefixes absent from BGP are covered because the table is
        augmented from router configurations at construction time.
        """
        anonymized = anonymize_address(dst_address, self._anonymized_bits)
        egress = self._bgp.egress_pop(anonymized, ingress_pop=ingress_pop, igp=self._igp)
        if egress is not None:
            return egress
        # Fall back to the configuration-derived ingress table: customer
        # prefixes not present in BGP (the paper's augmentation step).
        return self._ingress_table.lookup(anonymized)

    def resolve(self, src_address: int, dst_address: int,
                observing_router: Optional[str] = None) -> Optional[Tuple[str, str]]:
        """Resolve a record to an (ingress, egress) PoP pair, or ``None``."""
        ingress = self.resolve_ingress(src_address, observing_router)
        if ingress is None:
            return None
        egress = self.resolve_egress(dst_address, ingress_pop=ingress)
        if egress is None:
            return None
        return ingress, egress

    # ------------------------------------------------------------------ #
    # batch resolution
    # ------------------------------------------------------------------ #
    def resolve_records(self, records: Iterable) -> Tuple[List, ResolutionStats]:
        """Resolve an iterable of :class:`~repro.flows.records.FlowRecord`.

        Returns the list of records annotated with ``ingress_pop`` and
        ``egress_pop`` (unresolvable records are dropped, as in the paper)
        and the resolution statistics.
        """
        stats = ResolutionStats()
        resolved = []
        for record in records:
            stats.total_flows += 1
            stats.total_bytes += record.bytes
            ingress = self.resolve_ingress(record.src_address, record.observing_router)
            if ingress is None:
                stats.unresolved_ingress += 1
                continue
            egress = self.resolve_egress(record.dst_address, ingress_pop=ingress)
            if egress is None:
                stats.unresolved_egress += 1
                continue
            stats.resolved_flows += 1
            stats.resolved_bytes += record.bytes
            resolved.append(record.with_od(ingress, egress))
        return resolved, stats

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> Network:
        """The underlying network."""
        return self._network

    @property
    def bgp_table(self) -> BGPTable:
        """The BGP table used for egress resolution."""
        return self._bgp

    @property
    def igp(self) -> IGPRouting:
        """The IGP routing instance used for tie-breaking."""
        return self._igp

    @property
    def router_configs(self) -> Dict[str, RouterConfig]:
        """Router configurations used for ingress resolution."""
        return dict(self._configs)

    @property
    def router_pop_map(self) -> Dict[str, str]:
        """Router name → PoP name map (the live dict; treat as read-only).

        Bulk consumers (:mod:`repro.ingest`) resolve ingress for whole
        record batches against this map instead of calling
        :meth:`resolve_ingress` per record.
        """
        return self._router_pop

    @property
    def ingress_table(self) -> PrefixTable[str]:
        """Source-address → PoP prefix table (the resolver's fallback)."""
        return self._ingress_table

    @property
    def anonymized_bits(self) -> int:
        """Destination-address bits zeroed before egress lookup."""
        return self._anonymized_bits
