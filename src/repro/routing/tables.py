"""Daily routing-table snapshots.

The paper notes that its routing tables (BGP + ISIS) are "computed once a
day and stay unchanged for that day".  :class:`SnapshotSeries` reproduces
that operational detail: a sequence of dated :class:`RoutingSnapshot`
objects, each bundling the BGP table, IGP state, and resolver valid for one
day.  The dataset generator uses it so that an internal routing change (an
INGRESS-SHIFT) can take effect only from the next snapshot — the same
limitation the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.routing.bgp import BGPTable
from repro.routing.igp import IGPRouting
from repro.routing.resolver import PoPResolver
from repro.topology.network import Network
from repro.utils.timebins import SECONDS_PER_DAY
from repro.utils.validation import require

__all__ = ["RoutingSnapshot", "SnapshotSeries"]


@dataclass
class RoutingSnapshot:
    """Routing state valid for one day.

    Parameters
    ----------
    day_index:
        Day number (0-based) from the start of the measurement period.
    resolver:
        The PoP resolver built from that day's BGP/ISIS/config state.
    failed_pops, failed_links:
        Failures active when the snapshot was taken (informational).
    """

    day_index: int
    resolver: PoPResolver
    failed_pops: Tuple[str, ...] = ()
    failed_links: Tuple[Tuple[str, str], ...] = ()

    @property
    def igp(self) -> IGPRouting:
        """The IGP state embedded in the snapshot's resolver."""
        return self.resolver.igp

    @property
    def bgp(self) -> BGPTable:
        """The BGP table embedded in the snapshot's resolver."""
        return self.resolver.bgp_table


class SnapshotSeries:
    """A sequence of daily routing snapshots covering a measurement period.

    Parameters
    ----------
    network:
        The backbone network.
    n_days:
        Number of days to cover.
    start_seconds:
        Absolute time of day 0 (seconds), matching the dataset's binning.
    """

    def __init__(self, network: Network, n_days: int, start_seconds: int = 0) -> None:
        require(n_days > 0, "n_days must be positive")
        self._network = network
        self._n_days = n_days
        self._start_seconds = start_seconds
        self._snapshots: Dict[int, RoutingSnapshot] = {}
        self._default = RoutingSnapshot(day_index=-1, resolver=PoPResolver(network))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def set_snapshot(self, day_index: int, resolver: PoPResolver,
                     failed_pops: Iterable[str] = (),
                     failed_links: Iterable[Tuple[str, str]] = ()) -> None:
        """Install a custom snapshot for *day_index*."""
        require(0 <= day_index < self._n_days, "day_index out of range")
        self._snapshots[day_index] = RoutingSnapshot(
            day_index=day_index,
            resolver=resolver,
            failed_pops=tuple(failed_pops),
            failed_links=tuple(failed_links),
        )

    def apply_failure(self, day_index: int, failed_pops: Iterable[str] = (),
                      failed_links: Iterable[Tuple[str, str]] = ()) -> None:
        """Install a snapshot for *day_index* with the given failures applied."""
        failed_pops = tuple(failed_pops)
        failed_links = tuple(failed_links)
        igp = IGPRouting(self._network, failed_links=failed_links, failed_pops=failed_pops)
        resolver = PoPResolver(self._network, igp=igp)
        self.set_snapshot(day_index, resolver, failed_pops=failed_pops,
                          failed_links=failed_links)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n_days(self) -> int:
        """Number of days covered by the series."""
        return self._n_days

    def day_of(self, time_seconds: float) -> int:
        """Day index containing *time_seconds*."""
        offset = time_seconds - self._start_seconds
        require(offset >= 0, "time before the start of the snapshot series")
        day = int(offset // SECONDS_PER_DAY)
        require(day < self._n_days, "time beyond the end of the snapshot series")
        return day

    def snapshot_for_day(self, day_index: int) -> RoutingSnapshot:
        """Snapshot valid on *day_index* (the default, failure-free one if unset)."""
        require(0 <= day_index < self._n_days, "day_index out of range")
        return self._snapshots.get(day_index, self._default)

    def snapshot_at(self, time_seconds: float) -> RoutingSnapshot:
        """Snapshot valid at absolute time *time_seconds*."""
        return self.snapshot_for_day(self.day_of(time_seconds))

    def resolver_at(self, time_seconds: float) -> PoPResolver:
        """Resolver valid at absolute time *time_seconds*."""
        return self.snapshot_at(time_seconds).resolver

    def days_with_failures(self) -> List[int]:
        """Day indices that have a non-default snapshot installed."""
        return sorted(self._snapshots.keys())
