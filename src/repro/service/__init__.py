"""Detection-as-a-service: durable events, alert delivery, graceful stops.

The service layer turns the streaming diagnosis pipeline into a
long-running process:

* :mod:`repro.service.records` — deterministic per-event severity /
  confidence / summary records;
* :mod:`repro.service.store` — a thread-safe, idempotent sqlite event
  store (postgres-ready schema) with time-window/type/severity queries
  and a byte-identity ``table_digest``;
* :mod:`repro.service.sinks` — pluggable alert sinks behind a
  retry/backoff/dedup/dead-letter dispatcher;
* :mod:`repro.service.runner` — :class:`DetectionService`: the run loop
  with SIGTERM/SIGINT graceful shutdown, checkpointed restarts, and the
  service CLI (``python -m repro.service``).

``tools/serve_status.py`` serves the store and the health snapshot over
read-only HTTP.
"""

from repro.service.records import (SEVERITY_LEVELS, EventRecord, RunSummary,
                                   classify_event, event_key, od_digest,
                                   summarize_records)
from repro.service.runner import DetectionService, ServiceResult
from repro.service.sinks import (AlertDispatcher, AlertSink,
                                 JsonLinesAlertSink, StdoutSink, WebhookSink)
from repro.service.store import EventStore, StoredEvent

__all__ = [
    "SEVERITY_LEVELS",
    "EventRecord",
    "RunSummary",
    "classify_event",
    "event_key",
    "od_digest",
    "summarize_records",
    "EventStore",
    "StoredEvent",
    "AlertSink",
    "StdoutSink",
    "JsonLinesAlertSink",
    "WebhookSink",
    "AlertDispatcher",
    "DetectionService",
    "ServiceResult",
]
