"""``python -m repro.service`` — run the detection service CLI."""

import sys

from repro.service.runner import main

if __name__ == "__main__":
    sys.exit(main())
