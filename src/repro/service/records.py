"""Structured per-event service records: severity, confidence, summary.

The detection pipeline emits :class:`~repro.core.events.AnomalyEvent`
objects — pure detection facts (combination label, bin span, OD flows,
triggering statistics).  An operator-facing service needs one more layer:
*how much should I care about this one*.  :func:`classify_event` derives a
deterministic :class:`EventRecord` — a severity tier from a fixed taxonomy,
a confidence score in ``[0, 1]``, and a one-line human summary — from the
event alone, so the record is a pure function of the event and two runs
over the same stream produce byte-identical records (the property the
idempotent event store's parity guarantee builds on).

:class:`RunSummary` is the run-level roll-up (total events, counts by
label and severity, mean confidence) served by ``tools/serve_status.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.core.events import COMBINATION_LABELS, AnomalyEvent
from repro.utils.validation import require

__all__ = ["SEVERITY_LEVELS", "EventRecord", "RunSummary", "classify_event",
           "event_key", "od_digest", "summarize_records"]

#: Severity tiers, ascending.  ``info``: single-type, short, small blast
#: radius; ``warning``: corroborated or sustained; ``critical``: seen in
#: every traffic type, or strongly corroborated and wide.
SEVERITY_LEVELS = ("info", "warning", "critical")


def od_digest(od_flows: Iterable[int]) -> str:
    """Order-insensitive digest of an OD-flow set (hex, 16 chars)."""
    canonical = ",".join(str(f) for f in sorted(int(f) for f in od_flows))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:16]


def event_key(event: AnomalyEvent) -> str:
    """Stable identity of an event: ``(label, start_bin, od-set digest)``.

    This is the event store's primary key: a re-delivered or
    checkpoint-replayed event maps onto the same key, so upserts are
    idempotent.  The end bin is deliberately excluded — an event whose run
    is re-closed after a replay with a longer tail updates the existing
    row instead of duplicating it.
    """
    digest = od_digest(event.od_flows)
    return f"{event.traffic_label}:{int(event.start_bin)}:{digest}"


@dataclass(frozen=True)
class EventRecord:
    """One event, annotated for operators (the stored/alerted unit)."""

    key: str
    traffic_label: str
    start_bin: int
    end_bin: int
    duration_bins: int
    od_flows: tuple
    n_od_flows: int
    statistics: tuple
    severity: str
    confidence: float
    summary: str

    def __post_init__(self) -> None:
        require(self.severity in SEVERITY_LEVELS,
                f"severity must be one of {SEVERITY_LEVELS}")
        require(0.0 <= self.confidence <= 1.0,
                "confidence must lie in [0, 1]")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (alert payloads, HTTP responses)."""
        return {
            "key": self.key,
            "traffic_label": self.traffic_label,
            "start_bin": self.start_bin,
            "end_bin": self.end_bin,
            "duration_bins": self.duration_bins,
            "od_flows": list(self.od_flows),
            "n_od_flows": self.n_od_flows,
            "statistics": list(self.statistics),
            "severity": self.severity,
            "confidence": self.confidence,
            "summary": self.summary,
        }


def classify_event(event: AnomalyEvent) -> EventRecord:
    """Derive the deterministic service record of one anomaly event.

    The confidence score starts from how many traffic types corroborate
    the event (the paper's central multi-type fusion idea: an anomaly seen
    in bytes *and* packets *and* flows is far less likely to be a false
    alarm) and adds smaller boosts for both statistics triggering, a
    sustained span, and a wide OD footprint.  Severity is thresholded from
    the same evidence.
    """
    n_types = len(event.traffic_label)
    both_statistics = {"spe", "t2"} <= set(event.statistics)
    confidence = 0.50 + 0.15 * (n_types - 1)
    if both_statistics:
        confidence += 0.10
    if event.duration_bins >= 2:
        confidence += 0.05
    if event.duration_bins >= 6:
        confidence += 0.05
    if event.n_od_flows >= 4:
        confidence += 0.05
    confidence = min(confidence, 0.99)

    if n_types == 3 or (n_types == 2 and confidence >= 0.85):
        severity = "critical"
    elif n_types == 2 or confidence >= 0.70:
        severity = "warning"
    else:
        severity = "info"

    statistics = tuple(sorted(event.statistics))
    summary = (
        f"{event.traffic_label} anomaly over bins "
        f"{event.start_bin}-{event.end_bin} ({event.duration_bins} bin"
        f"{'s' if event.duration_bins != 1 else ''}), "
        f"{event.n_od_flows} OD flow"
        f"{'s' if event.n_od_flows != 1 else ''}, "
        f"statistics {'/'.join(statistics) if statistics else 'n/a'}"
    )
    return EventRecord(
        key=event_key(event),
        traffic_label=event.traffic_label,
        start_bin=int(event.start_bin),
        end_bin=int(event.end_bin),
        duration_bins=int(event.duration_bins),
        od_flows=tuple(sorted(int(f) for f in event.od_flows)),
        n_od_flows=int(event.n_od_flows),
        statistics=statistics,
        severity=severity,
        confidence=round(confidence, 4),
        summary=summary,
    )


@dataclass
class RunSummary:
    """Run-level roll-up of the stored records (the service's Table 1)."""

    total_events: int = 0
    events_by_label: Dict[str, int] = field(default_factory=dict)
    events_by_severity: Dict[str, int] = field(default_factory=dict)
    mean_confidence: float = 0.0
    max_end_bin: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_events": self.total_events,
            "events_by_label": dict(self.events_by_label),
            "events_by_severity": dict(self.events_by_severity),
            "mean_confidence": self.mean_confidence,
            "max_end_bin": self.max_end_bin,
        }


def summarize_records(records: Iterable[Mapping[str, object]]) -> RunSummary:
    """Fold stored records (dict form) into a :class:`RunSummary`."""
    by_label = {label: 0 for label in COMBINATION_LABELS}
    by_severity = {level: 0 for level in SEVERITY_LEVELS}
    total = 0
    confidence_sum = 0.0
    max_end: Optional[int] = None
    for record in records:
        total += 1
        by_label[str(record["traffic_label"])] += 1
        by_severity[str(record["severity"])] += 1
        confidence_sum += float(record["confidence"])
        end_bin = int(record["end_bin"])
        max_end = end_bin if max_end is None else max(max_end, end_bin)
    return RunSummary(
        total_events=total,
        events_by_label=by_label,
        events_by_severity=by_severity,
        mean_confidence=round(confidence_sum / total, 4) if total else 0.0,
        max_end_bin=max_end,
    )
