"""The long-running detection service: pipeline + store + alerts + signals.

:class:`DetectionService` wraps the streaming detection pipeline into a
process you can run indefinitely, SIGTERM at will, and restart without
losing or duplicating a single event:

* every batch of newly closed events is handed off (via the pipeline's
  ``on_events`` hook) to the :class:`~repro.service.store.EventStore` —
  idempotent upserts — and only the events that created **new** rows are
  dispatched to the alert sinks, so a replay never re-pages anyone;
* SIGTERM/SIGINT set a stop flag checked between chunks: the in-flight
  chunk finishes, a crash-consistent checkpoint is written via the
  existing :func:`~repro.streaming.checkpoint.save_checkpoint`, the store
  and sinks are flushed, and :meth:`run` returns cleanly (the CLI exits
  0);
* on restart the service restores from the checkpoint directory and
  resumes at :attr:`resume_bin`.  PR 3's restart-parity guarantee (the
  restored detector emits the identical remaining events) plus the
  idempotent store yield the service's end-to-end guarantee: the event
  table of an interrupted-and-restarted run is **byte-identical** to an
  uninterrupted run's (``EventStore.table_digest``).

The module is also the service CLI (``python -m repro.service``): a
synthetic Abilene feed (or, with ``--ingest-csv``, on-disk flow-record
exports parsed by :mod:`repro.ingest`), store/checkpoint/alert paths,
optional telemetry snapshotting — the process the CI smoke job SIGTERMs
and restarts.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import signal
import sys
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.events import AnomalyEvent
from repro.flows.timeseries import TrafficType
from repro.service.records import classify_event
from repro.service.sinks import (AlertDispatcher, JsonLinesAlertSink,
                                 StdoutSink)
from repro.service.store import EventStore
from repro.streaming.checkpoint import (has_checkpoint, load_checkpoint,
                                        save_checkpoint)
from repro.streaming.config import StreamingConfig
from repro.streaming.pipeline import (StreamingNetworkDetector,
                                      StreamingReport)
from repro.streaming.sources import (IterableChunkSource, TrafficChunk,
                                     as_chunk_source)
from repro.telemetry import MetricsRegistry
from repro.utils.validation import require

__all__ = ["DetectionService", "ServiceResult", "main"]

#: Signals that trigger the graceful-shutdown sequence.
_STOP_SIGNALS = (signal.SIGTERM, signal.SIGINT)


@dataclass
class ServiceResult:
    """Outcome of one :meth:`DetectionService.run` invocation."""

    report: StreamingReport
    interrupted: bool
    events_stored: int
    events_duplicate: int
    checkpoint_dir: Optional[str]

    def to_dict(self) -> dict:
        return {
            "interrupted": self.interrupted,
            "events_stored": self.events_stored,
            "events_duplicate": self.events_duplicate,
            "checkpoint_dir": self.checkpoint_dir,
            "n_events": self.report.n_events,
            "n_bins_processed": self.report.n_bins_processed,
            "n_chunks_processed": self.report.n_chunks_processed,
        }


class DetectionService:
    """Detection-as-a-service: durable events, deduped alerts, clean stops.

    Parameters
    ----------
    config:
        Streaming configuration of the wrapped pipeline.
    store:
        The durable event store (one is created in memory when omitted —
        useful interactively, pointless for restarts).
    dispatcher:
        Alert delivery policy; ``None`` stores without alerting.
    checkpoint_dir:
        Durable state directory.  When it already holds a checkpoint
        manifest the service **resumes** from it (adopting its lineage per
        the checkpoint ownership rules); otherwise a fresh run starts and
        writes its checkpoints there.  ``None`` disables durability (no
        resume, nothing written at shutdown).
    checkpoint_every_chunks:
        Optional periodic-checkpoint cadence while streaming (a crash
        between graceful stops then replays at most this many chunks —
        all absorbed by the idempotent store).  ``None``: checkpoint only
        at shutdown.
    traffic_types:
        Types to analyze; defaults to the types of the first chunk.
    """

    def __init__(self,
                 config: StreamingConfig = StreamingConfig(),
                 store: Optional[EventStore] = None,
                 dispatcher: Optional[AlertDispatcher] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every_chunks: Optional[int] = None,
                 traffic_types: Optional[Sequence[TrafficType]] = None
                 ) -> None:
        require(checkpoint_every_chunks is None or checkpoint_every_chunks >= 1,
                "checkpoint_every_chunks must be >= 1 when given")
        require(checkpoint_every_chunks is None or checkpoint_dir is not None,
                "checkpoint_every_chunks needs a checkpoint_dir")
        self.store = store if store is not None else EventStore()
        self.dispatcher = dispatcher
        self._checkpoint_dir = (str(checkpoint_dir)
                                if checkpoint_dir is not None else None)
        self._checkpoint_every = checkpoint_every_chunks
        self._stop = threading.Event()
        self._previous_handlers: dict = {}
        self._events_stored = 0
        self._events_duplicate = 0

        restore_registry = MetricsRegistry()
        if (self._checkpoint_dir is not None
                and has_checkpoint(self._checkpoint_dir)):
            # Fallback restore: a torn or bit-rotted newest generation is
            # quarantined and the previous verified one is loaded instead
            # of killing the service at startup.
            self._detector = load_checkpoint(
                self._checkpoint_dir, fallback=True,
                registry=restore_registry)
        else:
            self._detector = StreamingNetworkDetector(
                config, traffic_types=traffic_types)
        self._detector.on_events = self._handle_events
        telemetry = self._detector.telemetry
        self.registry: MetricsRegistry = (
            telemetry.registry if telemetry is not None
            else (dispatcher.registry if dispatcher is not None
                  else MetricsRegistry()))
        # Fold restore-time fallback/quarantine counters into the
        # service's registry so the health surface reports them.
        self.registry.merge(restore_registry)
        if dispatcher is not None and telemetry is not None:
            # One registry for the whole service: alert-outcome counters
            # land next to the pipeline's, and the periodic health
            # snapshot picks both up.
            dispatcher.registry = telemetry.registry

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def detector(self) -> StreamingNetworkDetector:
        """The wrapped pipeline detector."""
        return self._detector

    @property
    def resume_bin(self) -> int:
        """Stream-global bin the next chunk must start at (0: fresh run)."""
        return self._detector.report.n_bins_processed

    @property
    def stop_requested(self) -> bool:
        """Whether a stop signal (or :meth:`request_stop`) arrived."""
        return self._stop.is_set()

    # ------------------------------------------------------------------ #
    # signals
    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        """Ask the run loop to stop after the in-flight chunk."""
        self._stop.set()

    def _handle_signal(self, signum, frame) -> None:
        self.registry.counter(
            "service_stop_signals",
            {"signal": signal.Signals(signum).name},
            help="Stop signals received by the service").inc()
        self.request_stop()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into the graceful-shutdown flag.

        Call from the main thread (CPython restricts signal handling to
        it); previous handlers are restored by :meth:`run` on exit.
        """
        for signum in _STOP_SIGNALS:
            self._previous_handlers[signum] = signal.signal(
                signum, self._handle_signal)

    def _restore_signal_handlers(self) -> None:
        for signum, handler in self._previous_handlers.items():
            signal.signal(signum, handler)
        self._previous_handlers.clear()

    # ------------------------------------------------------------------ #
    # event hand-off
    # ------------------------------------------------------------------ #
    def _handle_events(self, events: List[AnomalyEvent]) -> None:
        """Persist a batch of closed events; alert only the new rows."""
        records = {id(event): classify_event(event) for event in events}
        fresh = []
        for event in events:
            if self.store.add_event(event, records[id(event)]):
                fresh.append(event)
        self._events_stored += len(fresh)
        self._events_duplicate += len(events) - len(fresh)
        self.registry.counter(
            "service_events_stored",
            help="Events persisted as new rows").inc(len(fresh))
        if len(events) > len(fresh):
            self.registry.counter(
                "service_events_replayed",
                help="Re-delivered events absorbed by the idempotent "
                     "store").inc(len(events) - len(fresh))
        if self.dispatcher is not None:
            for event in fresh:
                self.dispatcher.dispatch(event, records[id(event)])

    # ------------------------------------------------------------------ #
    # run loop
    # ------------------------------------------------------------------ #
    def _checkpoint(self) -> None:
        if self._checkpoint_dir is not None:
            save_checkpoint(self._detector, self._checkpoint_dir)

    def run(self, source=None,
            chunks: Optional[Iterable[TrafficChunk]] = None) -> ServiceResult:
        """Consume *source* until exhaustion or a stop signal.

        *source* is anything :func:`~repro.streaming.sources.as_chunk_source`
        accepts.  A source with real suffix replay (every provided
        :class:`~repro.streaming.sources.ChunkSource`) is positioned
        automatically at :attr:`resume_bin` via ``source.resume(...)``, so
        callers hand the service the **full** stream; a plain iterable must
        already be the correctly aligned suffix (the pre-protocol contract —
        the alignment check below still enforces it).  The ``chunks=``
        keyword is a deprecated alias for *source*.

        Graceful-shutdown sequence on a stop: finish the in-flight chunk,
        write a checkpoint, flush the store and the sinks, return.  On a
        clean end of stream the aggregator tail is flushed through the
        same persistence path, then the final checkpoint is written.
        """
        if chunks is not None:
            require(source is None, "pass either source= or chunks=, not both")
            warnings.warn(
                "the chunks= keyword is deprecated; pass the stream as "
                "source= (any ChunkSource or iterable of chunks)",
                DeprecationWarning, stacklevel=2)
            source = chunks
        require(source is not None, "source is required")
        source = as_chunk_source(source)
        self._events_stored = 0
        self._events_duplicate = 0
        interrupted = False
        try:
            if not self._detector.finished:
                expected = self.resume_bin
                if expected and not isinstance(source, IterableChunkSource):
                    # Replayable sources are positioned here; bare iterables
                    # keep the old contract (caller feeds the suffix) and
                    # are only checked for alignment.
                    source = source.resume(expected)
                for n_chunks, chunk in enumerate(source, start=1):
                    require(chunk.start_bin == expected,
                            f"resume misalignment: expected a chunk "
                            f"starting at bin {expected}, got "
                            f"{chunk.start_bin} (feed the suffix of the "
                            f"original stream from resume_bin)")
                    self._detector.process_chunk(chunk)
                    expected = chunk.end_bin
                    if (self._checkpoint_every is not None
                            and n_chunks % self._checkpoint_every == 0):
                        self._checkpoint()
                    if self._stop.is_set():
                        interrupted = True
                        break
                if not interrupted:
                    self._detector.finish()
            report = self._detector.report
            self._checkpoint()
            self.store.flush()
            if self.dispatcher is not None:
                self.dispatcher.flush()
            telemetry = self._detector.telemetry
            if telemetry is not None:
                telemetry.write_snapshot()
        finally:
            self._restore_signal_handlers()
        return ServiceResult(
            report=report,
            interrupted=interrupted,
            events_stored=self._events_stored,
            events_duplicate=self._events_duplicate,
            checkpoint_dir=self._checkpoint_dir,
        )

    def close(self) -> None:
        """Release the store and sinks (idempotent)."""
        if self.dispatcher is not None:
            self.dispatcher.close()
        self.store.close()


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def _synthetic_source(chunk_size: int, days: int, seed: int):
    """The full synthetic Abilene stream as a resumable ``ChunkSource``.

    The generator is deterministic in ``(seed, block index)``, so
    ``resume(bin)`` — which :meth:`DetectionService.run` calls with the
    checkpoint's resume bin — reproduces the exact remaining chunks.
    """
    from repro.datasets.streaming import SyntheticChunkSource
    from repro.datasets.synthetic import DatasetConfig

    return SyntheticChunkSource(
        chunk_size=chunk_size,
        block_config=DatasetConfig(weeks=1.0 / 7.0),
        seed=seed,
        max_blocks=days,
    )


def _ingest_source(paths: Sequence[str], chunk_size: int):
    """A ``ChunkSource`` parsing on-disk CSV flow-record export(s)."""
    from repro.ingest import FlowCsvSource, IngestConfig
    from repro.topology.abilene import abilene_topology

    return FlowCsvSource(list(paths), network=abilene_topology(),
                         config=IngestConfig(chunk_size=chunk_size))


class _ThrottledSource:
    """Pace a source between chunks without losing its ``resume``."""

    def __init__(self, source, seconds: float) -> None:
        self._source = source
        self._seconds = float(seconds)

    def __iter__(self):
        for chunk in self._source:
            yield chunk
            if self._seconds > 0:
                time.sleep(self._seconds)

    def resume(self, start_bin: int) -> "_ThrottledSource":
        return _ThrottledSource(self._source.resume(start_bin),
                                self._seconds)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the anomaly-detection service over a synthetic "
                    "Abilene feed: durable event store, deduped alerts, "
                    "SIGTERM-graceful checkpointed shutdown.")
    parser.add_argument("--store", required=True,
                        help="sqlite event-store path")
    parser.add_argument("--checkpoint", default=None,
                        help="checkpoint directory (resumes if it already "
                             "holds a manifest)")
    parser.add_argument("--checkpoint-every-chunks", type=int, default=None,
                        metavar="N", help="also checkpoint every N chunks")
    parser.add_argument("--days", type=int, default=7,
                        help="length of the synthetic feed in days "
                             "(default: the Abilene week)")
    parser.add_argument("--ingest-csv", nargs="+", default=None,
                        metavar="PATH",
                        help="feed the service from CSV flow-record "
                             "export(s) (parsed and binned by "
                             "repro.ingest) instead of the synthetic "
                             "generator; --days/--seed are then ignored")
    parser.add_argument("--chunk-size", type=int, default=48,
                        help="timebins per chunk")
    parser.add_argument("--seed", type=int, default=0,
                        help="synthetic-feed master seed")
    parser.add_argument("--chunk-sleep", type=float, default=0.0,
                        metavar="SECONDS",
                        help="throttle between chunks (lets a smoke test "
                             "SIGTERM mid-stream deterministically)")
    parser.add_argument("--alerts", default=None,
                        help="JSON-lines alert-sink path")
    parser.add_argument("--stdout-alerts", action="store_true",
                        help="also print each alert to stdout")
    parser.add_argument("--dead-letter", default=None,
                        help="dead-letter file for undeliverable alerts")
    parser.add_argument("--snapshot", default=None,
                        help="health-snapshot path (enables telemetry; "
                             "serve it with tools/serve_status.py)")
    parser.add_argument("--min-train-bins", type=int, default=256)
    parser.add_argument("--recalibrate-every-bins", type=int, default=48)
    args = parser.parse_args(argv)

    config = StreamingConfig(
        min_train_bins=args.min_train_bins,
        recalibrate_every_bins=args.recalibrate_every_bins,
    )
    if args.snapshot:
        config = dataclasses.replace(
            config, telemetry=True, telemetry_snapshot_path=args.snapshot,
            telemetry_snapshot_every_chunks=4)

    sinks = []
    if args.alerts:
        sinks.append(JsonLinesAlertSink(args.alerts))
    if args.stdout_alerts:
        sinks.append(StdoutSink())
    dispatcher = AlertDispatcher(
        sinks, dead_letter_path=args.dead_letter or "")

    store = EventStore(args.store)
    service = DetectionService(
        config, store=store, dispatcher=dispatcher,
        checkpoint_dir=args.checkpoint,
        checkpoint_every_chunks=args.checkpoint_every_chunks)
    service.install_signal_handlers()

    if args.ingest_csv:
        source = _ingest_source(args.ingest_csv, args.chunk_size)
    else:
        source = _synthetic_source(args.chunk_size, args.days, args.seed)
    if args.chunk_sleep > 0:
        source = _ThrottledSource(source, args.chunk_sleep)

    print(f"service: store={args.store} checkpoint={args.checkpoint} "
          f"resume_bin={service.resume_bin}", flush=True)
    result = service.run(source)
    print(json.dumps({"table_digest": store.table_digest(),
                      "store_count": store.count(),
                      **result.to_dict()}, sort_keys=True), flush=True)
    service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
