"""Pluggable alert sinks with bounded retry, dedup, and a dead-letter file.

An alert sink is anything with a ``name`` and an ``emit(payload)`` that
raises on failure — stdout for interactive runs, a JSON-lines file for
log shippers, a webhook that POSTs the alert as JSON over
``urllib.request`` (stdlib only; the transport stays injectable so
tests swap in recorders and failure modes without a network).

:class:`AlertDispatcher` is the delivery policy around them, mirroring
how production notifiers behave:

* **bounded retry with exponential backoff + jitter** — each failed emit
  is retried up to ``max_attempts`` times, sleeping
  ``backoff_base * backoff_factor**attempt`` scaled by a seeded random
  jitter, so a flapping sink neither drops alerts instantly nor
  synchronizes its retries;
* **dedup window** — the last ``dedup_window`` event keys are remembered
  and re-dispatches are suppressed (redelivery happens: sink retries at a
  higher layer, overlapping replays);
* **dead-letter file** — an alert that exhausts its retries is appended,
  with the error chain, to a JSON-lines dead-letter file instead of being
  lost silently;
* **metrics** — every outcome increments a counter in the run's
  :class:`~repro.telemetry.MetricsRegistry` (``alerts_sent``,
  ``alert_retries``, ``alerts_deduplicated``, ``alerts_dead_lettered``,
  labeled by sink), so the PR 7 status surface shows alerting health next
  to detection throughput.

Everything is injectable (``sleep``, RNG seed, webhook transport), so the
failure paths are unit-testable without wall-clock sleeps or a network.
"""

from __future__ import annotations

import json
import os
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.events import AnomalyEvent
from repro.service.records import EventRecord, classify_event
from repro.telemetry import MetricsRegistry
from repro.utils.validation import require

__all__ = ["AlertSink", "StdoutSink", "JsonLinesAlertSink", "WebhookSink",
           "AlertDispatcher"]


class AlertSink:
    """Protocol of an alert sink: ``emit`` delivers or raises."""

    #: Label used in metrics and dead-letter records.
    name = "sink"

    def emit(self, payload: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class StdoutSink(AlertSink):
    """Writes one compact JSON line per alert to a stream (default stdout)."""

    name = "stdout"

    def __init__(self, stream=None) -> None:
        self._stream = stream

    def emit(self, payload: Dict[str, object]) -> None:
        stream = self._stream if self._stream is not None else sys.stdout
        stream.write(json.dumps(payload, sort_keys=True,
                                separators=(",", ":")) + "\n")
        stream.flush()


class JsonLinesAlertSink(AlertSink):
    """Appends one JSON line per alert to a file (lazily opened, locked)."""

    name = "jsonl"

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = None

    def emit(self, payload: Dict[str, object]) -> None:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class WebhookSink(AlertSink):
    """POST-a-JSON-document webhook over stdlib ``urllib.request``.

    The default transport POSTs the payload with
    ``Content-Type: application/json``, a bounded ``timeout``, and treats
    any non-2xx status as a delivery failure (raises, so the dispatcher's
    retry/dead-letter machinery engages).  The transport stays an
    injectable two-argument callable ``transport(url, body_bytes)`` —
    tests inject recorders and failure modes without opening sockets.
    """

    name = "webhook"

    def __init__(self, url: str,
                 transport: Optional[Callable[[str, bytes], None]] = None,
                 timeout: float = 5.0) -> None:
        require(bool(url), "webhook sink needs a non-empty url")
        require(timeout > 0.0, "webhook timeout must be > 0")
        self.url = str(url)
        self.timeout = float(timeout)
        self._transport = (transport if transport is not None
                           else self._urllib_transport)

    def _urllib_transport(self, url: str, body: bytes) -> None:
        request = urllib.request.Request(
            url, data=body, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                status = getattr(response, "status", response.getcode())
                if not 200 <= int(status) < 300:
                    raise RuntimeError(
                        f"webhook POST to {url} returned HTTP {status}")
        except urllib.error.HTTPError as error:
            raise RuntimeError(
                f"webhook POST to {url} returned HTTP {error.code}"
            ) from error
        except urllib.error.URLError as error:
            raise RuntimeError(
                f"webhook POST to {url} failed: {error.reason}") from error

    def emit(self, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._transport(self.url, body)


class AlertDispatcher:
    """Retry/backoff/dedup/dead-letter delivery policy over alert sinks.

    Parameters
    ----------
    sinks:
        The delivery targets.  An empty list is valid (store-only service).
    registry:
        Metrics registry the outcome counters land in (one is created when
        omitted, exposed as :attr:`registry`).
    max_attempts:
        Delivery attempts per sink per alert (>= 1).
    backoff_base:
        Sleep before the first retry, seconds.
    backoff_factor:
        Multiplier applied per subsequent retry.
    jitter:
        Uniform jitter fraction: each sleep is scaled by
        ``1 + jitter * U[0, 1)`` from a seeded RNG.
    dedup_window:
        How many recently alerted event keys are remembered.
    dead_letter_path:
        JSON-lines file collecting alerts that exhausted their retries
        (empty: exhausted alerts are only counted).
    dead_letter_max_bytes:
        Size cap for the dead-letter file.  When an append would find the
        file at or past the cap, the current file is rotated to
        ``<path>.1`` (replacing any previous ``.1``) before the append,
        and ``dead_letter_rotations`` is incremented.  ``0`` disables
        rotation (unbounded file).
    sleep:
        Injectable sleep (tests pass a recorder; default
        :func:`time.sleep`).
    seed:
        Jitter RNG seed — deterministic backoff schedules in tests.
    """

    def __init__(self,
                 sinks: Sequence[AlertSink] = (),
                 registry: Optional[MetricsRegistry] = None,
                 max_attempts: int = 3,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 jitter: float = 0.1,
                 dedup_window: int = 1024,
                 dead_letter_path: str = "",
                 dead_letter_max_bytes: int = 1_048_576,
                 sleep: Callable[[float], None] = time.sleep,
                 seed: int = 0) -> None:
        require(max_attempts >= 1, "max_attempts must be >= 1")
        require(backoff_base >= 0.0, "backoff_base must be >= 0")
        require(backoff_factor >= 1.0, "backoff_factor must be >= 1")
        require(jitter >= 0.0, "jitter must be >= 0")
        require(dedup_window >= 0, "dedup_window must be >= 0")
        require(dead_letter_max_bytes >= 0,
                "dead_letter_max_bytes must be >= 0")
        self.sinks: List[AlertSink] = list(sinks)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.jitter = float(jitter)
        self.dedup_window = int(dedup_window)
        self.dead_letter_path = str(dead_letter_path)
        self.dead_letter_max_bytes = int(dead_letter_max_bytes)
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._recent: "OrderedDict[str, None]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _remember(self, key: str) -> bool:
        """Record *key* in the dedup window; ``True`` iff it was new."""
        if self.dedup_window == 0:
            return True
        with self._lock:
            if key in self._recent:
                self._recent.move_to_end(key)
                return False
            self._recent[key] = None
            while len(self._recent) > self.dedup_window:
                self._recent.popitem(last=False)
            return True

    def _backoff_seconds(self, attempt: int) -> float:
        base = self.backoff_base * (self.backoff_factor ** attempt)
        return base * (1.0 + self.jitter * self._rng.random())

    def _dead_letter(self, sink: AlertSink, payload: Dict[str, object],
                     errors: List[str]) -> None:
        self.registry.counter(
            "alerts_dead_lettered", {"sink": sink.name},
            help="Alerts that exhausted their delivery retries").inc()
        if not self.dead_letter_path:
            return
        record = {"sink": sink.name, "payload": payload, "errors": errors,
                  "attempts": self.max_attempts}
        directory = os.path.dirname(self.dead_letter_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._maybe_rotate_dead_letter()
        with open(self.dead_letter_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")

    def _maybe_rotate_dead_letter(self) -> None:
        """Rotate ``dead_letter_path`` to ``.1`` once it reaches the cap."""
        if self.dead_letter_max_bytes == 0:
            return
        try:
            size = os.path.getsize(self.dead_letter_path)
        except OSError:
            return
        if size < self.dead_letter_max_bytes:
            return
        os.replace(self.dead_letter_path, self.dead_letter_path + ".1")
        self.registry.counter(
            "dead_letter_rotations",
            help="Dead-letter file rotations (size cap reached)").inc()

    def _deliver(self, sink: AlertSink, payload: Dict[str, object]) -> bool:
        errors: List[str] = []
        for attempt in range(self.max_attempts):
            try:
                sink.emit(payload)
            except Exception as error:  # noqa: BLE001 - sink contract
                errors.append(f"{type(error).__name__}: {error}")
                if attempt + 1 < self.max_attempts:
                    self.registry.counter(
                        "alert_retries", {"sink": sink.name},
                        help="Alert delivery retries").inc()
                    self._sleep(self._backoff_seconds(attempt))
            else:
                self.registry.counter(
                    "alerts_sent", {"sink": sink.name},
                    help="Alerts delivered").inc()
                return True
        self._dead_letter(sink, payload, errors)
        return False

    # ------------------------------------------------------------------ #
    def dispatch(self, event: AnomalyEvent,
                 record: Optional[EventRecord] = None) -> bool:
        """Alert every sink about *event*; ``True`` iff it was dispatched.

        Returns ``False`` when the event key sat in the dedup window.  A
        partially failed dispatch (some sinks delivered, some
        dead-lettered) still counts as dispatched — per-sink outcomes are
        in the metrics and the dead-letter file.
        """
        if record is None:
            record = classify_event(event)
        if not self._remember(record.key):
            self.registry.counter(
                "alerts_deduplicated",
                help="Alerts suppressed by the dedup window").inc()
            return False
        payload = record.to_dict()
        for sink in self.sinks:
            self._deliver(sink, payload)
        return True

    def dispatch_many(self, events: Sequence[AnomalyEvent]) -> int:
        """Dispatch a batch; returns how many were not deduplicated."""
        return sum(1 for event in events if self.dispatch(event))

    def flush(self) -> None:
        """No-op placeholder for symmetry with the store (sinks flush per
        emit); kept so the service shutdown sequence reads uniformly."""

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
