"""Durable anomaly-event store: sqlite behind a thread-safe wrapper.

The store is the service's system of record: every event the pipeline
closes is upserted here, keyed on the deterministic
:func:`~repro.service.records.event_key` ``(label, start_bin, OD-set
digest)``.  Idempotency is the load-bearing property — a re-delivered
event (sink retry, checkpoint replay after a crash, a second coordinator
racing the first) maps onto the same primary key and leaves the table
unchanged, which is what makes a SIGTERM-interrupt-then-restart run end
with the **byte-identical** event table of an uninterrupted run (the
restart-parity guarantee of ``repro.streaming.checkpoint`` extended to
disk).

Rows are deliberately wall-clock-free: every column is a pure function of
the event, so two runs over the same stream produce identical tables and
:meth:`EventStore.table_digest` can assert it in one comparison.

The schema is portable SQL (TEXT/INTEGER/REAL, named primary key,
``INSERT ... ON CONFLICT DO UPDATE``) so the same statements run on
postgres with only the placeholder style changed — the documented
migration path once one sqlite file per service stops being enough.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, TypeVar, Union)

_T = TypeVar("_T")

from repro.core.events import AnomalyEvent
from repro.service.records import (EventRecord, classify_event, od_digest,
                                   summarize_records)
from repro.service.records import RunSummary
from repro.utils.validation import require

__all__ = ["EventStore", "StoredEvent", "SCHEMA_VERSION", "SCHEMA_STATEMENTS"]

#: Bumped whenever the table layout changes incompatibly.
SCHEMA_VERSION = 1

#: Portable DDL — the postgres migration runs these verbatim (sqlite's
#: TEXT/INTEGER/REAL map onto text/bigint/double precision).
SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS schema_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS events (
        event_key     TEXT PRIMARY KEY,
        traffic_label TEXT    NOT NULL,
        start_bin     INTEGER NOT NULL,
        end_bin       INTEGER NOT NULL,
        duration_bins INTEGER NOT NULL,
        od_flows      TEXT    NOT NULL,
        od_set_digest TEXT    NOT NULL,
        bins          TEXT    NOT NULL,
        statistics    TEXT    NOT NULL,
        severity      TEXT    NOT NULL,
        confidence    REAL    NOT NULL,
        summary       TEXT    NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_events_start_bin ON events (start_bin)",
    "CREATE INDEX IF NOT EXISTS idx_events_label ON events (traffic_label)",
    "CREATE INDEX IF NOT EXISTS idx_events_severity ON events (severity)",
)

_UPSERT = """
INSERT INTO events (event_key, traffic_label, start_bin, end_bin,
                    duration_bins, od_flows, od_set_digest, bins,
                    statistics, severity, confidence, summary)
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
ON CONFLICT (event_key) DO UPDATE SET
    end_bin       = excluded.end_bin,
    duration_bins = excluded.duration_bins,
    od_flows      = excluded.od_flows,
    od_set_digest = excluded.od_set_digest,
    bins          = excluded.bins,
    statistics    = excluded.statistics,
    severity      = excluded.severity,
    confidence    = excluded.confidence,
    summary       = excluded.summary
"""

_COLUMNS = ("event_key", "traffic_label", "start_bin", "end_bin",
            "duration_bins", "od_flows", "od_set_digest", "bins",
            "statistics", "severity", "confidence", "summary")


@dataclass(frozen=True)
class StoredEvent:
    """One row of the ``events`` table, decoded."""

    event_key: str
    traffic_label: str
    start_bin: int
    end_bin: int
    duration_bins: int
    od_flows: Tuple[int, ...]
    od_set_digest: str
    bins: Tuple[int, ...]
    statistics: Tuple[str, ...]
    severity: str
    confidence: float
    summary: str

    def to_event(self) -> AnomalyEvent:
        """Rebuild the detection-layer event this row was stored from."""
        return AnomalyEvent(
            traffic_label=self.traffic_label,
            start_bin=self.start_bin,
            end_bin=self.end_bin,
            od_flows=frozenset(self.od_flows),
            bins=self.bins,
            statistics=frozenset(self.statistics),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "event_key": self.event_key,
            "traffic_label": self.traffic_label,
            "start_bin": self.start_bin,
            "end_bin": self.end_bin,
            "duration_bins": self.duration_bins,
            "od_flows": list(self.od_flows),
            "od_set_digest": self.od_set_digest,
            "bins": list(self.bins),
            "statistics": list(self.statistics),
            "severity": self.severity,
            "confidence": self.confidence,
            "summary": self.summary,
        }


def _decode_row(row: Sequence) -> StoredEvent:
    data = dict(zip(_COLUMNS, row))
    return StoredEvent(
        event_key=str(data["event_key"]),
        traffic_label=str(data["traffic_label"]),
        start_bin=int(data["start_bin"]),
        end_bin=int(data["end_bin"]),
        duration_bins=int(data["duration_bins"]),
        od_flows=tuple(int(f) for f in json.loads(data["od_flows"])),
        od_set_digest=str(data["od_set_digest"]),
        bins=tuple(int(b) for b in json.loads(data["bins"])),
        statistics=tuple(str(s) for s in json.loads(data["statistics"])),
        severity=str(data["severity"]),
        confidence=float(data["confidence"]),
        summary=str(data["summary"]),
    )


class EventStore:
    """Thread-safe, idempotent anomaly-event store over one sqlite file.

    One connection (``check_same_thread=False``) guarded by a re-entrant
    lock: the pipeline thread upserts while a status server thread reads,
    and sqlite's serialized access plus the lock keep both consistent.
    WAL journaling keeps readers unblocked by the writer where the
    filesystem supports it (in-memory stores fall back silently).

    A second process writing the same file (a racing coordinator, an
    operator's ad-hoc query) can surface as ``sqlite3.OperationalError:
    database is locked``.  Two layers absorb it: sqlite's own
    ``busy_timeout`` makes the engine wait for the lock in-kernel, and
    the write path retries a bounded number of times with exponential
    backoff on top (counted in :attr:`lock_retry_count`) before letting
    the error propagate.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` for an ephemeral store.
    busy_timeout_ms:
        sqlite ``PRAGMA busy_timeout`` in milliseconds (0 disables).
    lock_retries:
        Extra application-level retries when a statement still reports
        ``database is locked`` after the busy timeout.
    lock_backoff:
        Sleep before the first locked-retry, seconds (doubles per retry).
    sleep:
        Injectable sleep for the locked-retry backoff (tests pass a
        recorder).
    """

    def __init__(self, path: Union[str, os.PathLike] = ":memory:",
                 busy_timeout_ms: int = 5000,
                 lock_retries: int = 5,
                 lock_backoff: float = 0.05,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        require(busy_timeout_ms >= 0, "busy_timeout_ms must be >= 0")
        require(lock_retries >= 0, "lock_retries must be >= 0")
        require(lock_backoff >= 0.0, "lock_backoff must be >= 0")
        self._path = str(path)
        self._lock = threading.RLock()
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.lock_retries = int(lock_retries)
        self.lock_backoff = float(lock_backoff)
        self._sleep = sleep
        #: How many locked-database retries the store has performed.
        self.lock_retry_count = 0
        self._connection = sqlite3.connect(self._path,
                                           check_same_thread=False)
        with self._lock:
            self._connection.execute(
                f"PRAGMA busy_timeout={self.busy_timeout_ms}")
            try:
                self._connection.execute("PRAGMA journal_mode=WAL")
            except sqlite3.DatabaseError:  # pragma: no cover - fs-specific
                pass
            for statement in SCHEMA_STATEMENTS:
                self._connection.execute(statement)
            self._connection.execute(
                "INSERT INTO schema_meta (key, value) VALUES (?, ?) "
                "ON CONFLICT (key) DO NOTHING",
                ("schema_version", str(SCHEMA_VERSION)))
            self._connection.commit()
        stored = self.schema_version()
        require(stored == SCHEMA_VERSION,
                f"event store {self._path} has schema version {stored}, "
                f"expected {SCHEMA_VERSION}")

    # ------------------------------------------------------------------ #
    # locked-database retry
    # ------------------------------------------------------------------ #
    def _with_lock_retry(self, operation: Callable[[], _T]) -> _T:
        """Run *operation*, retrying ``database is locked`` errors.

        Other :class:`sqlite3.OperationalError`\\ s propagate immediately;
        a locked database is retried up to :attr:`lock_retries` times with
        doubling backoff, then the final error propagates.
        """
        attempt = 0
        while True:
            try:
                return operation()
            except sqlite3.OperationalError as error:
                if "locked" not in str(error).lower():
                    raise
                if attempt >= self.lock_retries:
                    raise
                self.lock_retry_count += 1
                self._sleep(self.lock_backoff * (2.0 ** attempt))
                attempt += 1

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def add_event(self, event: AnomalyEvent,
                  record: Optional[EventRecord] = None) -> bool:
        """Upsert one event; return ``True`` iff the row is new.

        *record* defaults to :func:`~repro.service.records.classify_event`
        of the event; pass a precomputed one to avoid classifying twice.
        """
        if record is None:
            record = classify_event(event)
        row = (
            record.key,
            record.traffic_label,
            record.start_bin,
            record.end_bin,
            record.duration_bins,
            json.dumps(list(record.od_flows)),
            od_digest(record.od_flows),
            json.dumps([int(b) for b in event.bins]),
            json.dumps(list(record.statistics)),
            record.severity,
            record.confidence,
            record.summary,
        )
        def write() -> bool:
            cursor = self._connection.execute(
                "SELECT 1 FROM events WHERE event_key = ?", (record.key,))
            existed = cursor.fetchone() is not None
            self._connection.execute(_UPSERT, row)
            self._connection.commit()
            return not existed

        with self._lock:
            return self._with_lock_retry(write)

    def add_events(self, events: Iterable[AnomalyEvent]) -> List[AnomalyEvent]:
        """Upsert a batch; return the sublist that created **new** rows.

        The returned list is what downstream alerting should fire on: a
        replayed batch after a crash-restart returns empty, so operators
        are never re-paged for events the store already knows.
        """
        fresh: List[AnomalyEvent] = []
        with self._lock:
            for event in events:
                if self.add_event(event):
                    fresh.append(event)
        return fresh

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def query(self,
              start_bin: Optional[int] = None,
              end_bin: Optional[int] = None,
              traffic_label: Optional[str] = None,
              severity: Optional[str] = None,
              min_confidence: Optional[float] = None,
              limit: Optional[int] = None) -> List[StoredEvent]:
        """Events intersecting ``[start_bin, end_bin)``, filtered, ordered.

        Ordering is deterministic (``start_bin``, then ``event_key``), so
        the same table always lists the same way.
        """
        clauses: List[str] = []
        params: List[object] = []
        if start_bin is not None:
            clauses.append("end_bin >= ?")
            params.append(int(start_bin))
        if end_bin is not None:
            clauses.append("start_bin < ?")
            params.append(int(end_bin))
        if traffic_label is not None:
            clauses.append("traffic_label = ?")
            params.append(str(traffic_label))
        if severity is not None:
            clauses.append("severity = ?")
            params.append(str(severity))
        if min_confidence is not None:
            clauses.append("confidence >= ?")
            params.append(float(min_confidence))
        sql = f"SELECT {', '.join(_COLUMNS)} FROM events"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY start_bin, event_key"
        if limit is not None:
            require(limit >= 1, "limit must be >= 1 when given")
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._connection.execute(sql, params).fetchall()
        return [_decode_row(row) for row in rows]

    def recent(self, limit: int = 20) -> List[StoredEvent]:
        """The *limit* latest events (by start bin, newest first)."""
        require(limit >= 1, "limit must be >= 1")
        with self._lock:
            rows = self._connection.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM events "
                f"ORDER BY start_bin DESC, event_key DESC LIMIT ?",
                (int(limit),)).fetchall()
        return [_decode_row(row) for row in rows]

    def count(self) -> int:
        """Total number of stored events."""
        with self._lock:
            return int(self._connection.execute(
                "SELECT COUNT(*) FROM events").fetchone()[0])

    def counts_by_label(self) -> Dict[str, int]:
        """Stored-event counts per combination label (the service Table 1)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT traffic_label, COUNT(*) FROM events "
                "GROUP BY traffic_label").fetchall()
        return {str(label): int(count) for label, count in rows}

    def counts_by_severity(self) -> Dict[str, int]:
        """Stored-event counts per severity tier."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT severity, COUNT(*) FROM events "
                "GROUP BY severity").fetchall()
        return {str(level): int(count) for level, count in rows}

    def summary(self) -> RunSummary:
        """Run-level roll-up of every stored record."""
        return summarize_records(e.to_dict() for e in self.query())

    def schema_version(self) -> int:
        """The schema version recorded in the file."""
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM schema_meta WHERE key = ?",
                ("schema_version",)).fetchone()
        return int(row[0]) if row is not None else 0

    # ------------------------------------------------------------------ #
    # parity surface
    # ------------------------------------------------------------------ #
    def canonical_rows(self) -> List[Tuple]:
        """Every row in deterministic order — the parity comparison unit."""
        with self._lock:
            return self._connection.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM events "
                f"ORDER BY start_bin, event_key").fetchall()

    def table_digest(self) -> str:
        """SHA-256 over the canonical row dump.

        Two stores hold the byte-identical event table iff their digests
        match — the one-line assertion of the restart-parity guarantee.
        """
        payload = json.dumps(self.canonical_rows(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Commit any pending transaction (durability point)."""
        with self._lock:
            self._with_lock_retry(self._connection.commit)

    def close(self) -> None:
        """Commit and close the connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.commit()
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "EventStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def path(self) -> str:
        """The database file path (``":memory:"`` for ephemeral stores)."""
        return self._path
