"""Streaming subspace detection — the online counterpart of :mod:`repro.core`.

The batch pipeline fits a full SVD over the entire OD-flow history and
detects in one shot; this package turns that into an online system:

1. :class:`~repro.streaming.online_pca.OnlinePCA` maintains the running
   mean and covariance eigenbasis under exponential forgetting — ``O(p²)``
   state and ``O(m p²)`` work per chunk instead of an ``O(n p²)`` SVD per
   refit;
2. :class:`~repro.streaming.detector.StreamingSubspaceDetector` consumes
   fixed-size chunks of timebins, projects them against the current
   subspace snapshot, applies the SPE / T² control limits, and recalibrates
   on a configurable cadence;
3. :mod:`repro.streaming.sources` adapts in-memory
   :class:`~repro.flows.timeseries.TrafficMatrixSeries` (and, via
   :mod:`repro.datasets.streaming`, unbounded synthetic generators) into
   chunked feeds;
4. :class:`~repro.streaming.aggregator.OnlineEventAggregator` fuses
   per-type detections into :class:`~repro.core.events.AnomalyEvent`s
   incrementally with bounded memory, matching the batch
   :func:`~repro.core.events.aggregate_detections` on replay;
5. :mod:`repro.streaming.pipeline` wires it all together, including the
   two-pass :func:`~repro.streaming.pipeline.replay_network_anomalies`
   harness whose events match the batch pipeline exactly.
"""

from repro.streaming.config import StreamingConfig, forgetting_from_half_life
from repro.streaming.online_pca import OnlinePCA
from repro.streaming.detector import (
    ChunkDetections,
    StreamDetection,
    StreamingSubspaceDetector,
    SubspaceSnapshot,
)
from repro.streaming.sources import ChunkedSeriesSource, TrafficChunk, chunk_series
from repro.streaming.aggregator import OnlineEventAggregator
from repro.streaming.pipeline import (
    StreamingNetworkDetector,
    StreamingReport,
    replay_network_anomalies,
    stream_detect,
)

__all__ = [
    "StreamingConfig",
    "forgetting_from_half_life",
    "OnlinePCA",
    "SubspaceSnapshot",
    "StreamDetection",
    "ChunkDetections",
    "StreamingSubspaceDetector",
    "TrafficChunk",
    "ChunkedSeriesSource",
    "chunk_series",
    "OnlineEventAggregator",
    "StreamingNetworkDetector",
    "StreamingReport",
    "stream_detect",
    "replay_network_anomalies",
]
