"""Streaming subspace detection — the online counterpart of :mod:`repro.core`.

The batch pipeline fits a full SVD over the entire OD-flow history and
detects in one shot; this package turns that into an online system:

1. :class:`~repro.streaming.online_pca.OnlinePCA` maintains the running
   mean and covariance eigenbasis under exponential forgetting — ``O(p²)``
   state and ``O(m p²)`` work per chunk instead of an ``O(n p²)`` SVD per
   refit;
2. :class:`~repro.streaming.detector.StreamingSubspaceDetector` consumes
   fixed-size chunks of timebins, projects them against the current
   subspace snapshot, applies the SPE / T² control limits, and recalibrates
   on a configurable cadence;
3. :mod:`repro.streaming.sources` adapts in-memory
   :class:`~repro.flows.timeseries.TrafficMatrixSeries` (and, via
   :mod:`repro.datasets.streaming`, unbounded synthetic generators) into
   chunked feeds;
4. :class:`~repro.streaming.aggregator.OnlineEventAggregator` fuses
   per-type detections into :class:`~repro.core.events.AnomalyEvent`s
   incrementally with bounded memory, matching the batch
   :func:`~repro.core.events.aggregate_detections` on replay;
5. :mod:`repro.streaming.pipeline` wires it all together, including the
   two-pass :func:`~repro.streaming.pipeline.replay_network_anomalies`
   harness whose events match the batch pipeline exactly;
6. :mod:`repro.streaming.sharding` partitions the OD-flow columns of the
   moment engine across shards and provides the exact Chan parallel-moments
   merge, so per-shard state combines into the identical covariance;
7. :mod:`repro.streaming.checkpoint` persists the full detector state
   (npz + JSON manifest) so a restarted detector resumes mid-stream with
   the identical remaining event list;
8. :mod:`repro.streaming.parallel` drives detection in worker processes
   over the zero-copy shared-memory chunk bus (:mod:`repro.streaming.bus`)
   — type-parallel or shard-parallel (one column shard of every detector
   per worker, so speedup follows the worker count) — with an unchanged
   event list and backpressure at both the queue and the ring;
9. :mod:`repro.streaming.low_rank` maintains only the top-``r`` eigenpairs
   via Brand-style rank-``m`` secular updates (``StreamingConfig(engine=
   "lowrank")``), killing the ``O(p³)`` eigh on the recalibration hot path
   — ``O(m·p·r + r³)`` per chunk with ``O(p·r)`` state — with an exact
   residual-energy trace for the SPE limit and a drift-monitored
   re-orthogonalization;
10. :mod:`repro.streaming.adaptive_limits` tracks EWMA-smoothed empirical
    quantiles of the streaming SPE/T² statistics
    (``StreamingConfig(limits="adaptive")``) — warm-up period, clamped
    drift rate, freeze-on-alarm — so non-stationary weeks are thresholded
    against the recent clean-statistic tail instead of the lagging
    parametric limits;
11. :mod:`repro.streaming.hierarchy` aggregates per-PoP ingestion leaves
    into one global detector by merging **models** instead of shipping
    raw data — event-identical to the flat run, and checkpointable as the
    merged flat state.
"""

from repro.streaming.adaptive_limits import AdaptiveControlLimits
from repro.streaming.bus import (
    ChunkBusHandle,
    ChunkBusReader,
    ChunkBusWriter,
    SlotDescriptor,
    chunk_slot_bytes,
)
from repro.streaming.config import StreamingConfig, forgetting_from_half_life
from repro.streaming.online_pca import OnlinePCA, eigh_descending
from repro.streaming.low_rank import (
    LowRankEigenTracker,
    compress_engine,
    merge_low_rank,
)
from repro.streaming.sharding import (
    ShardedOnlinePCA,
    ShardWorkerMoments,
    merge_online_pca,
    partition_columns,
)
from repro.streaming.detector import (
    ChunkDetections,
    StreamDetection,
    StreamingSubspaceDetector,
    SubspaceSnapshot,
    make_engine,
    make_limits_policy,
)
from repro.streaming.sources import (
    AsyncChunkSource,
    ChunkSource,
    ChunkedSeriesSource,
    FactoryChunkSource,
    IterableChunkSource,
    TrafficChunk,
    as_chunk_source,
    chunk_series,
)
from repro.streaming.aggregator import OnlineEventAggregator
from repro.streaming.pipeline import (
    StreamingNetworkDetector,
    StreamingReport,
    replay_network_anomalies,
    stream_detect,
)
from repro.streaming.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.streaming.hierarchy import HierarchicalNetworkDetector
from repro.streaming.parallel import WorkerSupervisor, parallel_stream_detect

__all__ = [
    "AdaptiveControlLimits",
    "StreamingConfig",
    "forgetting_from_half_life",
    "OnlinePCA",
    "eigh_descending",
    "LowRankEigenTracker",
    "compress_engine",
    "merge_low_rank",
    "ShardedOnlinePCA",
    "ShardWorkerMoments",
    "merge_online_pca",
    "partition_columns",
    "ChunkBusHandle",
    "ChunkBusReader",
    "ChunkBusWriter",
    "SlotDescriptor",
    "chunk_slot_bytes",
    "SubspaceSnapshot",
    "StreamDetection",
    "ChunkDetections",
    "StreamingSubspaceDetector",
    "make_engine",
    "make_limits_policy",
    "TrafficChunk",
    "ChunkSource",
    "IterableChunkSource",
    "FactoryChunkSource",
    "as_chunk_source",
    "ChunkedSeriesSource",
    "AsyncChunkSource",
    "chunk_series",
    "OnlineEventAggregator",
    "StreamingNetworkDetector",
    "StreamingReport",
    "stream_detect",
    "replay_network_anomalies",
    "CHECKPOINT_FORMAT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "has_checkpoint",
    "HierarchicalNetworkDetector",
    "parallel_stream_detect",
    "WorkerSupervisor",
]
