"""Adaptive (empirical-quantile) control limits for non-stationary streams.

The parametric control limits — the Jackson–Mudholkar Q-statistic and the
F-based T² limit computed by :func:`~repro.core.limits.control_limits` —
assume the residual statistics are stationary over the calibration window.
On a drifting week (a level-shifted diurnal mean, a ramping noise variance)
the running eigenvalue spectrum lags the data it was estimated from, the
recent SPE/T² values run systematically hot against the lagging limits, and
the fixed 99.9% thresholds turn the drift itself into a stream of false
alarms.

:class:`AdaptiveControlLimits` closes that gap by tracking the **empirical**
``confidence``-quantile of the clean (un-flagged) streaming statistics and
EWMA-smoothing it into a multiplicative correction of the parametric limits:

* the policy observes every detected chunk's SPE/T² values and collects
  them into fixed-size blocks, **freezing out** (per statistic) any value
  beyond ``freeze_factor`` times the current effective limit — the
  freeze-on-alarm rule.  A genuine anomaly overshoots the limit by orders
  of magnitude and is censored, so it can never raise the threshold that
  should be catching it; drift-induced exceedances hug the limit, stay
  under the cap, and are exactly the signal the tracker must see.  (A
  strict exclude-all-alarms rule would deadlock: once drift pushes every
  bin over the lagging limit, all evidence of the drift would be censored
  and the threshold could never catch up.);
* each completed block contributes its empirical ``confidence``-quantile,
  expressed as a ratio to the current parametric limit, to an EWMA of that
  ratio (the "scale");
* the per-block movement of the scale is clamped to ``±max_drift``
  (relative), so a burst of hot statistics bends the threshold slowly
  instead of jumping it, and the scale itself is clamped to
  ``scale_bounds`` so the limit can never run away from the parametric
  anchor by more than a bounded factor;
* nothing moves until ``warmup_bins`` clean bins have been observed — the
  policy starts as exactly the fixed-limit policy and earns its drift.

The default ``scale_bounds`` lower edge is ``1.0``: the parametric limit
remains the sensitivity **floor** and the empirical tracker only ever
*relaxes* it while the observed clean tail runs hot, decaying back to the
floor when the stream re-stationarizes.  This is deliberate — a
``block_bins``-sized empirical quantile saturates at the block maximum
(roughly the ``1 - 1/block_bins`` quantile), a systematic *under*-estimate
of the 99.9% tail, so a two-sided tracker would tighten the limits on
perfectly stationary data.  Pass a lower bound below 1 to opt into
two-sided adaptation.

Because the scale multiplies whatever parametric limits the detector's
recalibration produces, a ``max_drift`` of ``0`` pins the scale at ``1`` and
the policy reduces **exactly** to the fixed :func:`control_limits` policy —
the property test in ``tests/test_adaptive_limits.py`` enforces this.

Selected via ``StreamingConfig(limits="adaptive", ...)`` and threaded
through :class:`~repro.streaming.detector.StreamingSubspaceDetector`; the
full quantile-tracking state serializes through ``state_dict`` /
``from_state`` so a checkpoint-restored detector adapts identically.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.limits import ControlLimits
from repro.utils.validation import ensure_probability, require

__all__ = ["AdaptiveControlLimits"]

#: The two per-bin statistics the policy tracks.
_STATISTICS = ("spe", "t2")


class AdaptiveControlLimits:
    """EWMA-smoothed empirical-quantile correction of the control limits.

    Parameters
    ----------
    confidence:
        Quantile level tracked by the policy (the detector passes its
        configured confidence, paper: 0.999).  Over a ``block_bins``-sized
        block the empirical quantile saturates at the block maximum once
        ``confidence > 1 - 1/block_bins``; the EWMA across blocks is what
        recovers a stable tail estimate.
    warmup_bins:
        Clean (un-flagged) bins to observe before the scale may move.
    smoothing:
        EWMA weight of each new block quantile, in ``(0, 1]``.
    max_drift:
        Per-block relative clamp of the scale movement; ``0`` freezes the
        scale at ``1`` (the fixed-limit policy).
    block_bins:
        Observed (un-frozen) bins per empirical-quantile block.
    freeze_factor:
        Per-statistic censoring cap, as a multiple of the current
        effective limit: values above it are frozen out of the quantile
        (treated as anomalies), values below participate (treated as
        drift).  Must exceed 1.
    scale_bounds:
        Hard ``(lower, upper)`` bounds of the multiplicative scale — the
        total drift budget relative to the parametric limits.  The default
        lower bound of ``1.0`` keeps the policy one-sided (see the module
        docstring).
    """

    STATE_KIND = "adaptive-quantile"

    def __init__(
        self,
        confidence: float = 0.999,
        warmup_bins: int = 64,
        smoothing: float = 0.25,
        max_drift: float = 0.05,
        block_bins: int = 32,
        freeze_factor: float = 4.0,
        scale_bounds: Tuple[float, float] = (1.0, 8.0),
    ) -> None:
        ensure_probability(confidence, "confidence")
        require(warmup_bins >= 1, "warmup_bins must be >= 1")
        require(0.0 < smoothing <= 1.0, "smoothing must be in (0, 1]")
        require(max_drift >= 0.0, "max_drift must be >= 0")
        require(block_bins >= 1, "block_bins must be >= 1")
        require(freeze_factor > 1.0, "freeze_factor must be > 1")
        require(0.0 < scale_bounds[0] <= 1.0 <= scale_bounds[1],
                "scale_bounds must straddle 1.0 with a positive lower bound")
        self._confidence = float(confidence)
        self._warmup_bins = int(warmup_bins)
        self._smoothing = float(smoothing)
        self._max_drift = float(max_drift)
        self._block_bins = int(block_bins)
        self._freeze_factor = float(freeze_factor)
        self._scale_bounds = (float(scale_bounds[0]), float(scale_bounds[1]))
        self._scales: Dict[str, float] = {name: 1.0 for name in _STATISTICS}
        self._blocks: Dict[str, List[float]] = {name: [] for name in _STATISTICS}
        self._n_clean_bins = 0
        self._n_frozen_bins = 0
        self._n_updates = 0

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def confidence(self) -> float:
        """Quantile level the policy tracks."""
        return self._confidence

    @property
    def scales(self) -> Dict[str, float]:
        """Current multiplicative scales per statistic (``spe``, ``t2``)."""
        return dict(self._scales)

    @property
    def is_warmed_up(self) -> bool:
        """Whether enough clean bins were observed for the scale to move."""
        return self._n_clean_bins >= self._warmup_bins

    @property
    def n_clean_bins(self) -> int:
        """Statistic values observed (under the freeze cap) so far.

        Counted per bin and per statistic; a bin whose SPE froze but whose
        T² did not contributes to one tracker and not the other, and the
        count here is the maximum across the statistics.
        """
        return self._n_clean_bins

    @property
    def n_frozen_bins(self) -> int:
        """Statistic values frozen out of the quantile (freeze-on-alarm)."""
        return self._n_frozen_bins

    @property
    def n_updates(self) -> int:
        """Completed block-quantile updates applied to the scales."""
        return self._n_updates

    def telemetry_gauges(self):
        """The policy's health as ``(name, extra labels, value, help)`` rows.

        The observable surface the telemetry plane records after every
        recalibration (:mod:`repro.telemetry`); keeping the list here means
        a new policy knob shows up in snapshots by editing one place.  The
        caller merges its own identity labels (e.g. ``type``) into each
        row's extra labels.
        """
        rows = [("adaptive_scale", {"stat": stat}, float(scale),
                 "Effective adaptive limit scale")
                for stat, scale in sorted(self._scales.items())]
        rows.append(("adaptive_frozen_bins", {}, float(self._n_frozen_bins),
                     "Statistic values frozen out of the adaptive quantile "
                     "(freeze-on-alarm)"))
        rows.append(("adaptive_updates", {}, float(self._n_updates),
                     "Completed adaptive block-quantile updates"))
        rows.append(("adaptive_clean_bins", {}, float(self._n_clean_bins),
                     "Clean statistic values folded into the quantile"))
        rows.append(("adaptive_warmed_up", {},
                     1.0 if self.is_warmed_up else 0.0,
                     "Whether the adaptive scales may move (1) or are still "
                     "warming up (0)"))
        return rows

    # ------------------------------------------------------------------ #
    # the policy
    # ------------------------------------------------------------------ #
    def apply(self, limits: ControlLimits) -> ControlLimits:
        """The effective limits: the parametric *limits* times the scales."""
        return ControlLimits(
            spe=limits.spe * self._scales["spe"],
            t2=limits.t2 * self._scales["t2"],
            confidence=limits.confidence,
        )

    def observe(
        self,
        spe: np.ndarray,
        t2: np.ndarray,
        parametric: ControlLimits,
    ) -> None:
        """Fold one detected chunk's statistics into the quantile tracker.

        Parameters
        ----------
        spe, t2:
            Per-bin statistics of the chunk, as computed by the detector.
        parametric:
            The parametric limits of the current snapshot — the anchor the
            scales are relative to.  Recalibration moves the anchor; the
            scale composes on top, so the two adaptation mechanisms (model
            refresh and threshold drift) stay independent.

        Each statistic is censored independently at ``freeze_factor``
        times its current effective limit (freeze-on-alarm, see the module
        docstring); the surviving values fill fixed-size blocks whose
        empirical quantiles EWMA-fold into the scales.
        """
        spe = np.asarray(spe, dtype=float).ravel()
        t2 = np.asarray(t2, dtype=float).ravel()
        require(spe.shape == t2.shape,
                "spe and t2 must have one entry per chunk bin")
        values = {"spe": spe, "t2": t2}
        anchors = {"spe": parametric.spe, "t2": parametric.t2}
        kept: Dict[str, np.ndarray] = {}
        for name in _STATISTICS:
            cap = self._freeze_factor * self._scales[name] * anchors[name]
            kept[name] = (values[name][values[name] <= cap]
                          if anchors[name] > 0 else values[name])
            self._n_frozen_bins += int(values[name].size - kept[name].size)
        # Count the observations before folding blocks, so warm-up can
        # complete within the very chunk that crosses the threshold.
        self._n_clean_bins += max(int(v.size) for v in kept.values())
        for name in _STATISTICS:
            block = self._blocks[name]
            block.extend(float(v) for v in kept[name])
            while len(block) >= self._block_bins:
                completed, self._blocks[name] = (block[:self._block_bins],
                                                 block[self._block_bins:])
                block = self._blocks[name]
                self._fold_block(name, completed, anchors[name])

    def _fold_block(self, name: str, block: List[float],
                    anchor: float) -> None:
        """EWMA-fold one completed block's empirical quantile into a scale."""
        if not self.is_warmed_up or anchor <= 0.0 or self._max_drift == 0.0:
            # Pre-warmup blocks are observed but discarded; a degenerate
            # anchor has no meaningful ratio; zero drift pins the scale.
            return
        quantile = float(np.quantile(np.asarray(block), self._confidence))
        target = quantile / anchor
        proposed = ((1.0 - self._smoothing) * self._scales[name]
                    + self._smoothing * target)
        previous = self._scales[name]
        lower = previous * (1.0 - self._max_drift)
        upper = previous * (1.0 + self._max_drift)
        clamped = min(max(proposed, lower), upper)
        self._scales[name] = min(max(clamped, self._scale_bounds[0]),
                                 self._scale_bounds[1])
        self._n_updates += 1

    # ------------------------------------------------------------------ #
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Dict]:
        """Serializable form as ``{"meta": scalars, "arrays": ndarrays}``."""
        return {
            "meta": {
                "kind": self.STATE_KIND,
                "confidence": self._confidence,
                "warmup_bins": self._warmup_bins,
                "smoothing": self._smoothing,
                "max_drift": self._max_drift,
                "block_bins": self._block_bins,
                "freeze_factor": self._freeze_factor,
                "scale_bounds": list(self._scale_bounds),
                "scales": dict(self._scales),
                "n_clean_bins": self._n_clean_bins,
                "n_frozen_bins": self._n_frozen_bins,
                "n_updates": self._n_updates,
            },
            "arrays": {
                f"block_{name}": np.asarray(self._blocks[name], dtype=float)
                for name in _STATISTICS
            },
        }

    @classmethod
    def from_state(cls, meta: Mapping,
                   arrays: Mapping[str, np.ndarray]) -> "AdaptiveControlLimits":
        """Rebuild a policy (mid-block buffers included) from state."""
        require(meta.get("kind") == cls.STATE_KIND,
                f"unknown adaptive-limits state kind {meta.get('kind')!r}")
        policy = cls(
            confidence=float(meta["confidence"]),
            warmup_bins=int(meta["warmup_bins"]),
            smoothing=float(meta["smoothing"]),
            max_drift=float(meta["max_drift"]),
            block_bins=int(meta["block_bins"]),
            freeze_factor=float(meta["freeze_factor"]),
            scale_bounds=tuple(float(b) for b in meta["scale_bounds"]),
        )
        policy._scales = {name: float(meta["scales"][name])
                          for name in _STATISTICS}
        policy._blocks = {
            name: [float(v) for v in np.asarray(arrays[f"block_{name}"])]
            for name in _STATISTICS
        }
        policy._n_clean_bins = int(meta["n_clean_bins"])
        policy._n_frozen_bins = int(meta["n_frozen_bins"])
        policy._n_updates = int(meta["n_updates"])
        return policy
