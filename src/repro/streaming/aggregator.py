"""Incremental spatio-temporal aggregation of detections into events.

:class:`OnlineEventAggregator` reproduces the three-step aggregation of
:func:`~repro.core.events.aggregate_detections` — per-bin traffic-type
combination labels, OD-flow union in space, merge of consecutive bins with
the same label — but consumes detections incrementally with **bounded
memory**: it holds only

* the per-bin entries newer than the finalized *watermark* (at most one
  chunk's worth in the chunked pipeline), and
* the state of the single currently-open event run.

The caller promises, by calling :meth:`advance`, that every detection for
bins up to the watermark has been delivered; events whose runs provably
cannot extend are then emitted.  Replaying a full detection set chunk by
chunk and flushing yields exactly the batch event list, in the same order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.core.events import AnomalyEvent, Detection, combination_label
from repro.flows.timeseries import TrafficType
from repro.utils.validation import require

__all__ = ["OnlineEventAggregator"]


class _BinEntry:
    """Accumulated detections of one not-yet-finalized timebin."""

    __slots__ = ("types", "flows", "stats")

    def __init__(self) -> None:
        self.types: Set[TrafficType] = set()
        self.flows: Set[int] = set()
        self.stats: Set[str] = set()


class OnlineEventAggregator:
    """Fuses per-type detections into :class:`AnomalyEvent`s incrementally."""

    def __init__(self) -> None:
        self._pending: Dict[int, _BinEntry] = {}
        self._watermark = -1
        self._run_bins: List[int] = []
        self._run_label: Optional[str] = None
        self._run_flows: Set[int] = set()
        self._run_stats: Set[str] = set()

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def watermark(self) -> int:
        """Highest bin index finalized so far (-1 initially)."""
        return self._watermark

    @property
    def n_pending_bins(self) -> int:
        """Number of buffered bins not yet finalized."""
        return len(self._pending)

    @property
    def has_open_run(self) -> bool:
        """Whether an event run is open (may still extend)."""
        return bool(self._run_bins)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def add(self, detection: Detection) -> None:
        """Buffer one detection triple.

        Detections may arrive in any order within the un-finalized region,
        but a detection at or below the watermark is a contract violation
        (its bin was already folded into emitted events).
        """
        require(detection.bin_index > self._watermark,
                "detection arrived at or below the finalized watermark")
        entry = self._pending.setdefault(detection.bin_index, _BinEntry())
        entry.types.add(TrafficType(detection.traffic_type))
        entry.flows.update(detection.od_flows)
        entry.stats.add(detection.statistic)

    def add_many(self, detections: Iterable[Detection]) -> None:
        """Buffer an iterable of detection triples."""
        for detection in detections:
            self.add(detection)

    # ------------------------------------------------------------------ #
    # finalization
    # ------------------------------------------------------------------ #
    def advance(self, through_bin: int) -> List[AnomalyEvent]:
        """Declare all bins up to *through_bin* complete; emit closed events.

        Returns the events whose spans can no longer change: a run is closed
        once a later finalized bin is known to be empty or to carry a
        different combination label.  A run ending exactly at *through_bin*
        stays open (the next bin might extend it).
        """
        if through_bin <= self._watermark:
            return []
        closed: List[AnomalyEvent] = []
        for bin_index in sorted(b for b in self._pending if b <= through_bin):
            entry = self._pending.pop(bin_index)
            label = combination_label(entry.types)
            contiguous = bool(self._run_bins) and bin_index == self._run_bins[-1] + 1
            if contiguous and label == self._run_label:
                self._run_bins.append(bin_index)
                self._run_flows.update(entry.flows)
                self._run_stats.update(entry.stats)
            else:
                event = self._close_run()
                if event is not None:
                    closed.append(event)
                self._run_bins = [bin_index]
                self._run_label = label
                self._run_flows = set(entry.flows)
                self._run_stats = set(entry.stats)
        self._watermark = through_bin
        # Every bin <= watermark is final; if the open run ends strictly
        # below it, bin (end + 1) is known to be detection-free.
        if self._run_bins and self._run_bins[-1] < through_bin:
            event = self._close_run()
            if event is not None:
                closed.append(event)
        return closed

    def flush(self) -> List[AnomalyEvent]:
        """Finalize everything buffered and close the open run (end of stream)."""
        closed: List[AnomalyEvent] = []
        if self._pending:
            closed.extend(self.advance(max(self._pending)))
        event = self._close_run()
        if event is not None:
            closed.append(event)
        return closed

    # ------------------------------------------------------------------ #
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable aggregator state: watermark, open run, pending.

        Restoring it with :meth:`from_state` and continuing the detection
        stream emits exactly the events an uninterrupted aggregator would —
        including events whose runs span the checkpoint boundary.
        """
        return {
            "watermark": self._watermark,
            "run_bins": list(self._run_bins),
            "run_label": self._run_label,
            "run_flows": sorted(self._run_flows),
            "run_stats": sorted(self._run_stats),
            "pending": {
                str(bin_index): {
                    "types": sorted(t.value for t in entry.types),
                    "flows": sorted(entry.flows),
                    "stats": sorted(entry.stats),
                }
                for bin_index, entry in self._pending.items()
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "OnlineEventAggregator":
        """Rebuild an aggregator from :meth:`state_dict` output."""
        aggregator = cls()
        aggregator._watermark = int(state["watermark"])
        aggregator._run_bins = [int(b) for b in state["run_bins"]]
        label = state["run_label"]
        aggregator._run_label = None if label is None else str(label)
        aggregator._run_flows = {int(f) for f in state["run_flows"]}
        aggregator._run_stats = {str(s) for s in state["run_stats"]}
        for bin_index, entry_state in dict(state["pending"]).items():
            entry = _BinEntry()
            entry.types = {TrafficType(t) for t in entry_state["types"]}
            entry.flows = {int(f) for f in entry_state["flows"]}
            entry.stats = {str(s) for s in entry_state["stats"]}
            aggregator._pending[int(bin_index)] = entry
        return aggregator

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _close_run(self) -> Optional[AnomalyEvent]:
        if not self._run_bins:
            return None
        event = AnomalyEvent(
            traffic_label=self._run_label,
            start_bin=self._run_bins[0],
            end_bin=self._run_bins[-1],
            od_flows=frozenset(self._run_flows),
            bins=tuple(self._run_bins),
            statistics=frozenset(self._run_stats),
        )
        self._run_bins = []
        self._run_label = None
        self._run_flows = set()
        self._run_stats = set()
        return event
