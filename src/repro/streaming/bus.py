"""Shared-memory chunk bus: one writer, ``K`` zero-copy readers per slot.

The multi-process drivers move every chunk from the feeding loop into the
worker processes.  Pickling an ``m x p`` float64 matrix through a
:class:`multiprocessing.Queue` copies it once per worker (serialize +
deserialize + allocate); at ``K`` workers that is ``K`` full copies of data
the workers only *read*.  The bus removes all of them:

* the **writer** owns one :class:`multiprocessing.shared_memory.SharedMemory`
  segment carved into a ring of fixed-size slots.  Publishing a chunk
  copies its matrices into the next free slot exactly once and returns a
  tiny picklable :class:`SlotDescriptor` (slot index + array shapes) that
  travels through the ordinary control queues;
* each **reader** attaches to the segment once and maps the descriptor
  back to read-only :class:`numpy.ndarray` views over the shared buffer —
  no copy, no pickle, regardless of ``K``;
* every slot carries a **refcount** (set to the reader count on publish,
  decremented on :meth:`ChunkBusReader.release`).  The writer blocks when
  the ring is full — the slot count is the backpressure window, exactly
  like a bounded queue's depth — and wakes on the shared condition when a
  reader frees a slot.

The bus is deliberately dumb: ordering, worker liveness, and error
propagation stay in the driver (:mod:`repro.streaming.parallel`), which
passes an ``alive_check`` callback so a writer never blocks forever on a
ring held by dead readers.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.streaming.sources import TrafficChunk
from repro.utils.validation import require

__all__ = ["SlotDescriptor", "ChunkBusHandle", "ChunkBusWriter",
           "ChunkBusReader", "chunk_slot_bytes"]


def _attach_segment(name: str):
    """Attach to an existing shared-memory segment without tracking it.

    Only the writer owns (and unlinks) the segment.  Before Python 3.13
    attaching registers the name with the resource tracker, which would
    unlink it again at reader exit and warn about a leak; ``track=False``
    (3.13+) avoids that.  On older versions registration is suppressed
    during the attach instead of unregistered afterwards: with ``K``
    forked readers sharing one tracker process, interleaved
    register/unregister pairs for the same name race (the tracker's cache
    holds each name once, so the second unregister lands on an absent
    entry and the tracker logs a ``KeyError``).
    """
    from multiprocessing import shared_memory
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker
        original = resource_tracker.register

        def register_all_but_shm(resource_name, rtype):
            if rtype != "shared_memory":
                original(resource_name, rtype)

        resource_tracker.register = register_all_but_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class SlotDescriptor:
    """The picklable footprint of one published chunk.

    ``arrays`` maps each array key (the traffic-type value for chunk
    payloads) to ``(byte offset within the slot, shape, dtype string)``;
    ``start_bin`` carries the chunk's stream-global position so readers
    never need the original :class:`TrafficChunk` object.
    """

    slot: int
    start_bin: int
    arrays: Tuple[Tuple[str, int, Tuple[int, ...], str], ...]

    @property
    def n_bins(self) -> int:
        """Number of timebins of the described chunk."""
        return int(self.arrays[0][2][0])


@dataclass(frozen=True)
class ChunkBusHandle:
    """Everything a reader process needs to attach to the bus.

    Picklable through :class:`multiprocessing.Process` inheritance (the
    refcount array and condition are multiprocessing primitives); create
    readers with ``ChunkBusReader(handle)`` inside the worker.
    """

    segment_name: str
    n_slots: int
    slot_bytes: int
    refcounts: object
    freed: object


def chunk_slot_bytes(chunk: TrafficChunk) -> int:
    """The slot size (bytes) needed to hold every matrix of *chunk*."""
    return int(sum(matrix.nbytes for matrix in chunk.matrices.values()))


class ChunkBusWriter:
    """The owning side of the bus: allocates the ring, publishes chunks.

    Parameters
    ----------
    slot_bytes:
        Capacity of one ring slot; every published chunk must fit (size the
        ring from the first — largest — chunk via :func:`chunk_slot_bytes`).
    n_slots:
        Ring length: how many chunks may be in flight before
        :meth:`publish` blocks on the readers (the backpressure window).
    n_readers:
        Readers attached to every slot; a slot is recycled only after this
        many :meth:`ChunkBusReader.release` calls.
    context:
        The :mod:`multiprocessing` context the reader processes are spawned
        from (primitives must come from the same context).
    """

    def __init__(self, slot_bytes: int, n_slots: int, n_readers: int,
                 context=None) -> None:
        from multiprocessing import shared_memory
        require(slot_bytes >= 1, "slot_bytes must be >= 1")
        require(n_slots >= 2, "n_slots must be >= 2 (one slot would "
                "serialize the writer behind every reader)")
        require(n_readers >= 1, "n_readers must be >= 1")
        context = context if context is not None else multiprocessing.get_context()
        self._slot_bytes = int(slot_bytes)
        self._n_slots = int(n_slots)
        self._n_readers = int(n_readers)
        self._segment = shared_memory.SharedMemory(
            create=True, size=self._slot_bytes * self._n_slots)
        # The refcounts are guarded by the condition's lock (a raw array
        # carries no lock of its own); readers notify on every free.
        self._refcounts = context.RawArray("i", self._n_slots)
        self._freed = context.Condition()
        self._next_slot = 0
        self._closed = False
        self._telemetry = None

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`~repro.telemetry.Telemetry` bundle (or ``None``)
        recording slot occupancy and writer-stall time."""
        self._telemetry = telemetry

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def n_slots(self) -> int:
        """Ring length (the backpressure window, in chunks)."""
        return self._n_slots

    @property
    def slot_bytes(self) -> int:
        """Capacity of one slot in bytes."""
        return self._slot_bytes

    @property
    def n_readers(self) -> int:
        """Readers that must release each slot before it is recycled."""
        return self._n_readers

    def handle(self) -> ChunkBusHandle:
        """The attachment handle to pass to reader processes."""
        return ChunkBusHandle(
            segment_name=self._segment.name,
            n_slots=self._n_slots,
            slot_bytes=self._slot_bytes,
            refcounts=self._refcounts,
            freed=self._freed,
        )

    # ------------------------------------------------------------------ #
    # publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        chunk: TrafficChunk,
        alive_check: Optional[Callable[[], None]] = None,
        poll_seconds: float = 1.0,
    ) -> SlotDescriptor:
        """Copy *chunk* into the next ring slot and return its descriptor.

        Blocks while the slot is still held by readers (ring full =
        backpressure); *alive_check* is invoked at *poll_seconds* cadence
        during the wait and may raise to abort a wait on dead readers.
        """
        require(not self._closed, "bus writer is closed")
        arrays: List[Tuple[str, int, Tuple[int, ...], str]] = []
        offset = 0
        for traffic_type, matrix in chunk.matrices.items():
            arrays.append((traffic_type.value, offset, matrix.shape,
                           matrix.dtype.str))
            offset += matrix.nbytes
        require(offset <= self._slot_bytes,
                f"chunk needs {offset} bytes but bus slots hold "
                f"{self._slot_bytes}; size the bus from the largest chunk")

        slot = self._next_slot
        telemetry = self._telemetry
        stall_started = None
        with self._freed:
            while self._refcounts[slot] != 0:
                if telemetry is not None and stall_started is None:
                    stall_started = time.perf_counter()
                if not self._freed.wait(timeout=poll_seconds):
                    if alive_check is not None:
                        alive_check()
            if telemetry is not None:
                if stall_started is not None:
                    telemetry.registry.counter(
                        "bus_writer_stall_seconds",
                        help="Time the bus writer spent blocked on a full "
                        "ring").inc(time.perf_counter() - stall_started)
                    telemetry.registry.counter(
                        "bus_writer_stalls",
                        help="Publishes that blocked on a full ring").inc()
                occupied = sum(1 for i in range(self._n_slots)
                               if self._refcounts[i] != 0)
                telemetry.registry.gauge(
                    "bus_slots_in_use",
                    help="Ring slots currently held by readers "
                    "(backpressure pressure; +1 is about to be "
                    "published)").set(occupied)
        base = slot * self._slot_bytes
        for (_, array_offset, _, _), matrix in zip(arrays,
                                                   chunk.matrices.values()):
            view = np.ndarray(matrix.shape, dtype=matrix.dtype,
                              buffer=self._segment.buf,
                              offset=base + array_offset)
            np.copyto(view, matrix)
        with self._freed:
            self._refcounts[slot] = self._n_readers
        self._next_slot = (slot + 1) % self._n_slots
        return SlotDescriptor(slot=slot, start_bin=chunk.start_bin,
                              arrays=tuple(arrays))

    def wait_all_released(
        self,
        alive_check: Optional[Callable[[], None]] = None,
        poll_seconds: float = 1.0,
    ) -> None:
        """Block until every slot has been released by every reader."""
        with self._freed:
            while any(self._refcounts[i] != 0 for i in range(self._n_slots)):
                if not self._freed.wait(timeout=poll_seconds):
                    if alive_check is not None:
                        alive_check()

    def close(self) -> None:
        """Release and unlink the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ChunkBusReader:
    """A worker-side attachment to the bus: maps descriptors to views."""

    def __init__(self, handle: ChunkBusHandle) -> None:
        self._handle = handle
        self._segment = _attach_segment(handle.segment_name)
        self._closed = False

    def map(self, descriptor: SlotDescriptor) -> Dict[str, np.ndarray]:
        """Read-only zero-copy views of the descriptor's arrays.

        The views alias the shared slot: drop every reference before (or
        by) calling :meth:`release`, after which the writer may overwrite
        the slot.
        """
        require(not self._closed, "bus reader is closed")
        base = descriptor.slot * self._handle.slot_bytes
        views: Dict[str, np.ndarray] = {}
        for key, offset, shape, dtype in descriptor.arrays:
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=self._segment.buf, offset=base + offset)
            view.flags.writeable = False
            views[key] = view
        return views

    def release(self, descriptor: SlotDescriptor) -> None:
        """Return the descriptor's slot; the last release frees it."""
        freed = self._handle.freed
        refcounts = self._handle.refcounts
        with freed:
            count = refcounts[descriptor.slot]
            require(count > 0, "slot released more times than published")
            refcounts[descriptor.slot] = count - 1
            if count == 1:
                freed.notify_all()

    def close(self) -> None:
        """Detach from the shared segment (idempotent; never unlinks)."""
        if self._closed:
            return
        self._closed = True
        self._segment.close()


def descriptor_matrices(views: Dict[str, np.ndarray],
                        traffic_types: Sequence[str]) -> List[np.ndarray]:
    """The mapped views in *traffic_types* order (driver convenience)."""
    return [views[t] for t in traffic_types]
