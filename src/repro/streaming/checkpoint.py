"""Durable checkpoints of the streaming network detector.

A checkpoint is a directory holding two files:

* ``state-<sha256 prefix>.npz`` — every numerical array of the detector
  state (per-type moment engines, calibrated snapshots) in float64, which
  round-trips bit-for-bit; the name carries a digest of the file contents;
* ``manifest.json`` — a human-readable manifest with the format version,
  the :class:`~repro.streaming.config.StreamingConfig`, all scalar state
  (stream positions, weights, aggregator watermark and open event run, the
  report accumulated so far), the expected npz array names, and the name +
  full SHA-256 of the arrays file it was written against.

Because the whole numerical trajectory is restored exactly, a detector
restored mid-stream and fed the remaining chunks emits the **identical**
remaining event list an uninterrupted run would have produced — the
restart-parity guarantee enforced by ``tests/test_streaming_checkpoint.py``.

Usage::

    detector.save("ckpt/")                      # between two chunks
    detector = StreamingNetworkDetector.restore("ckpt/")
    for chunk in remaining_chunks:              # e.g. a ChunkedSeriesSource
        detector.process_chunk(chunk)           #     with start_bin=...
    report = detector.finish()
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.streaming.pipeline import StreamingNetworkDetector
from repro.utils.validation import require

__all__ = ["CHECKPOINT_FORMAT_VERSION", "MANIFEST_FILENAME",
           "ARRAYS_FILENAME_PREFIX", "save_checkpoint", "load_checkpoint"]

#: Bumped whenever the on-disk layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1
MANIFEST_FILENAME = "manifest.json"
ARRAYS_FILENAME_PREFIX = "state-"


def _sha256_of_file(path: Path) -> str:
    """SHA-256 of a file in fixed-size chunks (O(1) extra memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def save_checkpoint(detector: StreamingNetworkDetector,
                    directory: Union[str, Path]) -> Path:
    """Write *detector*'s complete state into *directory*.

    *detector* may also be any object exposing ``to_network_detector()``
    (e.g. a :class:`~repro.streaming.hierarchy.HierarchicalNetworkDetector`):
    the checkpoint then persists the **merged** flat state, so every
    checkpoint on disk — flat, shard-parallel, or hierarchical — has one
    format and restores through :func:`load_checkpoint` into an ordinary
    single-process detector.

    The directory is created if needed.  Overwriting an existing checkpoint
    is crash-consistent: the arrays land under a content-addressed name
    (``state-<digest>.npz``) that never clobbers the previous save, the
    manifest referencing them is moved into place last with
    :func:`os.replace`, and only then are unreferenced array files garbage
    collected.  A crash at any point therefore leaves the previous
    checkpoint loadable (or the new one, once its manifest landed), and a
    manifest paired with the wrong arrays file is rejected at load time by
    the recorded SHA-256 instead of silently resuming from corrupt state.
    """
    # The lineage check must see the *original* object's run id: the
    # hierarchical detector's to_network_detector() (inside the inner save)
    # builds a fresh flat detector — and a fresh id — on every call.
    run_id = getattr(detector, "run_id", None)
    _require_same_lineage(Path(directory), run_id)
    telemetry = getattr(detector, "_telemetry", None)
    if telemetry is None:
        return _save_checkpoint(detector, directory, run_id)
    # Count first: the registry is serialized inside the save, so the
    # checkpoint (and a run restored from it) includes its own write.
    telemetry.registry.counter(
        "checkpoints", help="Checkpoints written").inc()
    with telemetry.span("checkpoint"):
        path = _save_checkpoint(detector, directory, run_id)
    return path


def _require_same_lineage(path: Path, run_id) -> None:
    """Refuse to overwrite (and garbage-collect) a foreign checkpoint.

    Two detectors pointed at one directory would otherwise destroy each
    other silently: the stale-GC after a save unlinks every non-current
    ``state-*.npz``, including the other run's arrays.  A manifest carrying
    a different lineage ``run_id`` therefore aborts the save with a clear
    error.  Manifests without a ``run_id`` (pre-lineage format) and
    detectors without one (``run_id=None``) stay overwritable for
    compatibility.
    """
    manifest_path = path / MANIFEST_FILENAME
    if run_id is None or not manifest_path.is_file():
        return
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        existing_id = existing.get("meta", {}).get("run_id")
    except (OSError, json.JSONDecodeError, AttributeError):
        # Unreadable manifest: nothing trustworthy to protect — the save
        # replaces it atomically either way.
        return
    require(existing_id is None or existing_id == run_id,
            f"checkpoint directory {path} holds a checkpoint from a "
            f"different detector run ({existing_id!r}); refusing to "
            f"overwrite it — use a separate directory per detector, or "
            f"restore from this checkpoint to continue its run")


def _save_checkpoint(detector: StreamingNetworkDetector,
                     directory: Union[str, Path],
                     run_id=None) -> Path:
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    if hasattr(detector, "to_network_detector"):
        detector = detector.to_network_detector()
    state = detector.state_dict()
    if run_id is not None:
        # The checkpoint's lineage is the *saving* object's, not the
        # throwaway merged detector's (hierarchical saves).
        state["meta"]["run_id"] = run_id
    arrays = state["arrays"]

    arrays_tmp = path / (ARRAYS_FILENAME_PREFIX + "incoming.npz.tmp")
    with open(arrays_tmp, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    digest = _sha256_of_file(arrays_tmp)
    arrays_name = f"{ARRAYS_FILENAME_PREFIX}{digest[:16]}.npz"
    os.replace(arrays_tmp, path / arrays_name)
    # Make the arrays rename durable before the manifest can reference it:
    # POSIX does not order the two rename metadata updates otherwise.
    _fsync_directory(path)

    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "meta": state["meta"],
        "array_names": sorted(arrays.keys()),
        "arrays_file": arrays_name,
        "arrays_sha256": digest,
    }
    manifest_tmp = path / (MANIFEST_FILENAME + ".tmp")
    with open(manifest_tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(manifest_tmp, path / MANIFEST_FILENAME)
    _fsync_directory(path)

    # Only after the new pair is durable may the previous arrays file go —
    # a power loss before this point leaves the old checkpoint loadable.
    for stale in path.glob(ARRAYS_FILENAME_PREFIX + "*.npz"):
        if stale.name != arrays_name:
            stale.unlink(missing_ok=True)
    return path


def _fsync_directory(path: Path) -> None:
    """Flush directory metadata (the renames) where the platform allows it."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_checkpoint(directory: Union[str, Path]) -> StreamingNetworkDetector:
    """Rebuild a :class:`StreamingNetworkDetector` from a checkpoint directory."""
    path = Path(directory)
    manifest_path = path / MANIFEST_FILENAME
    require(manifest_path.is_file(),
            f"no checkpoint manifest at {manifest_path}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    require(manifest.get("format_version") == CHECKPOINT_FORMAT_VERSION,
            f"unsupported checkpoint format version "
            f"{manifest.get('format_version')!r} "
            f"(expected {CHECKPOINT_FORMAT_VERSION})")
    arrays_path = path / str(manifest.get("arrays_file"))
    require(arrays_path.is_file(), f"no checkpoint arrays at {arrays_path}")
    digest = _sha256_of_file(arrays_path)
    require(digest == manifest.get("arrays_sha256"),
            "checkpoint arrays do not match the manifest checksum "
            "(arrays npz and manifest.json are from different saves)")
    with np.load(arrays_path, allow_pickle=False) as stored:
        arrays = {name: stored[name] for name in stored.files}
    require(sorted(arrays.keys()) == list(manifest["array_names"]),
            "checkpoint arrays do not match the manifest "
            "(truncated or mismatched state.npz)")
    return StreamingNetworkDetector.from_state(manifest["meta"], arrays)
