"""Durable checkpoints of the streaming network detector.

A checkpoint is a directory holding a small family of files:

* ``state-<sha256 prefix>.npz`` — every numerical array of the detector
  state (per-type moment engines, calibrated snapshots) in float64, which
  round-trips bit-for-bit; the name carries a digest of the file contents;
* ``manifest.json`` — the **current** manifest: format version, the
  :class:`~repro.streaming.config.StreamingConfig`, all scalar state
  (stream positions, weights, aggregator watermark and open event run, the
  report accumulated so far), the expected npz array names, and the name +
  full SHA-256 of the arrays file it was written against;
* ``manifest-<NNNNNN>.json`` — one manifest per retained **generation**
  (the fallback chain): each save appends a new generation and garbage
  collects beyond ``keep_generations``, so a torn or bit-flipped current
  checkpoint can fall back to the newest older generation that still
  verifies (:func:`load_checkpoint` with ``fallback=True``);
* ``quarantine/`` — corrupt manifests/arrays are **moved** here (never
  deleted) by a fallback load, preserving the evidence for post-mortems.

Because the whole numerical trajectory is restored exactly, a detector
restored mid-stream and fed the remaining chunks emits the **identical**
remaining event list an uninterrupted run would have produced — the
restart-parity guarantee enforced by ``tests/test_streaming_checkpoint.py``
and extended to torn-write recovery by ``tests/test_chaos.py``.

Usage::

    detector.save("ckpt/")                      # between two chunks
    detector = StreamingNetworkDetector.restore("ckpt/")
    for chunk in remaining_chunks:              # e.g. a ChunkedSeriesSource
        detector.process_chunk(chunk)           #     with start_bin=...
    report = detector.finish()
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zipfile
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.streaming.pipeline import StreamingNetworkDetector
from repro.utils.validation import require

__all__ = ["CHECKPOINT_FORMAT_VERSION", "MANIFEST_FILENAME",
           "ARRAYS_FILENAME_PREFIX", "QUARANTINE_DIRNAME",
           "save_checkpoint", "load_checkpoint", "has_checkpoint"]

#: Bumped whenever the on-disk layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1
MANIFEST_FILENAME = "manifest.json"
ARRAYS_FILENAME_PREFIX = "state-"
QUARANTINE_DIRNAME = "quarantine"

#: How many verified generations a save retains by default.
DEFAULT_KEEP_GENERATIONS = 3

_GENERATION_MANIFEST_RE = re.compile(r"^manifest-(\d{6,})\.json$")


def _sha256_of_file(path: Path) -> str:
    """SHA-256 of a file in fixed-size chunks (O(1) extra memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _generation_manifests(path: Path) -> List[Path]:
    """Generation manifests in the directory, oldest first."""
    found = []
    for candidate in path.glob("manifest-*.json"):
        match = _GENERATION_MANIFEST_RE.match(candidate.name)
        if match is not None:
            found.append((int(match.group(1)), candidate))
    return [p for _, p in sorted(found)]


def _generation_number(manifest_path: Path) -> int:
    match = _GENERATION_MANIFEST_RE.match(manifest_path.name)
    return int(match.group(1)) if match else 0


def has_checkpoint(directory: Union[str, Path]) -> bool:
    """Whether *directory* holds a current or fallback-generation manifest."""
    path = Path(directory)
    return (path / MANIFEST_FILENAME).is_file() or \
        bool(_generation_manifests(path))


def save_checkpoint(detector: StreamingNetworkDetector,
                    directory: Union[str, Path],
                    keep_generations: int = DEFAULT_KEEP_GENERATIONS) -> Path:
    """Write *detector*'s complete state into *directory*.

    *detector* may also be any object exposing ``to_network_detector()``
    (e.g. a :class:`~repro.streaming.hierarchy.HierarchicalNetworkDetector`):
    the checkpoint then persists the **merged** flat state, so every
    checkpoint on disk — flat, shard-parallel, or hierarchical — has one
    format and restores through :func:`load_checkpoint` into an ordinary
    single-process detector.

    The directory is created if needed.  Overwriting an existing checkpoint
    is crash-consistent: the arrays land under a content-addressed name
    (``state-<digest>.npz``) that never clobbers the previous save, the
    generation manifest and then the current manifest referencing them are
    moved into place with :func:`os.replace`, and only then are files
    beyond the last *keep_generations* verified generations garbage
    collected.  A crash at any point therefore leaves the previous
    checkpoint loadable (or the new one, once its manifest landed), and a
    manifest paired with the wrong arrays file is rejected at load time by
    the recorded SHA-256 instead of silently resuming from corrupt state.
    """
    # The lineage check must see the *original* object's run id: the
    # hierarchical detector's to_network_detector() (inside the inner save)
    # builds a fresh flat detector — and a fresh id — on every call.
    require(int(keep_generations) >= 1, "keep_generations must be >= 1")
    run_id = getattr(detector, "run_id", None)
    _require_same_lineage(Path(directory), run_id)
    telemetry = getattr(detector, "_telemetry", None)
    if telemetry is None:
        return _save_checkpoint(detector, directory, run_id,
                                int(keep_generations))
    # Count first: the registry is serialized inside the save, so the
    # checkpoint (and a run restored from it) includes its own write.
    telemetry.registry.counter(
        "checkpoints", help="Checkpoints written").inc()
    with telemetry.span("checkpoint"):
        path = _save_checkpoint(detector, directory, run_id,
                                int(keep_generations))
    return path


def _require_same_lineage(path: Path, run_id) -> None:
    """Refuse to overwrite (and garbage-collect) a foreign checkpoint.

    Two detectors pointed at one directory would otherwise destroy each
    other silently: the stale-GC after a save unlinks every unreferenced
    ``state-*.npz``, including the other run's arrays.  A manifest carrying
    a different lineage ``run_id`` therefore aborts the save with a clear
    error.  Manifests without a ``run_id`` (pre-lineage format) and
    detectors without one (``run_id=None``) stay overwritable for
    compatibility.
    """
    manifest_path = path / MANIFEST_FILENAME
    if run_id is None or not manifest_path.is_file():
        return
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        existing_id = existing.get("meta", {}).get("run_id")
    except (OSError, json.JSONDecodeError, AttributeError):
        # Unreadable manifest: nothing trustworthy to protect — the save
        # replaces it atomically either way.
        return
    require(existing_id is None or existing_id == run_id,
            f"checkpoint directory {path} holds a checkpoint from a "
            f"different detector run ({existing_id!r}); refusing to "
            f"overwrite it — use a separate directory per detector, or "
            f"restore from this checkpoint to continue its run")


def _next_generation(path: Path) -> int:
    """One past the highest generation on disk (current manifest included)."""
    highest = 0
    for manifest_path in _generation_manifests(path):
        highest = max(highest, _generation_number(manifest_path))
    try:
        with open(path / MANIFEST_FILENAME, "r", encoding="utf-8") as handle:
            highest = max(highest, int(json.load(handle).get("generation", 0)))
    except (OSError, json.JSONDecodeError, TypeError, ValueError):
        pass
    return highest + 1


def _write_manifest(manifest: dict, target: Path) -> None:
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def _save_checkpoint(detector: StreamingNetworkDetector,
                     directory: Union[str, Path],
                     run_id=None,
                     keep_generations: int = DEFAULT_KEEP_GENERATIONS) -> Path:
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    if hasattr(detector, "to_network_detector"):
        detector = detector.to_network_detector()
    state = detector.state_dict()
    if run_id is not None:
        # The checkpoint's lineage is the *saving* object's, not the
        # throwaway merged detector's (hierarchical saves).
        state["meta"]["run_id"] = run_id
    arrays = state["arrays"]
    generation = _next_generation(path)

    arrays_tmp = path / (ARRAYS_FILENAME_PREFIX + "incoming.npz.tmp")
    with open(arrays_tmp, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    digest = _sha256_of_file(arrays_tmp)
    arrays_name = f"{ARRAYS_FILENAME_PREFIX}{digest[:16]}.npz"
    os.replace(arrays_tmp, path / arrays_name)
    # Make the arrays rename durable before the manifest can reference it:
    # POSIX does not order the two rename metadata updates otherwise.
    _fsync_directory(path)

    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "generation": generation,
        "meta": state["meta"],
        "array_names": sorted(arrays.keys()),
        "arrays_file": arrays_name,
        "arrays_sha256": digest,
    }
    # Generation manifest first, current manifest last: a crash in between
    # leaves the previous current manifest valid and the new generation
    # reachable through the fallback chain.
    _write_manifest(manifest, path / f"manifest-{generation:06d}.json")
    _fsync_directory(path)
    _write_manifest(manifest, path / MANIFEST_FILENAME)
    _fsync_directory(path)

    _collect_stale_generations(path, manifest, keep_generations)
    return path


def _collect_stale_generations(path: Path, current: dict,
                               keep_generations: int) -> None:
    """Drop generations beyond the retention window, then orphaned arrays.

    Only runs after the new manifest pair is durable, so a power loss
    before this point leaves the old checkpoint loadable.  Generation
    manifests from a *different* lineage (a legacy same-directory reuse)
    are dropped outright — their arrays would otherwise pin foreign state
    forever.  The quarantine subdirectory is never touched.
    """
    current_run = current.get("meta", {}).get("run_id")
    kept: List[Path] = []
    for manifest_path in reversed(_generation_manifests(path)):
        lineage_ok = True
        if current_run is not None:
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle).get("meta", {})
                recorded = meta.get("run_id")
                lineage_ok = recorded is None or recorded == current_run
            except (OSError, json.JSONDecodeError, AttributeError):
                lineage_ok = False
        if lineage_ok and len(kept) < keep_generations:
            kept.append(manifest_path)
        else:
            manifest_path.unlink(missing_ok=True)

    referenced = {str(current.get("arrays_file"))}
    for manifest_path in kept:
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                referenced.add(str(json.load(handle).get("arrays_file")))
        except (OSError, json.JSONDecodeError):
            pass
    for stale in path.glob(ARRAYS_FILENAME_PREFIX + "*.npz"):
        if stale.name not in referenced:
            stale.unlink(missing_ok=True)


def _fsync_directory(path: Path) -> None:
    """Flush directory metadata (the renames) where the platform allows it."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _verify_and_load(path: Path,
                     manifest_path: Path) -> StreamingNetworkDetector:
    """Strictly verify one manifest + arrays pair and rebuild the detector."""
    require(manifest_path.is_file(),
            f"no checkpoint manifest at {manifest_path}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    require(manifest.get("format_version") == CHECKPOINT_FORMAT_VERSION,
            f"unsupported checkpoint format version "
            f"{manifest.get('format_version')!r} "
            f"(expected {CHECKPOINT_FORMAT_VERSION})")
    arrays_path = path / str(manifest.get("arrays_file"))
    require(arrays_path.is_file(), f"no checkpoint arrays at {arrays_path}")
    digest = _sha256_of_file(arrays_path)
    require(digest == manifest.get("arrays_sha256"),
            "checkpoint arrays do not match the manifest checksum "
            "(arrays npz and manifest.json are from different saves)")
    with np.load(arrays_path, allow_pickle=False) as stored:
        arrays = {name: stored[name] for name in stored.files}
    require(sorted(arrays.keys()) == list(manifest["array_names"]),
            "checkpoint arrays do not match the manifest "
            "(truncated or mismatched state.npz)")
    return StreamingNetworkDetector.from_state(manifest["meta"], arrays)


def _quarantine(path: Path, victim: Path) -> None:
    """Move a corrupt checkpoint file aside (never delete the evidence)."""
    if not victim.exists():
        return
    pen = path / QUARANTINE_DIRNAME
    pen.mkdir(exist_ok=True)
    target = pen / victim.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = pen / f"{victim.name}.{suffix}"
    os.replace(victim, target)


def _broken_files(path: Path, manifest_path: Path) -> List[Path]:
    """The file(s) a failed verification condemns: always the manifest,
    plus its arrays file when that exists but failed the digest/name
    check (a missing arrays file has nothing to move)."""
    victims = [manifest_path]
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            arrays_file = str(json.load(handle).get("arrays_file"))
        arrays_path = path / arrays_file
        if arrays_path.is_file():
            victims.append(arrays_path)
    except (OSError, json.JSONDecodeError, AttributeError):
        pass
    return victims


def load_checkpoint(directory: Union[str, Path], fallback: bool = False,
                    registry=None) -> StreamingNetworkDetector:
    """Rebuild a :class:`StreamingNetworkDetector` from a checkpoint directory.

    With ``fallback=False`` (the default) only the current manifest is
    considered and any corruption is a hard :class:`ValueError`.  With
    ``fallback=True`` the load walks the generation chain newest-first
    until a pair verifies end to end (manifest parse, format version,
    arrays present, SHA-256, array names); each failing pair is **moved**
    into ``quarantine/`` — preserving the evidence — and counted.  Pass a
    :class:`~repro.telemetry.registry.MetricsRegistry` as *registry* to
    surface ``checkpoint_fallbacks`` (loads that had to skip the newest
    state) and ``checkpoints_quarantined`` (files moved aside).
    """
    path = Path(directory)
    if not fallback:
        return _verify_and_load(path, path / MANIFEST_FILENAME)

    candidates: List[Path] = []
    current = path / MANIFEST_FILENAME
    if current.is_file():
        candidates.append(current)
    generations = list(reversed(_generation_manifests(path)))
    # The current manifest duplicates the newest generation; keep both in
    # the walk (either copy may be the torn one) but load whichever
    # verifies first.
    candidates.extend(generations)
    require(bool(candidates), f"no checkpoint manifest at {current}")

    quarantined = 0
    errors: List[str] = []
    for index, manifest_path in enumerate(candidates):
        try:
            detector = _verify_and_load(path, manifest_path)
        except (ValueError, OSError, KeyError, json.JSONDecodeError,
                zipfile.BadZipFile) as exc:
            errors.append(f"{manifest_path.name}: {exc}")
            for victim in _broken_files(path, manifest_path):
                _quarantine(path, victim)
                quarantined += 1
            continue
        if registry is not None:
            if quarantined:
                registry.counter(
                    "checkpoints_quarantined",
                    help="Corrupt checkpoint files moved to quarantine",
                ).inc(quarantined)
            if index > 0:
                registry.counter(
                    "checkpoint_fallbacks",
                    help="Checkpoint loads that fell back past corrupt "
                         "generations").inc()
        return detector
    if registry is not None and quarantined:
        registry.counter(
            "checkpoints_quarantined",
            help="Corrupt checkpoint files moved to quarantine",
        ).inc(quarantined)
    raise ValueError(
        "no loadable checkpoint generation in "
        f"{path} — every candidate failed verification: "
        + "; ".join(errors))


def newest_generation(directory: Union[str, Path]) -> Optional[int]:
    """The highest generation number on disk, ``None`` when empty."""
    path = Path(directory)
    generations = _generation_manifests(path)
    highest = _generation_number(generations[-1]) if generations else 0
    try:
        with open(path / MANIFEST_FILENAME, "r", encoding="utf-8") as handle:
            highest = max(highest, int(json.load(handle).get("generation", 0)))
    except (OSError, json.JSONDecodeError, TypeError, ValueError):
        pass
    return highest if highest > 0 else None
