"""Configuration of the streaming subspace-detection subsystem."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Mapping

from repro.core.limits import T2Scaling
from repro.utils.validation import ensure_probability, require

__all__ = ["StreamingConfig", "forgetting_from_half_life"]


def forgetting_from_half_life(half_life_bins: float) -> float:
    """The per-bin forgetting factor ``λ`` giving the requested half-life.

    A sample seen ``half_life_bins`` bins ago carries half the weight of the
    most recent sample: ``λ = 2 ** (-1 / half_life_bins)``.
    """
    require(half_life_bins > 0, "half_life_bins must be positive")
    return float(2.0 ** (-1.0 / half_life_bins))


@dataclass(frozen=True)
class StreamingConfig:
    """Knobs of the online detector.

    Parameters
    ----------
    n_normal:
        Dimension ``k`` of the normal subspace (paper: 4).
    confidence:
        Confidence level of both control limits (paper: 0.999).
    t2_scaling:
        T² scaling convention (see :class:`~repro.core.limits.T2Scaling`).
    use_t2:
        Whether the T² test is applied in addition to the SPE test.
    forgetting:
        Per-bin exponential forgetting factor ``λ`` of the running moments.
        ``1.0`` (the default) keeps infinite memory and makes a full-window
        replay numerically equivalent to the batch detector; values below 1
        implement the sliding window (see :func:`forgetting_from_half_life`).
    min_train_bins:
        Number of ingested bins before detection starts.  Until the model
        has seen this many bins (and its rank exceeds ``n_normal``), chunks
        are only used for training and no bins are flagged.
    recalibrate_every_bins:
        Threshold/eigenbasis refresh cadence: the subspace snapshot is
        recomputed from the running moments once at least this many new bins
        arrived since the last calibration.  ``1`` refreshes on every chunk.
    max_identified_flows:
        Cap on the number of OD flows identified per flagged bin.
    identify:
        Whether to run per-bin OD-flow identification at all (disable for
        pure detection throughput, e.g. in benchmarks).
    n_shards:
        Number of column shards of the moment engine.  ``1`` (the default)
        uses the single :class:`~repro.streaming.online_pca.OnlinePCA`;
        larger values partition the ``p`` OD-flow columns across a
        :class:`~repro.streaming.sharding.ShardedOnlinePCA` whose merged
        covariance matches the single engine up to float accumulation order.
    engine:
        Moment-engine family.  ``"exact"`` (the default) maintains the full
        ``p x p`` scatter and recalibrates through an ``O(p³)``
        ``eigh_descending``; ``"lowrank"`` maintains only the top
        ``n_normal + rank_slack`` eigenpairs via a
        :class:`~repro.streaming.low_rank.LowRankEigenTracker`, dropping
        the recalibration path to ``O(m·p·r + r³)`` per chunk.
    rank_slack:
        Extra eigenpairs tracked beyond ``n_normal`` by the low-rank
        engine (``r = n_normal + rank_slack``).  At least ``1`` — the
        detector requires strictly more components than the normal
        dimension, exactly as the batch fit does — and a handful of extra
        pairs is recommended: slack keeps the tracked top-``k`` subspace
        accurate under truncation and the SPE tail well approximated.
    drift_tolerance:
        Basis orthonormality-drift threshold ``max|UᵀU − I|`` above which
        the low-rank engine re-orthonormalizes (QR + small-core eigh).
    limits:
        Control-limit policy.  ``"fixed"`` (the default) applies the
        parametric limits recomputed at each recalibration verbatim;
        ``"adaptive"`` multiplies them by EWMA-smoothed empirical-quantile
        scales maintained by an
        :class:`~repro.streaming.adaptive_limits.AdaptiveControlLimits`
        policy — warm-up period, clamped drift rate, freeze-on-alarm — for
        non-stationary streams where the parametric limits lag the data.
    adaptive_warmup_bins:
        Clean (un-flagged) bins the adaptive policy observes before its
        scales may move; until then it behaves exactly like ``"fixed"``.
    adaptive_smoothing:
        EWMA weight of each new block quantile, in ``(0, 1]``.
    adaptive_max_drift:
        Per-block relative clamp on the scale movement; ``0`` pins the
        scales at ``1`` and reduces the adaptive policy to ``"fixed"``.
    adaptive_block_bins:
        Observed bins per empirical-quantile block of the adaptive policy.
    adaptive_freeze_factor:
        Freeze-on-alarm censoring cap, as a multiple of the current
        effective limit: statistic values above it are treated as
        anomalies and excluded from the quantile; values below it are
        treated as drift and tracked.
    parallel_mode:
        How :func:`~repro.streaming.parallel.parallel_stream_detect`
        distributes work.  ``"type"`` (the default) runs one detector per
        traffic type per worker — simple, but speedup saturates at the
        number of traffic types; ``"shard"`` gives every worker one column
        shard of **every** detector over a shared-memory chunk bus, so
        speedup follows the worker count instead.
    bus_slots:
        Ring length of the shared-memory chunk bus (shard mode): how many
        chunks may be in flight before the writer blocks on the readers —
        the bus-side backpressure window, in chunks.
    poll_seconds:
        Liveness-poll cadence of the multi-process drivers: the longest a
        blocked feed/drain waits before re-checking worker health.  Worker
        *death* wakes the driver immediately through its process sentinel
        regardless of this value (see :mod:`repro.streaming.parallel`).
    on_bad_chunk:
        Malformed-chunk policy of the network detector.  A chunk is
        malformed when any traffic type's matrix contains non-finite
        values (NaN/Inf) or its column count disagrees with the stream's
        established OD-flow dimension.  ``"raise"`` (the default) raises
        a :class:`ValueError` naming the chunk, traffic type, and defect;
        ``"quarantine"`` counts the chunk (``bad_chunks`` metric,
        ``report.n_bad_chunks``) and skips it, keeping the model and
        aggregator untouched — ingestion-side glitches (a collector
        emitting NaNs, a truncated export) degrade coverage instead of
        killing the run.
    n_pops:
        Default leaf count of the hierarchical detector
        (:class:`~repro.streaming.hierarchy.HierarchicalNetworkDetector`):
        how many per-PoP ingestion detectors feed the global one.  ``1``
        collapses the hierarchy to a flat run.
    telemetry:
        Master switch of the observability layer
        (:mod:`repro.telemetry`).  ``False`` (the default) keeps every
        hot-path hook a single ``is None`` check; ``True`` gives the run
        a :class:`~repro.telemetry.MetricsRegistry` + tracer, and the
        multi-process drivers merge the workers' registries into the
        coordinator's at shutdown.
    telemetry_sample_rate:
        Fraction of chunks whose trace spans are emitted as JSON-lines
        records (one seeded Bernoulli draw per chunk).  Latency
        *histograms* are always maintained regardless; sampling only
        bounds the structured-record volume.
    telemetry_seed:
        Seed of the span-sampling RNG — same seed, same chunk order ⇒
        same sampled set, which keeps instrumented reruns comparable.
    telemetry_trace_path:
        JSON-lines span sink path (empty: spans are timed but not
        written).  Workers append ``.<worker-id>`` so each process owns
        its file.
    telemetry_snapshot_path:
        Where the pipeline periodically writes a
        :class:`~repro.telemetry.HealthSnapshot` as JSON (atomic
        replace; empty: no snapshot file).  ``tools/status.py`` reads it.
    telemetry_snapshot_every_chunks:
        Snapshot cadence, in processed chunks.
    """

    n_normal: int = 4
    confidence: float = 0.999
    t2_scaling: T2Scaling = T2Scaling.HOTELLING
    use_t2: bool = True
    forgetting: float = 1.0
    min_train_bins: int = 64
    recalibrate_every_bins: int = 1
    max_identified_flows: int = 16
    identify: bool = True
    n_shards: int = 1
    engine: str = "exact"
    rank_slack: int = 8
    drift_tolerance: float = 1e-10
    limits: str = "fixed"
    adaptive_warmup_bins: int = 64
    adaptive_smoothing: float = 0.25
    adaptive_max_drift: float = 0.05
    adaptive_block_bins: int = 32
    adaptive_freeze_factor: float = 4.0
    on_bad_chunk: str = "raise"
    parallel_mode: str = "type"
    bus_slots: int = 8
    poll_seconds: float = 1.0
    n_pops: int = 1
    telemetry: bool = False
    telemetry_sample_rate: float = 0.05
    telemetry_seed: int = 0
    telemetry_trace_path: str = ""
    telemetry_snapshot_path: str = ""
    telemetry_snapshot_every_chunks: int = 16

    def __post_init__(self) -> None:
        object.__setattr__(self, "t2_scaling", T2Scaling(self.t2_scaling))
        require(self.n_normal >= 1, "n_normal must be >= 1")
        ensure_probability(self.confidence, "confidence")
        require(0.0 < self.forgetting <= 1.0, "forgetting must be in (0, 1]")
        require(self.min_train_bins >= 2, "min_train_bins must be >= 2")
        require(self.recalibrate_every_bins >= 1,
                "recalibrate_every_bins must be >= 1")
        require(self.max_identified_flows >= 1,
                "max_identified_flows must be >= 1")
        require(self.n_shards >= 1, "n_shards must be >= 1")
        require(self.engine in ("exact", "lowrank"),
                "engine must be 'exact' or 'lowrank'")
        require(self.rank_slack >= 1, "rank_slack must be >= 1 "
                "(the tracked rank r = n_normal + rank_slack must exceed "
                "the normal subspace dimension, as in the batch fit)")
        require(self.drift_tolerance >= 0.0, "drift_tolerance must be >= 0")
        require(self.limits in ("fixed", "adaptive"),
                "limits must be 'fixed' or 'adaptive'")
        require(self.adaptive_warmup_bins >= 1,
                "adaptive_warmup_bins must be >= 1")
        require(0.0 < self.adaptive_smoothing <= 1.0,
                "adaptive_smoothing must be in (0, 1]")
        require(self.adaptive_max_drift >= 0.0,
                "adaptive_max_drift must be >= 0")
        require(self.adaptive_block_bins >= 1,
                "adaptive_block_bins must be >= 1")
        require(self.adaptive_freeze_factor > 1.0,
                "adaptive_freeze_factor must be > 1")
        require(self.on_bad_chunk in ("raise", "quarantine"),
                "on_bad_chunk must be 'raise' or 'quarantine'")
        require(self.parallel_mode in ("type", "shard"),
                "parallel_mode must be 'type' or 'shard'")
        require(self.bus_slots >= 2, "bus_slots must be >= 2")
        require(self.poll_seconds > 0.0, "poll_seconds must be positive")
        require(self.n_pops >= 1, "n_pops must be >= 1")
        require(0.0 <= self.telemetry_sample_rate <= 1.0,
                "telemetry_sample_rate must be in [0, 1]")
        require(self.telemetry_snapshot_every_chunks >= 1,
                "telemetry_snapshot_every_chunks must be >= 1")
        require(not (self.engine == "lowrank" and self.n_shards > 1),
                "column sharding shards the exact scatter matrix and cannot "
                "be combined with the low-rank engine; ingest sharded and "
                "compress via repro.streaming.low_rank.compress_engine "
                "instead")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by streaming checkpoints)."""
        data = asdict(self)
        data["t2_scaling"] = T2Scaling(self.t2_scaling).value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StreamingConfig":
        """Inverse of :meth:`to_dict` (enum round-trips via its value)."""
        return cls(**dict(data))
