"""The online subspace anomaly detector.

:class:`StreamingSubspaceDetector` is the chunked counterpart of the batch
:class:`~repro.core.detector.SubspaceDetector`.  It consumes fixed-size
chunks of timebins for **one** traffic type, folds them into an
:class:`~repro.streaming.online_pca.OnlinePCA` engine, recalibrates its
subspace snapshot (normal axes + control limits) on a configurable cadence,
and flags the chunk's bins against the current snapshot — reusing the exact
classification (:func:`~repro.core.detector.classify_bins`), control-limit
(:func:`~repro.core.limits.control_limits`), and identification
(:func:`~repro.core.identification.identify_spe_flows` /
:func:`~repro.core.identification.identify_t2_flows`) pieces of the batch
path.

Parity with the batch detector: processing one chunk holding the entire
window (with ``forgetting = 1``) updates the moments with the full window
and then detects that same window against the freshly calibrated snapshot —
exactly what :meth:`SubspaceDetector.fit_detect` does, so the flagged bins
coincide bin-for-bin (up to floating-point round-off: the streaming SPE
uses the orthonormal-projection identity ``||x̃||² = ||x||² − ||Pᵀx||²``
instead of the batch path's explicit residual matrix, so a statistic lying
within ~``eps·||x||²`` of its control limit could classify differently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.detector import BinDetection, classify_bins
from repro.core.events import Detection
from repro.core.identification import identify_spe_flows, identify_t2_flows
from repro.core.limits import ControlLimits, T2Scaling, control_limits
from repro.flows.timeseries import TrafficType
from repro.streaming.adaptive_limits import AdaptiveControlLimits
from repro.streaming.config import StreamingConfig
from repro.streaming.online_pca import OnlinePCA
from repro.utils.validation import ensure_2d, require

__all__ = ["SubspaceSnapshot", "StreamDetection", "ChunkDetections",
           "StreamingSubspaceDetector", "make_engine", "make_limits_policy"]


def make_engine(config: StreamingConfig):
    """The moment engine a config asks for: exact, sharded, or low-rank."""
    if config.engine == "lowrank":
        from repro.streaming.low_rank import LowRankEigenTracker
        return LowRankEigenTracker(rank=config.n_normal + config.rank_slack,
                                   forgetting=config.forgetting,
                                   drift_tolerance=config.drift_tolerance)
    if config.n_shards > 1:
        from repro.streaming.sharding import ShardedOnlinePCA
        return ShardedOnlinePCA(n_shards=config.n_shards,
                                forgetting=config.forgetting)
    return OnlinePCA(forgetting=config.forgetting)


def make_limits_policy(config: StreamingConfig) -> Optional[AdaptiveControlLimits]:
    """The control-limit policy a config asks for (``None`` means fixed)."""
    if config.limits != "adaptive":
        return None
    return AdaptiveControlLimits(
        confidence=config.confidence,
        warmup_bins=config.adaptive_warmup_bins,
        smoothing=config.adaptive_smoothing,
        max_drift=config.adaptive_max_drift,
        block_bins=config.adaptive_block_bins,
        freeze_factor=config.adaptive_freeze_factor,
    )


@dataclass(frozen=True)
class SubspaceSnapshot:
    """A frozen subspace model: what the detector currently tests against.

    Produced by :meth:`StreamingSubspaceDetector.calibrate` from the running
    moments; immutable so detections made between recalibrations are
    attributable to one well-defined model state.
    """

    mean: np.ndarray
    normal_axes: np.ndarray
    eigenvalues: np.ndarray
    n_samples: int
    limits: ControlLimits
    n_bins_trained: int

    @property
    def n_normal(self) -> int:
        """Dimension ``k`` of the normal subspace."""
        return int(self.normal_axes.shape[1])

    @property
    def n_features(self) -> int:
        """Number of OD flows ``p``."""
        return int(self.normal_axes.shape[0])

    def state_dict(self) -> Dict[str, Dict]:
        """Serializable form as ``{"meta": scalars, "arrays": ndarrays}``."""
        return {
            "meta": {
                "n_samples": self.n_samples,
                "n_bins_trained": self.n_bins_trained,
                "limits": self.limits.to_dict(),
            },
            "arrays": {
                "mean": np.array(self.mean, dtype=float),
                "normal_axes": np.array(self.normal_axes, dtype=float),
                "eigenvalues": np.array(self.eigenvalues, dtype=float),
            },
        }

    @classmethod
    def from_state(cls, meta: Mapping,
                   arrays: Mapping[str, np.ndarray]) -> "SubspaceSnapshot":
        """Rebuild a snapshot from :meth:`state_dict` output."""
        return cls(
            mean=np.array(arrays["mean"], dtype=float),
            normal_axes=np.array(arrays["normal_axes"], dtype=float),
            eigenvalues=np.array(arrays["eigenvalues"], dtype=float),
            n_samples=int(meta["n_samples"]),
            limits=ControlLimits.from_dict(meta["limits"]),
            n_bins_trained=int(meta["n_bins_trained"]),
        )


@dataclass(frozen=True)
class StreamDetection:
    """One flagged timebin of the stream, with identified OD flows.

    ``bin_index`` is stream-global.  ``statistic`` is the primary statistic
    ("spe" wins over "t2" when both triggered, matching the batch pipeline's
    attribution); ``od_flows`` is empty when identification is disabled.
    """

    bin_index: int
    spe_value: float
    t2_value: float
    triggered_by: str
    statistic: str
    od_flows: Tuple[int, ...] = ()

    def to_detection(self, traffic_type: TrafficType) -> Detection:
        """Convert to a core :class:`~repro.core.events.Detection` triple."""
        require(len(self.od_flows) >= 1,
                "cannot build a Detection without identified OD flows "
                "(identification is disabled)")
        return Detection(
            traffic_type=TrafficType(traffic_type),
            bin_index=self.bin_index,
            od_flows=self.od_flows,
            statistic=self.statistic,
        )


@dataclass
class ChunkDetections:
    """Output of one detection pass over one chunk.

    During warmup (no calibrated snapshot yet) ``warmup`` is ``True``, the
    statistic arrays are ``None``, and no bins are flagged.
    """

    start_bin: int
    n_bins: int
    warmup: bool
    spe: Optional[np.ndarray] = None
    t2: Optional[np.ndarray] = None
    limits: Optional[ControlLimits] = None
    detections: List[StreamDetection] = field(default_factory=list)

    @property
    def end_bin(self) -> int:
        """Exclusive stream-global end bin of the chunk."""
        return self.start_bin + self.n_bins

    @property
    def anomalous_bins(self) -> List[int]:
        """Sorted stream-global indices of flagged bins."""
        return sorted(d.bin_index for d in self.detections)


class StreamingSubspaceDetector:
    """Online subspace detector over a chunked stream of one traffic matrix.

    Usage (single-pass, live)::

        detector = StreamingSubspaceDetector(StreamingConfig())
        for chunk in chunks:                    # each chunk is m x p
            result = detector.process_chunk(chunk)
            ...consume result.detections...

    The lower-level :meth:`ingest` / :meth:`calibrate` / :meth:`detect_chunk`
    methods support replay harnesses that separate the training pass from
    the detection pass (see :mod:`repro.streaming.pipeline`).
    """

    def __init__(self, config: StreamingConfig = StreamingConfig(),
                 engine=None) -> None:
        self._config = config
        self._engine = engine if engine is not None else make_engine(config)
        # A rank-limited engine that can never exceed n_normal components
        # would stay in warmup forever; reject it loudly up front.
        rank_limit = getattr(self._engine, "rank_limit", None)
        require(rank_limit is None or rank_limit > config.n_normal,
                f"engine tracks only {rank_limit} eigenpairs but the "
                f"detector needs more than n_normal={config.n_normal}; "
                f"increase the tracked rank")
        self._adaptive = make_limits_policy(config)
        self._snapshot: Optional[SubspaceSnapshot] = None
        self._bins_at_calibration = 0
        self._next_bin = 0
        self._telemetry = None
        self._metric_labels: Dict[str, str] = {}

    def bind_telemetry(self, telemetry, labels: Optional[Mapping[str, str]]
                       = None) -> None:
        """Attach a :class:`~repro.telemetry.Telemetry` bundle (or ``None``).

        *labels* (e.g. ``{"type": "bytes"}``) tag every metric this
        detector emits.  Unbound detectors skip all instrumentation at the
        cost of one ``is None`` check per hook.
        """
        self._telemetry = telemetry
        self._metric_labels = dict(labels) if labels else {}

    def _record_model_gauges(self) -> None:
        """Post-calibration model health: low-rank drift + adaptive scales."""
        registry = self._telemetry.registry
        labels = self._metric_labels
        engine = self._engine
        if hasattr(engine, "residual_energy"):
            registry.gauge("lowrank_residual_energy", labels,
                           help="Scatter energy outside the tracked "
                           "basis").set(engine.residual_energy)
            registry.gauge("lowrank_rank", labels,
                           help="Eigenpairs currently "
                           "tracked").set(engine.tracked_rank)
            registry.gauge(
                "lowrank_reorthogonalizations", labels,
                help="Drift-monitor re-orthonormalizations so far",
            ).set(engine.n_reorthogonalizations)
        if self._adaptive is not None:
            self._record_adaptive_gauges()

    def _record_adaptive_gauges(self) -> None:
        registry = self._telemetry.registry
        labels = self._metric_labels
        for name, extra, value, help_text in self._adaptive.telemetry_gauges():
            registry.gauge(name, {**labels, **extra},
                           help=help_text).set(value)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> StreamingConfig:
        """The streaming configuration."""
        return self._config

    @property
    def engine(self):
        """The underlying running-moments engine.

        An :class:`OnlinePCA` by default, or a
        :class:`~repro.streaming.sharding.ShardedOnlinePCA` when the config
        (or an explicit ``engine=`` argument) asks for column sharding —
        both expose the same accessor/serialization surface.
        """
        return self._engine

    @property
    def snapshot(self) -> Optional[SubspaceSnapshot]:
        """The current calibrated snapshot (``None`` during warmup)."""
        return self._snapshot

    @property
    def limits_policy(self) -> Optional[AdaptiveControlLimits]:
        """The adaptive control-limit policy (``None`` under fixed limits)."""
        return self._adaptive

    @property
    def effective_limits(self) -> Optional[ControlLimits]:
        """The limits the next chunk will be tested against.

        The snapshot's parametric limits under the fixed policy; those
        limits times the adaptive quantile scales under ``"adaptive"``.
        ``None`` during warmup.
        """
        if self._snapshot is None:
            return None
        if self._adaptive is None:
            return self._snapshot.limits
        return self._adaptive.apply(self._snapshot.limits)

    @property
    def is_warmed_up(self) -> bool:
        """Whether a snapshot is available and detection is active."""
        return self._snapshot is not None

    @property
    def bins_processed(self) -> int:
        """Stream-global index of the next expected bin."""
        return self._next_bin

    def advance_to(self, next_bin: int) -> None:
        """Record the stream position without ingesting or detecting.

        Used by drivers that split training and detection across objects
        (the hierarchical global detector detects chunks its *leaves*
        ingested), so a later checkpoint carries the true position.
        """
        require(next_bin >= self._next_bin,
                "the stream position can only move forward")
        self._next_bin = int(next_bin)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def ingest(self, chunk: np.ndarray) -> None:
        """Fold a chunk into the running moments without detecting."""
        tel = self._telemetry
        if tel is None:
            self._engine.partial_fit(chunk)
            return
        with tel.span("update", **self._metric_labels):
            self._engine.partial_fit(chunk)

    def _trainable(self) -> bool:
        config = self._config
        engine = self._engine
        if engine.n_bins_seen < max(config.min_train_bins, config.n_normal + 2):
            return False
        if engine.rank <= config.n_normal:
            return False
        # The F-based T² limit needs an effective sample count above k + 1;
        # heavy forgetting can keep it small even on a long stream.
        return engine.n_samples > config.n_normal + 1

    def calibrate(self) -> SubspaceSnapshot:
        """Recompute the subspace snapshot from the current moments."""
        tel = self._telemetry
        if tel is None:
            return self._calibrate()
        with tel.span("recalibrate", **self._metric_labels):
            snapshot = self._calibrate()
        tel.registry.counter(
            "recalibrations", self._metric_labels,
            help="Subspace snapshot recalibrations").inc()
        self._record_model_gauges()
        return snapshot

    def _calibrate(self) -> SubspaceSnapshot:
        require(self._trainable(),
                "not enough ingested data to calibrate the subspace model")
        config = self._config
        engine = self._engine
        # For the exact engines this is the (cached) O(p³) eigh of the
        # maintained covariance; a LowRankEigenTracker hands back its
        # incrementally maintained basis directly — nothing is decomposed.
        eigenvalues, axes = engine.eigenbasis()
        require(axes.shape[1] >= config.n_normal,
                f"engine tracks only {axes.shape[1]} axes but the normal "
                f"subspace needs {config.n_normal}; increase the tracked "
                f"rank (rank_slack) or wait for more data")
        limits = control_limits(
            eigenvalues,
            config.n_normal,
            engine.n_samples,
            config.confidence,
            config.t2_scaling,
        )
        self._snapshot = SubspaceSnapshot(
            mean=engine.mean.copy(),
            normal_axes=axes[:, :config.n_normal],
            eigenvalues=eigenvalues,
            n_samples=engine.n_samples,
            limits=limits,
            n_bins_trained=engine.n_bins_seen,
        )
        self._bins_at_calibration = engine.n_bins_seen
        return self._snapshot

    def maybe_calibrate(self) -> None:
        """Recalibrate when due: trainable and past the refresh cadence.

        The cadence check drivers share — the in-process ``process_chunk``,
        the shard-parallel coordinator, and the hierarchical global
        detector all call this after new bins land in the engine, so their
        snapshots refresh at the identical stream positions.
        """
        if not self._trainable():
            return
        stale = (self._engine.n_bins_seen - self._bins_at_calibration
                 >= self._config.recalibrate_every_bins)
        if self._snapshot is None or stale:
            self.calibrate()

    # ------------------------------------------------------------------ #
    # detection
    # ------------------------------------------------------------------ #
    def detect_chunk(self, chunk: np.ndarray, start_bin: int) -> ChunkDetections:
        """Flag the bins of *chunk* against the current snapshot.

        Does not update the moments; *start_bin* gives the chunk's
        stream-global position for reported bin indices.  Under the
        adaptive-limits policy the chunk's clean statistics are folded into
        the empirical-quantile tracker (the limits of *later* chunks), so
        even this non-ingesting path advances the threshold state.
        """
        snapshot = self._snapshot
        require(snapshot is not None, "detector has no calibrated snapshot")
        matrix = ensure_2d(chunk, "chunk")
        require(matrix.shape[1] == snapshot.n_features,
                "chunk has the wrong number of OD flows")
        tel = self._telemetry
        if tel is None:
            stats = self._center_statistics(matrix, snapshot)
            return self._classify_chunk(matrix, start_bin, snapshot, *stats)
        with tel.span("center", **self._metric_labels):
            stats = self._center_statistics(matrix, snapshot)
        with tel.span("detect", **self._metric_labels):
            result = self._classify_chunk(matrix, start_bin, snapshot, *stats)
        if self._adaptive is not None:
            self._record_adaptive_gauges()
        return result

    def _center_statistics(self, matrix: np.ndarray,
                           snapshot: SubspaceSnapshot):
        """Centering + subspace statistics: the "center" stage."""
        config = self._config
        centered = matrix - snapshot.mean
        scores = centered @ snapshot.normal_axes
        # The normal axes are orthonormal, so the SPE needs no residual
        # matrix: ``||x − PPᵀx||² = ||x||² − ||Pᵀx||``².  This replaces the
        # second GEMM (scores @ axes.T) plus an m x p temporary with two
        # O(m p) einsum reductions; per-row residuals are computed lazily
        # for the (rare) flagged bins that need identification.
        spe = (np.einsum("ij,ij->i", centered, centered)
               - np.einsum("ij,ij->i", scores, scores))
        np.clip(spe, 0.0, None, out=spe)
        lam = snapshot.eigenvalues[:snapshot.n_normal]
        safe = np.where(lam > 0, lam, np.inf)
        t2 = np.sum(scores**2 / safe[np.newaxis, :], axis=1)
        if config.t2_scaling is T2Scaling.RAW_EIGENFLOW:
            t2 = t2 / (snapshot.n_samples - 1)
        return centered, scores, spe, t2

    def _classify_chunk(self, matrix: np.ndarray, start_bin: int,
                        snapshot: SubspaceSnapshot, centered: np.ndarray,
                        scores: np.ndarray, spe: np.ndarray,
                        t2: np.ndarray) -> ChunkDetections:
        """Classification + identification: the "detect" stage."""
        config = self._config
        limits = snapshot.limits
        if self._adaptive is not None:
            limits = self._adaptive.apply(limits)
        flagged = classify_bins(spe, t2, limits, use_t2=config.use_t2,
                                bin_offset=start_bin)
        if self._adaptive is not None:
            self._adaptive.observe(spe, t2, snapshot.limits)
        detections = [
            self._build_detection(b, b.bin_index - start_bin, centered,
                                  scores, snapshot, limits)
            for b in flagged
        ]
        return ChunkDetections(
            start_bin=start_bin,
            n_bins=matrix.shape[0],
            warmup=False,
            spe=spe,
            t2=t2,
            limits=limits,
            detections=detections,
        )

    def _build_detection(
        self,
        flagged: BinDetection,
        row: int,
        centered: np.ndarray,
        scores: np.ndarray,
        snapshot: SubspaceSnapshot,
        limits: ControlLimits,
    ) -> StreamDetection:
        config = self._config
        statistic = "spe" if flagged.spe_triggered else "t2"
        od_flows: Tuple[int, ...] = ()
        if config.identify:
            if statistic == "spe":
                # Only flagged bins materialize their residual row.
                residual_row = (centered[row]
                                - scores[row] @ snapshot.normal_axes.T)
                flows = identify_spe_flows(residual_row, limits.spe,
                                           config.max_identified_flows)
            else:
                flows = identify_t2_flows(
                    centered[row],
                    snapshot.normal_axes,
                    snapshot.eigenvalues,
                    snapshot.n_samples,
                    limits.t2,
                    config.t2_scaling,
                    config.max_identified_flows,
                )
            od_flows = tuple(flows)
        return StreamDetection(
            bin_index=flagged.bin_index,
            spe_value=flagged.spe_value,
            t2_value=flagged.t2_value,
            triggered_by=flagged.triggered_by,
            statistic=statistic,
            od_flows=od_flows,
        )

    def process_chunk(self, chunk: np.ndarray,
                      start_bin: Optional[int] = None) -> ChunkDetections:
        """Ingest a chunk, recalibrate if due, and detect its bins.

        The update-then-detect order means a single chunk holding a full
        window reproduces the batch ``fit_detect`` on that window.
        """
        matrix = ensure_2d(chunk, "chunk")
        start = self._next_bin if start_bin is None else start_bin
        self.ingest(matrix)
        self.maybe_calibrate()
        if self._snapshot is None:
            result = ChunkDetections(start_bin=start, n_bins=matrix.shape[0],
                                     warmup=True)
        else:
            result = self.detect_chunk(matrix, start)
        self._next_bin = start + matrix.shape[0]
        return result

    # ------------------------------------------------------------------ #
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Dict]:
        """Complete detector state as ``{"meta": scalars, "arrays": ndarrays}``.

        Covers the moment engine, the calibrated snapshot (if any), and the
        stream-position bookkeeping; the config is **not** included (the
        checkpoint manifest stores it once for all traffic types).
        """
        engine_state = self._engine.state_dict()
        meta = {
            "engine": engine_state["meta"],
            "bins_at_calibration": self._bins_at_calibration,
            "next_bin": self._next_bin,
            "snapshot": None,
            "adaptive": None,
        }
        arrays = {f"engine__{k}": v for k, v in engine_state["arrays"].items()}
        if self._snapshot is not None:
            snapshot_state = self._snapshot.state_dict()
            meta["snapshot"] = snapshot_state["meta"]
            arrays.update(
                {f"snapshot__{k}": v
                 for k, v in snapshot_state["arrays"].items()})
        if self._adaptive is not None:
            adaptive_state = self._adaptive.state_dict()
            meta["adaptive"] = adaptive_state["meta"]
            arrays.update(
                {f"adaptive__{k}": v
                 for k, v in adaptive_state["arrays"].items()})
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def from_state(cls, config: StreamingConfig, meta: Mapping,
                   arrays: Mapping[str, np.ndarray]) -> "StreamingSubspaceDetector":
        """Rebuild a detector that resumes the stream mid-flight."""
        from repro.streaming.low_rank import LowRankEigenTracker
        from repro.streaming.sharding import ShardedOnlinePCA
        engine_kinds = {OnlinePCA.STATE_KIND: OnlinePCA,
                        ShardedOnlinePCA.STATE_KIND: ShardedOnlinePCA,
                        LowRankEigenTracker.STATE_KIND: LowRankEigenTracker}
        engine_meta = meta["engine"]
        try:
            engine_cls = engine_kinds[engine_meta["kind"]]
        except KeyError:
            raise ValueError(
                f"unknown engine kind {engine_meta['kind']!r}") from None
        engine = engine_cls.from_state(
            engine_meta,
            {k[len("engine__"):]: v for k, v in arrays.items()
             if k.startswith("engine__")})
        detector = cls(config, engine=engine)
        if meta["snapshot"] is not None:
            detector._snapshot = SubspaceSnapshot.from_state(
                meta["snapshot"],
                {k[len("snapshot__"):]: v for k, v in arrays.items()
                 if k.startswith("snapshot__")})
        # .get(): checkpoints written before the adaptive-limits policy
        # carry no "adaptive" entry and restore with the fixed policy.
        if meta.get("adaptive") is not None:
            require(detector._adaptive is not None,
                    "checkpoint carries adaptive-limits state but the config "
                    "asks for fixed limits")
            detector._adaptive = AdaptiveControlLimits.from_state(
                meta["adaptive"],
                {k[len("adaptive__"):]: v for k, v in arrays.items()
                 if k.startswith("adaptive__")})
        detector._bins_at_calibration = int(meta["bins_at_calibration"])
        detector._next_bin = int(meta["next_bin"])
        return detector
