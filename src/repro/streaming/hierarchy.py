"""Hierarchical detector aggregation: per-PoP leaves, one global model.

The paper's network-wide method is centralized: every link/OD-flow
measurement reaches one place where the ensemble is decomposed.  Deployed
at an ISP, measurements arrive *per PoP* — each PoP's collector sees only
its own slice of the timeline — and shipping every raw chunk to one host
just moves the bottleneck.  This module keeps ingestion local and
aggregates **models** instead of data:

* each **leaf** is an ordinary
  :class:`~repro.streaming.pipeline.StreamingNetworkDetector` fed only the
  chunks its PoP collected (training-only, via
  :meth:`~repro.streaming.pipeline.StreamingNetworkDetector.ingest_chunk`);
* the **global** per-type detectors own no moments of their own: their
  engine is a :class:`_MergedEngine` view that folds the leaves' moment
  engines together with the exact Chan parallel-moments combine
  (:func:`~repro.streaming.sharding.merge_online_pca` /
  :func:`~repro.streaming.low_rank.merge_low_rank`) on demand —
  ``O(K p²)`` per refresh, independent of how many bins the leaves hold;
* calibration cadence, detection, identification, and event fusion all run
  through the same code paths as the flat pipeline, so a hierarchical run
  over the identical chunk sequence emits the identical event list
  (``forgetting = 1`` makes the merge order-free; enforced by
  ``tests/test_streaming_hierarchy.py``).

Checkpointing: :meth:`HierarchicalNetworkDetector.to_network_detector`
materializes the merged state as a plain flat detector, so **checkpointing
a distributed hierarchy is checkpointing the merged state** — the saved
directory restores through the ordinary
:func:`~repro.streaming.checkpoint.load_checkpoint` and resumes as a
single-process run with the identical remaining events.
"""

from __future__ import annotations

import time
import uuid
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import AnomalyEvent
from repro.flows.timeseries import TrafficType
from repro.streaming.aggregator import OnlineEventAggregator
from repro.streaming.config import StreamingConfig
from repro.streaming.detector import ChunkDetections, StreamingSubspaceDetector
from repro.streaming.online_pca import OnlinePCA
from repro.streaming.pipeline import (
    StreamingNetworkDetector,
    StreamingReport,
    _dedup_types,
    _fuse_chunk_results,
)
from repro.streaming.sharding import ShardedOnlinePCA, merge_online_pca
from repro.streaming.sources import TrafficChunk
from repro.telemetry import Telemetry
from repro.utils.validation import require

__all__ = ["HierarchicalNetworkDetector"]


class _MergedEngine:
    """A read-only moment engine that is the merge of the leaves' engines.

    Exposes exactly the engine surface
    :class:`~repro.streaming.detector.StreamingSubspaceDetector` needs for
    calibration (``n_bins_seen`` / ``rank`` / ``n_samples`` / ``mean`` /
    ``eigenbasis`` / ``covariance`` / ``state_dict``) by delegating to a
    cached :func:`~repro.streaming.sharding.merge_online_pca` fold of the
    per-leaf engines, rebuilt only when a leaf ingested new data (keyed on
    the leaves' moment versions).  Column-sharded leaves are assembled
    (``.merged()``) before folding.  It never ingests: feeding data is the
    leaves' job.
    """

    def __init__(self, leaves: Sequence[StreamingNetworkDetector],
                 traffic_type: TrafficType, forgetting: float,
                 quarantined: Optional[set] = None) -> None:
        self._leaves = list(leaves)
        self._type = TrafficType(traffic_type)
        self._forgetting = forgetting
        # Shared (by reference) with the owning hierarchy: leaves whose pop
        # index is in this set are excluded from the fold, so a quarantined
        # leaf's stale moments stop shaping the global model until it is
        # reintegrated — at which point the exact merge folds everything it
        # ingested (including while quarantined) back in.
        self._quarantined = quarantined if quarantined is not None else set()
        self._cached: Optional[OnlinePCA] = None
        self._cache_key: Optional[Tuple] = None

    def _leaf_engines(self) -> List[Tuple[int, object]]:
        engines = []
        for index, leaf in enumerate(self._leaves):
            if index in self._quarantined:
                continue
            detector = leaf._detectors.get(self._type)
            if detector is not None:
                engines.append((index, detector.engine))
        return engines

    def merged(self):
        """The folded engine, rebuilt when a leaf saw new data or the
        quarantine set changed."""
        engines = self._leaf_engines()
        key = tuple((index, engine._version) for index, engine in engines)
        if self._cached is None or key != self._cache_key:
            flat = [engine.merged() if isinstance(engine, ShardedOnlinePCA)
                    else engine for _, engine in engines]
            if not flat:
                self._cached = OnlinePCA(forgetting=self._forgetting)
            else:
                self._cached = reduce(merge_online_pca, flat)
            self._cache_key = key
        return self._cached

    # ----- the engine surface the detector's calibration path reads ----- #
    @property
    def forgetting(self) -> float:
        return self._forgetting

    @property
    def n_features(self) -> Optional[int]:
        return self.merged().n_features

    @property
    def n_bins_seen(self) -> int:
        return self.merged().n_bins_seen

    @property
    def n_samples(self) -> int:
        return self.merged().n_samples

    @property
    def rank(self) -> int:
        return self.merged().rank

    @property
    def mean(self) -> np.ndarray:
        return self.merged().mean

    def eigenbasis(self):
        return self.merged().eigenbasis()

    def covariance(self) -> np.ndarray:
        return self.merged().covariance()

    def partial_fit(self, chunk) -> None:
        raise NotImplementedError(
            "the global engine is a merged view; ingest through the per-PoP "
            "leaves (HierarchicalNetworkDetector.process_chunk)")

    def state_dict(self) -> Dict[str, Dict]:
        """The merged engine's state — a flat, restorable engine state."""
        return self.merged().state_dict()


class HierarchicalNetworkDetector:
    """Two-level detector: per-PoP ingestion leaves, one global model.

    Drop-in compatible with the flat
    :class:`~repro.streaming.pipeline.StreamingNetworkDetector` driving
    loop — feed chunks through :meth:`process_chunk` (optionally naming the
    PoP that collected each chunk) and :meth:`finish` at end of stream.

    Parameters
    ----------
    config:
        Streaming configuration shared by the leaves and the global
        detectors.  ``forgetting`` must be ``1.0``: only then is the Chan
        moment merge order-free, which is what makes the hierarchy's global
        model — and therefore its event list — independent of how chunks
        were routed to PoPs and identical to a flat run.
    n_pops:
        Number of ingestion leaves; defaults to ``config.n_pops``.  ``1``
        collapses the hierarchy to an (equivalent) flat run.
    traffic_types:
        Types to analyze; defaults to the types of the first chunk.
    """

    def __init__(self, config: StreamingConfig = StreamingConfig(),
                 n_pops: Optional[int] = None,
                 traffic_types: Optional[Sequence[TrafficType]] = None,
                 leaf_deadline_bins: Optional[int] = None) -> None:
        n_pops = config.n_pops if n_pops is None else n_pops
        require(n_pops >= 1, "n_pops must be >= 1")
        require(leaf_deadline_bins is None or leaf_deadline_bins >= 1,
                "leaf_deadline_bins must be >= 1 when given")
        require(config.forgetting == 1.0,
                "hierarchical aggregation requires forgetting == 1.0 (the "
                "parallel-moments merge is only order-free without decay, "
                "so a forgetting run would depend on the PoP routing)")
        require(config.identify, "event fusion needs identified OD flows")
        self._config = config
        self._types: Optional[List[TrafficType]] = (
            _dedup_types(traffic_types) if traffic_types is not None else None)
        self._leaves = [StreamingNetworkDetector(config, traffic_types)
                        for _ in range(n_pops)]
        self._global: Dict[TrafficType, StreamingSubspaceDetector] = {}
        self._aggregator = OnlineEventAggregator()
        self._report = StreamingReport()
        self._finished = False
        self._chunk_index = 0
        self._telemetry = Telemetry.from_config(config)
        # The leaves share the hierarchy's bundle: one registry covers the
        # whole tree (their per-type "update" spans land next to the global
        # detectors' recalibrations), and leaves never write snapshots —
        # only process_chunk/finish do, and those are hierarchy-level.
        for leaf in self._leaves:
            leaf._telemetry = self._telemetry
        self._leaf_end_bin = [0] * n_pops
        # Leaf quarantine: pops in this set stopped producing (missed the
        # watermark deadline, crashed, or were quarantined by the operator)
        # and are excluded from every _MergedEngine fold until reintegrated.
        self._quarantined: set = set()
        self._leaf_deadline_bins = (None if leaf_deadline_bins is None
                                    else int(leaf_deadline_bins))
        self._run_started: Optional[float] = None
        # Lineage id for checkpoint-directory ownership: stable across the
        # hierarchy's saves even though every save materializes a fresh
        # merged flat detector (see repro.streaming.checkpoint).
        self._run_id = uuid.uuid4().hex

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> StreamingConfig:
        """The streaming configuration."""
        return self._config

    @property
    def run_id(self) -> str:
        """Lineage id stamped into this hierarchy's checkpoints."""
        return self._run_id

    @property
    def n_pops(self) -> int:
        """Number of per-PoP ingestion leaves."""
        return len(self._leaves)

    @property
    def report(self) -> StreamingReport:
        """The report accumulated so far (shared object, updated in place)."""
        return self._report

    def leaf(self, pop: int) -> StreamingNetworkDetector:
        """The ingestion detector of one PoP."""
        return self._leaves[pop]

    # ------------------------------------------------------------------ #
    # leaf quarantine
    # ------------------------------------------------------------------ #
    @property
    def quarantined_pops(self) -> frozenset:
        """Indices of the currently quarantined leaves."""
        return frozenset(self._quarantined)

    @property
    def coverage(self) -> float:
        """Fraction of leaves contributing to the global model (0..1]."""
        return (len(self._leaves) - len(self._quarantined)) / len(self._leaves)

    def quarantine_leaf(self, pop: int) -> None:
        """Exclude one leaf from the global model until it returns.

        Global detection continues over the healthy leaves: the next
        :class:`_MergedEngine` refresh folds only their moments, and the
        ``hierarchy_coverage`` gauge drops to match.  The leaf's own
        ingested state is untouched — :meth:`reintegrate_leaf` (or a chunk
        arriving for this pop) folds everything back via the exact merge.
        """
        require(0 <= pop < len(self._leaves),
                f"pop must lie in [0, {len(self._leaves)})")
        if pop in self._quarantined:
            return
        self._quarantined.add(pop)
        if self._telemetry is not None:
            self._telemetry.registry.counter(
                "leaf_quarantines",
                help="Leaves quarantined (silent or crashed PoPs)").inc()
        self._record_coverage()

    def reintegrate_leaf(self, pop: int) -> None:
        """Fold a returned leaf back into the global model (exact merge)."""
        require(0 <= pop < len(self._leaves),
                f"pop must lie in [0, {len(self._leaves)})")
        if pop not in self._quarantined:
            return
        self._quarantined.discard(pop)
        if self._telemetry is not None:
            self._telemetry.registry.counter(
                "leaf_reintegrations",
                help="Quarantined leaves folded back into the global "
                "model").inc()
        self._record_coverage()

    def _record_coverage(self) -> None:
        if self._telemetry is None:
            return
        registry = self._telemetry.registry
        registry.gauge(
            "quarantined_leaves",
            help="Leaves currently excluded from the global model").set(
                float(len(self._quarantined)))
        registry.gauge(
            "hierarchy_coverage",
            help="Fraction of leaves contributing to the global model").set(
                self.coverage)

    def _enforce_leaf_deadline(self) -> None:
        """Auto-quarantine leaves that fell past the watermark deadline."""
        if self._leaf_deadline_bins is None:
            return
        watermark = max(self._leaf_end_bin)
        for pop, end_bin in enumerate(self._leaf_end_bin):
            if pop in self._quarantined:
                continue
            if watermark - end_bin > self._leaf_deadline_bins:
                self.quarantine_leaf(pop)

    def global_detector(self, traffic_type: TrafficType) -> StreamingSubspaceDetector:
        """The global (merged-engine) detector of one traffic type."""
        return self._global[TrafficType(traffic_type)]

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def _types_for(self, chunk: TrafficChunk) -> List[TrafficType]:
        if self._types is None:
            self._types = chunk.traffic_types
        return self._types

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The observability bundle shared by the whole tree (or ``None``)."""
        return self._telemetry

    def _global_for(self, traffic_type: TrafficType) -> StreamingSubspaceDetector:
        detector = self._global.get(traffic_type)
        if detector is None:
            engine = _MergedEngine(self._leaves, traffic_type,
                                   self._config.forgetting,
                                   quarantined=self._quarantined)
            detector = StreamingSubspaceDetector(self._config, engine=engine)
            if self._telemetry is not None:
                detector.bind_telemetry(self._telemetry,
                                        {"type": traffic_type.value})
            self._global[traffic_type] = detector
        return detector

    def _update_runtime(self) -> None:
        if self._run_started is None:
            return
        runtime = time.perf_counter() - self._run_started
        self._report.runtime_seconds = runtime
        self._report.bins_per_second = (
            self._report.n_bins_processed / runtime if runtime > 0 else 0.0)
        if self._telemetry is not None:
            self._telemetry.registry.gauge(
                "runtime_seconds",
                help="Wall-clock processing time so far").set(runtime)

    def process_chunk(self, chunk: TrafficChunk,
                      pop: Optional[int] = None) -> List[AnomalyEvent]:
        """Ingest *chunk* at one PoP, then detect it against the global model.

        *pop* names the PoP that collected the chunk; by default chunks are
        routed round-robin (chunk index modulo ``n_pops``), which models
        interleaved arrival.  The global model the chunk is tested against
        always covers **everything every PoP ingested so far** — exactly
        the model a flat run would hold at this stream position.
        """
        require(not self._finished, "detector already finished")
        pop = self._chunk_index % len(self._leaves) if pop is None else pop
        require(0 <= pop < len(self._leaves),
                f"pop must lie in [0, {len(self._leaves)})")
        if self._run_started is None:
            self._run_started = time.perf_counter()
        tel = self._telemetry
        if tel is not None:
            tel.begin_chunk(self._chunk_index)
        types = self._types_for(chunk)
        if pop in self._quarantined:
            # The leaf produced again: fold its state back (exact merge).
            self.reintegrate_leaf(pop)
        self._leaves[pop].ingest_chunk(chunk)
        self._leaf_end_bin[pop] = max(self._leaf_end_bin[pop], chunk.end_bin)
        self._enforce_leaf_deadline()

        results: Dict[TrafficType, ChunkDetections] = {}
        for traffic_type in types:
            detector = self._global_for(traffic_type)
            detector.maybe_calibrate()
            if detector.snapshot is None:
                results[traffic_type] = ChunkDetections(
                    start_bin=chunk.start_bin, n_bins=chunk.n_bins,
                    warmup=True)
            else:
                results[traffic_type] = detector.detect_chunk(
                    chunk.matrix(traffic_type), chunk.start_bin)
            detector.advance_to(chunk.end_bin)
        events = _fuse_chunk_results(results, chunk, self._aggregator,
                                     self._report, tel)
        if any(result.warmup for result in results.values()):
            self._report.n_warmup_bins += chunk.n_bins
            if tel is not None:
                tel.registry.counter(
                    "warmup_bins",
                    help="Bins consumed before the model warmed up"
                ).inc(chunk.n_bins)
        self._chunk_index += 1
        if tel is not None:
            # Per-leaf ingestion lag: how far behind the global watermark
            # (the newest bin any PoP delivered) each leaf's last chunk is.
            watermark = max(self._leaf_end_bin)
            for index, end_bin in enumerate(self._leaf_end_bin):
                tel.registry.gauge(
                    "hierarchy_leaf_lag_bins", {"pop": str(index)},
                    help="Bins between the global watermark and this "
                    "PoP's last ingested chunk").set(watermark - end_bin)
            self._record_coverage()
            tel.end_chunk()
            self._update_runtime()
            tel.maybe_write_snapshot(self._report.n_chunks_processed)
        else:
            self._update_runtime()
        return events

    def finish(self) -> StreamingReport:
        """Flush the aggregator at end of stream and return the report."""
        if not self._finished:
            self._report.events.extend(self._aggregator.flush())
            self._finished = True
            self._update_runtime()
            if self._telemetry is not None:
                self._telemetry.write_snapshot()
        return self._report

    # ------------------------------------------------------------------ #
    # checkpoint (merge, then persist flat)
    # ------------------------------------------------------------------ #
    def to_network_detector(self) -> StreamingNetworkDetector:
        """The merged state as an equivalent flat network detector.

        Materializes every global detector's merged engine, snapshot, and
        stream position plus the shared aggregator/report into an ordinary
        :class:`~repro.streaming.pipeline.StreamingNetworkDetector`: fed
        the remaining chunks, it continues with the identical event list —
        and it checkpoints through the ordinary
        :func:`~repro.streaming.checkpoint.save_checkpoint`.
        """
        flat = StreamingNetworkDetector(self._config, self._types)
        for traffic_type, detector in self._global.items():
            state = detector.state_dict()
            twin = StreamingSubspaceDetector.from_state(
                self._config, state["meta"], state["arrays"])
            if flat._telemetry is not None:
                twin.bind_telemetry(flat._telemetry,
                                    {"type": traffic_type.value})
            flat._detectors[traffic_type] = twin
        flat._runtime_base = self._report.runtime_seconds
        flat._aggregator = OnlineEventAggregator.from_state(
            self._aggregator.state_dict())
        flat._report = StreamingReport.from_dict(self._report.to_dict())
        flat._finished = self._finished
        if flat._telemetry is not None and self._telemetry is not None:
            # The flat twin starts with a fresh bundle; carry the counters
            # over so a hierarchy checkpoint preserves them like any other.
            flat._telemetry.restore_state(self._telemetry.state_dict())
        return flat

    def save(self, directory) -> "HierarchicalNetworkDetector":
        """Checkpoint the **merged** state (see :meth:`to_network_detector`).

        The written directory is an ordinary flat checkpoint: restore with
        :meth:`StreamingNetworkDetector.restore` and keep streaming.
        """
        from repro.streaming.checkpoint import save_checkpoint
        save_checkpoint(self, directory)
        return self
