"""Incremental rank-``r`` eigenbasis tracking — recalibration without the eigh.

:class:`LowRankEigenTracker` replaces the ``O(p²)`` scatter matrix of
:class:`~repro.streaming.online_pca.OnlinePCA` (and its ``O(p³)``
``eigh_descending`` per recalibration) with the top-``r`` eigenpairs of the
same exponentially-forgotten scatter, maintained directly by Brand-style
rank-``m`` secular updates:

1. an incoming chunk's weighted scatter update is expressed as a **factor**
   ``V`` (``p x (m+1)`` columns: the ``√w``-scaled centered rows plus the
   Chan mean-shift column), so the update is ``M ← λ^m M + V Vᵀ``;
2. ``V`` is split into its component inside the tracked basis (``P = UᵀV``)
   and the orthonormalized out-of-span remainder (``QR`` of ``V − UP``);
3. a small ``(r+m+1) x (r+m+1)`` **core** eigenproblem rotates
   ``[U, Q]`` into the exact eigenbasis of the updated rank-``≤ r+m+1``
   matrix, of which the top ``r`` pairs are kept;
4. the discarded eigenvalue mass is folded into a **residual-energy
   scalar**, so the total trace of the maintained scatter stays *exact*
   (``Σ kept + ρ  ==  λ^m · trace_before + ‖V‖²_F`` holds to float
   round-off) — the Jackson–Mudholkar SPE limit then sees the exact
   residual energy ``φ₁`` with the unseen tail spread isotropically over
   the ``p − r`` untracked directions.

Per chunk of ``m`` bins the cost is ``O(p·(r+m)·m + (r+m)³)`` work and
``O(p·r)`` memory — versus ``O(m p²)`` + ``O(p³)``-per-refresh + ``O(p²)``
for the exact engine — which is what lets frequent-recalibration streaming
scale past the 121-flow Abilene matrix to thousands of OD flows.

Numerical safety comes from a **drift monitor**: every update measures the
basis orthonormality error ``max|UᵀU − I|`` and, when it exceeds the
configured tolerance, re-orthonormalizes via a thin QR plus an exact
``r x r`` core eigh (cost ``O(p r²)``, still never ``O(p³)``).

Interop: :func:`merge_low_rank` combines two trackers over disjoint
consecutive stream segments through the same machinery — the later
tracker's factored basis is one more rank-``r`` update, a small
``(2r+1)``-sized core problem — and :func:`compress_engine` converts an
exact :class:`OnlinePCA` / :class:`~repro.streaming.sharding.ShardedOnlinePCA`
(e.g. after a sharded ingest + exact Chan merge) into a tracker, so the
heavy history can be ingested exactly in parallel and then tracked cheaply.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.streaming.online_pca import _MomentTracker, eigh_descending
from repro.utils.validation import require

__all__ = ["LowRankEigenTracker", "merge_low_rank", "compress_engine"]

#: Relative floor under which an eigenvalue of the core problem is treated
#: as numerical zero (kept out of the basis, folded into residual energy).
_EIGENVALUE_RTOL = 1e-14


class LowRankEigenTracker(_MomentTracker):
    """Top-``r`` eigenpairs of the forgotten scatter, updated in place.

    Drop-in replacement for :class:`OnlinePCA` on the
    :class:`~repro.streaming.detector.StreamingSubspaceDetector` calibration
    path: :meth:`eigenbasis` returns the maintained basis directly — no
    covariance is ever materialized and no ``p x p`` eigendecomposition runs.

    Parameters
    ----------
    rank:
        Number of eigenpairs ``r`` to track.  Must be at least the normal
        subspace dimension ``k`` the consuming detector uses (the
        recommended slack of a few extra pairs keeps the tracked top-``k``
        subspace accurate and the SPE tail well approximated); the
        effective rank is capped at ``p`` on the first chunk.
    forgetting:
        Per-bin decay factor ``λ``, exactly as in :class:`OnlinePCA`.
    drift_tolerance:
        Orthonormality-drift threshold ``max|UᵀU − I|`` above which the
        basis is re-orthonormalized (QR + exact small-core eigh).  ``0``
        re-orthonormalizes after every update; larger values make the
        monitor cheaper to satisfy.
    """

    #: Engine-kind tag written into checkpoint manifests.
    STATE_KIND = "low_rank_eigen"

    def __init__(self, rank: int, forgetting: float = 1.0,
                 drift_tolerance: float = 1e-10) -> None:
        require(rank >= 1, "rank must be >= 1")
        require(drift_tolerance >= 0.0, "drift_tolerance must be >= 0")
        super().__init__(forgetting)
        self._rank = int(rank)
        self._drift_tolerance = float(drift_tolerance)
        self._basis: Optional[np.ndarray] = None      # p x k, k <= rank
        self._eigenvalues: Optional[np.ndarray] = None  # (k,), scatter scale
        self._residual_energy = 0.0
        self._n_reorthogonalizations = 0

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def rank_limit(self) -> int:
        """The configured maximum number of tracked eigenpairs ``r``."""
        return self._rank

    @property
    def tracked_rank(self) -> int:
        """Number of eigenpairs currently held (``<= rank_limit``)."""
        return 0 if self._eigenvalues is None else int(self._eigenvalues.size)

    @property
    def rank(self) -> int:
        """Usable component count: tracked pairs, capped by bins seen.

        Unlike the exact engines (whose ``min(bins, p)`` merely bounds the
        decomposition size), the tracker reports the directions it actually
        holds — rank-deficient input yields fewer than ``r`` pairs and the
        detector's trainability gate sees that directly.
        """
        return min(self.tracked_rank, self._n_bins_seen)

    @property
    def residual_energy(self) -> float:
        """Scatter-scale energy ``ρ`` outside the tracked basis (exact trace
        complement: ``trace(M) == Σ eigenvalues + ρ``)."""
        return self._residual_energy

    @property
    def drift_tolerance(self) -> float:
        """The orthonormality-drift threshold of the re-orth monitor."""
        return self._drift_tolerance

    @property
    def n_reorthogonalizations(self) -> int:
        """How many times the drift monitor re-orthonormalized the basis."""
        return self._n_reorthogonalizations

    # ------------------------------------------------------------------ #
    # scatter storage (factored)
    # ------------------------------------------------------------------ #
    def _initialize_scatter(self, n_features: int) -> None:
        self._rank = min(self._rank, n_features)

    def _apply_scatter_update(self, centered: np.ndarray,
                              weights: Optional[np.ndarray],
                              delta: np.ndarray, decay: float,
                              outer_coefficient: float) -> None:
        if weights is None:
            update_rows = centered
        else:
            update_rows = centered * np.sqrt(weights)[:, np.newaxis]
        # ``centered`` may be the tracker's reusable scratch buffer, so the
        # factor must not alias it past this call; .T is a view, but every
        # consumer below reads it before partial_fit returns.
        factor = update_rows.T
        if outer_coefficient > 0.0:
            factor = np.concatenate(
                [factor, np.sqrt(outer_coefficient) * delta[:, np.newaxis]],
                axis=1)
        self._apply_factored_update(np.ascontiguousarray(factor), decay)

    def _apply_factored_update(self, factor: np.ndarray, decay: float) -> None:
        """Fold ``M ← decay·M + factor @ factorᵀ`` into the tracked pairs.

        ``factor`` is ``p x q``; the update is exact on the rank-``≤ k+q``
        matrix spanned by the current basis and the factor, and the
        eigenvalue mass beyond the top ``r`` pairs goes to the residual
        scalar — keeping the total trace exact.
        """
        if self._basis is None:
            # First update: thin SVD of the factor is the eigendecomposition
            # of factor @ factorᵀ.
            left, singular, _ = np.linalg.svd(factor, full_matrices=False)
            values = singular**2
            keep = self._keep_count(values)
            self._basis = np.ascontiguousarray(left[:, :keep])
            self._eigenvalues = values[:keep].copy()
            self._residual_energy = (self._residual_energy * decay
                                     + float(values[keep:].sum()))
            return

        basis, values = self._basis, self._eigenvalues
        k = values.size
        projected = basis.T @ factor                      # k x q
        remainder = factor - basis @ projected            # p x q
        ortho, triangular = np.linalg.qr(remainder)       # p x q', q' x q
        q_new = triangular.shape[0]

        core = np.empty((k + q_new, k + q_new))
        head = projected @ projected.T
        head[np.arange(k), np.arange(k)] += decay * values
        core[:k, :k] = head
        core[:k, k:] = projected @ triangular.T
        core[k:, :k] = core[:k, k:].T
        core[k:, k:] = triangular @ triangular.T

        core_values, rotation = eigh_descending(core)
        keep = self._keep_count(core_values)
        self._basis = np.concatenate([basis, ortho], axis=1) @ rotation[:, :keep]
        self._eigenvalues = core_values[:keep].copy()
        self._residual_energy = (self._residual_energy * decay
                                 + float(core_values[keep:].sum()))
        self._maybe_reorthogonalize()

    def _keep_count(self, values: np.ndarray) -> int:
        """How many leading eigenvalues to keep: top ``r``, numerically
        nonzero only (junk directions with round-off eigenvalues would
        pollute the basis and inflate the reported rank)."""
        if values.size == 0 or values[0] <= 0.0:
            return 0
        floor = values[0] * _EIGENVALUE_RTOL
        return int(min(self._rank, np.count_nonzero(values > floor)))

    def _maybe_reorthogonalize(self) -> None:
        basis = self._basis
        if basis is None or basis.size == 0:
            return
        gram = basis.T @ basis
        gram[np.arange(gram.shape[0]), np.arange(gram.shape[0])] -= 1.0
        if float(np.abs(gram).max()) <= self._drift_tolerance:
            return
        # Thin QR restores orthonormality; the exact small-core eigh
        # re-diagonalizes the tracked matrix in the repaired basis.  Trace
        # is preserved by folding the (tiny) difference into the residual.
        ortho, triangular = np.linalg.qr(basis)
        core = (triangular * self._eigenvalues) @ triangular.T
        core_values, rotation = eigh_descending(core)
        keep = self._keep_count(core_values)
        kept_before = float(self._eigenvalues.sum())
        self._basis = ortho @ rotation[:, :keep]
        self._eigenvalues = core_values[:keep].copy()
        self._residual_energy = max(
            0.0, self._residual_energy + kept_before
            - float(core_values[:keep].sum()))
        self._n_reorthogonalizations += 1

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def eigenbasis(self) -> Tuple[np.ndarray, np.ndarray]:
        """Maintained eigenpairs — **no decomposition runs here**.

        Returns covariance-scale eigenvalues of full length ``p`` (the
        tracked top pairs exactly as maintained, then the residual energy
        spread evenly over the ``p − k`` untracked directions so the SPE
        limit's ``φ₁`` is exact) and the ``p x k`` tracked axes.  Consumers
        slice the leading columns, exactly as with the ``p x p`` basis of
        the exact engines.
        """
        require(self._basis is not None, "no data ingested yet")
        if self._basis_version != self._version:
            require(self._weight_sum > 1.0,
                    "need total weight > 1 for a sample covariance")
            scale = self._weight_sum - 1.0
            p, k = self._n_features, self._eigenvalues.size
            values = np.zeros(p)
            values[:k] = self._eigenvalues / scale
            if p > k:
                values[k:] = max(self._residual_energy, 0.0) / scale / (p - k)
            axes = self._basis.view()
            values.setflags(write=False)
            axes.setflags(write=False)
            self._cached_eigenvalues = values
            self._cached_axes = axes
            self._basis_version = self._version
        return self._cached_eigenvalues, self._cached_axes

    def covariance(self) -> np.ndarray:
        """The isotropic-completion covariance surrogate (diagnostics only).

        ``(U diag(s − τ) Uᵀ + τ I) / (Σw − 1)`` with the untracked energy
        spread ``τ = ρ / (p − k)`` — the matrix whose eigenpairs
        :meth:`eigenbasis` reports.  Costs ``O(p² k)``; the streaming hot
        path never calls it.
        """
        require(self._basis is not None, "no data ingested yet")
        require(self._weight_sum > 1.0,
                "need total weight > 1 for a sample covariance")
        p, k = self._n_features, self._eigenvalues.size
        tail = max(self._residual_energy, 0.0) / (p - k) if p > k else 0.0
        surrogate = (self._basis * (self._eigenvalues - tail)) @ self._basis.T
        surrogate[np.arange(p), np.arange(p)] += tail
        return surrogate / (self._weight_sum - 1.0)

    # ------------------------------------------------------------------ #
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Dict]:
        """Complete tracker state as ``{"meta": scalars, "arrays": ndarrays}``.

        Float64 arrays round-trip bit-for-bit through the npz checkpoint
        layer, so a restored tracker continues the stream on the identical
        numerical trajectory.
        """
        meta = self._scalar_state(self.STATE_KIND)
        meta["rank"] = self._rank
        meta["drift_tolerance"] = self._drift_tolerance
        meta["residual_energy"] = self._residual_energy
        meta["n_reorthogonalizations"] = self._n_reorthogonalizations
        arrays: Dict[str, np.ndarray] = {}
        if self._n_features is not None:
            arrays["mean"] = np.array(self._mean, dtype=float)
            arrays["basis"] = np.array(self._basis, dtype=float)
            arrays["eigenvalues"] = np.array(self._eigenvalues, dtype=float)
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def from_state(cls, meta: Mapping,
                   arrays: Mapping[str, np.ndarray]) -> "LowRankEigenTracker":
        """Rebuild a tracker from :meth:`state_dict` output."""
        require(meta.get("kind") == cls.STATE_KIND,
                f"state is not a {cls.STATE_KIND} state")
        tracker = cls(rank=int(meta["rank"]),
                      forgetting=float(meta["forgetting"]),
                      drift_tolerance=float(meta["drift_tolerance"]))
        if meta["has_data"]:
            mean = np.array(arrays["mean"], dtype=float)
            basis = np.array(arrays["basis"], dtype=float)
            values = np.array(arrays["eigenvalues"], dtype=float)
            require(basis.ndim == 2 and basis.shape == (mean.size, values.size),
                    "basis shape does not match the mean/eigenvalue sizes")
            require(values.size <= tracker._rank,
                    "state holds more eigenpairs than the tracker rank")
            tracker._n_features = mean.size
            tracker._mean = mean
            tracker._basis = basis
            tracker._eigenvalues = values
        tracker._residual_energy = float(meta["residual_energy"])
        tracker._n_reorthogonalizations = int(meta["n_reorthogonalizations"])
        tracker._restore_scalars(meta)
        return tracker


def merge_low_rank(earlier: LowRankEigenTracker,
                   later: LowRankEigenTracker) -> LowRankEigenTracker:
    """Combine trackers over disjoint consecutive segments — a ``2r`` core.

    The low-rank counterpart of
    :func:`~repro.streaming.sharding.merge_online_pca`: the later segment's
    factored scatter (``U₂ √S₂``, plus the Chan mean-shift column) is one
    more factored update of the earlier tracker, so the merge costs one
    ``(r₁+r₂+1)``-sized core eigenproblem instead of anything ``O(p²)``.
    The residual energies add (the later one undecayed, exactly as the
    later segment's scatter enters the Chan combine undecayed), keeping
    the merged trace exact.  Associativity holds in the same sense as the
    exact merge; the truncation to the top ``r`` pairs is the only
    deviation from it, bounded by the discarded mass.
    """
    require(earlier.forgetting == later.forgetting,
            "trackers must share the same forgetting factor")
    require(earlier.drift_tolerance == later.drift_tolerance,
            "trackers must share the same drift tolerance")
    if later.n_features is None:
        return LowRankEigenTracker.from_state(**earlier.state_dict())
    if earlier.n_features is None:
        return LowRankEigenTracker.from_state(**later.state_dict())
    require(earlier.n_features == later.n_features,
            "trackers must share the same number of OD flows")

    merged = LowRankEigenTracker.from_state(**earlier.state_dict())
    merged._rank = max(earlier.rank_limit, later.rank_limit)
    second = later.state_dict()
    decay = earlier.forgetting ** later.n_bins_seen
    later_factor = second["arrays"]["basis"] * np.sqrt(
        second["arrays"]["eigenvalues"])

    def scatter_update(delta: np.ndarray, coefficient: float) -> None:
        factor = later_factor
        if coefficient > 0.0:
            factor = np.concatenate(
                [factor, np.sqrt(coefficient) * delta[:, np.newaxis]], axis=1)
        merged._apply_factored_update(factor, decay)
        merged._residual_energy += float(second["meta"]["residual_energy"])

    merged._merge_weighted_chunk(
        chunk_weight=second["meta"]["weight_sum"],
        chunk_weight_sq=second["meta"]["weight_sq_sum"],
        chunk_mean=second["arrays"]["mean"],
        decay=decay,
        decay_sq=decay**2,
        n_bins=later.n_bins_seen,
        scatter_update=scatter_update,
    )
    return merged


def compress_engine(engine, rank: int,
                    drift_tolerance: float = 1e-10) -> LowRankEigenTracker:
    """Compress any moment engine into a :class:`LowRankEigenTracker`.

    Accepts an :class:`OnlinePCA`, a
    :class:`~repro.streaming.sharding.ShardedOnlinePCA` (whose merged
    eigenbasis is taken — the sharding interop path: ingest the heavy
    history exactly in parallel, merge, then track cheaply), or another
    tracker (re-compression to a smaller rank).  The top-``rank``
    eigenpairs are kept and everything else becomes residual energy, so
    the compressed trace equals the source trace exactly.
    """
    require(rank >= 1, "rank must be >= 1")
    require(engine.n_features is not None, "engine has no data to compress")
    values, axes = engine.eigenbasis()
    scale = engine.weight_sum - 1.0
    require(scale > 0.0, "need total weight > 1 to compress an engine")
    keep = int(min(rank, axes.shape[1], np.count_nonzero(values > 0.0)))
    kept_values = values[:keep] * scale
    total_energy = float(values.sum()) * scale
    meta = {
        "kind": LowRankEigenTracker.STATE_KIND,
        "forgetting": engine.forgetting,
        "weight_sum": engine.weight_sum,
        "weight_sq_sum": engine.weight_sq_sum,
        "n_bins_seen": engine.n_bins_seen,
        "has_data": True,
        "rank": int(rank),
        "drift_tolerance": float(drift_tolerance),
        "residual_energy": max(0.0, total_energy - float(kept_values.sum())),
        "n_reorthogonalizations": 0,
    }
    arrays = {
        "mean": np.array(engine.mean, dtype=float),
        "basis": np.array(axes[:, :keep], dtype=float),
        "eigenvalues": np.array(kept_values, dtype=float),
    }
    return LowRankEigenTracker.from_state(meta, arrays)
