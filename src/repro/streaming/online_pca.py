"""Incrementally maintained PCA of the OD-flow ensemble.

:class:`OnlinePCA` replaces the batch SVD of the full timeseries history
with running first and second moments updated chunk by chunk:

* the per-OD-flow **mean** and the ``p x p`` centered **scatter matrix** are
  merged with each incoming chunk using the exact parallel-moments update
  (Chan et al.), so with no forgetting the maintained covariance equals the
  batch sample covariance of everything seen so far — bit-for-bit up to
  floating-point accumulation order;
* an optional per-bin **exponential forgetting factor** ``λ < 1`` decays old
  bins geometrically, implementing the sliding window that lets the normal
  subspace track diurnal drift without refitting;
* the **eigenbasis** (principal axes and eigenvalues) is obtained on demand
  from a ``p x p`` symmetric eigendecomposition of the maintained covariance
  — ``O(p³)`` once per recalibration instead of ``O(n p²)`` per chunk for a
  full-history SVD — and cached until new data arrives.

Cost per ingested chunk of ``m`` bins is ``O(m p²)`` (one rank-``m`` scatter
update) with ``O(p²)`` memory, independent of the stream length ``n``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import ensure_2d, require

__all__ = ["OnlinePCA"]


class OnlinePCA:
    """Running mean/covariance PCA with exponential forgetting.

    Parameters
    ----------
    forgetting:
        Per-bin decay factor ``λ`` in ``(0, 1]``.  With ``λ = 1`` the model
        accumulates all history with uniform weight (and exactly reproduces
        the batch sample covariance); with ``λ < 1`` a bin seen ``d`` bins
        ago carries weight ``λ^d``.
    """

    def __init__(self, forgetting: float = 1.0) -> None:
        require(0.0 < forgetting <= 1.0, "forgetting must be in (0, 1]")
        self._forgetting = float(forgetting)
        self._n_features: Optional[int] = None
        self._mean: Optional[np.ndarray] = None
        self._scatter: Optional[np.ndarray] = None
        self._weight_sum = 0.0
        self._weight_sq_sum = 0.0
        self._n_bins_seen = 0
        self._version = 0
        self._basis_version = -1
        self._cached_eigenvalues: Optional[np.ndarray] = None
        self._cached_axes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def forgetting(self) -> float:
        """The per-bin forgetting factor ``λ``."""
        return self._forgetting

    @property
    def n_features(self) -> Optional[int]:
        """Number of OD flows ``p`` (``None`` before the first chunk)."""
        return self._n_features

    @property
    def n_bins_seen(self) -> int:
        """Total number of bins ingested (not decayed)."""
        return self._n_bins_seen

    @property
    def weight_sum(self) -> float:
        """Current total weight ``Σ λ^d`` over all ingested bins."""
        return self._weight_sum

    @property
    def effective_samples(self) -> float:
        """Kish effective sample size ``(Σw)² / Σw²`` of the moments.

        Equals :attr:`n_bins_seen` when ``λ = 1`` and saturates near
        ``(1 + λ) / (1 - λ)`` for long streams with forgetting.
        """
        if self._weight_sq_sum <= 0.0:
            return 0.0
        return self._weight_sum**2 / self._weight_sq_sum

    @property
    def n_samples(self) -> int:
        """The effective sample count rounded to an integer.

        This is the ``n`` handed to the F-based T² control limit; with no
        forgetting it equals the number of ingested bins exactly.
        """
        return int(round(self.effective_samples))

    @property
    def mean(self) -> np.ndarray:
        """The running per-OD-flow mean (length ``p``), as a read-only view."""
        require(self._mean is not None, "no data ingested yet")
        view = self._mean.view()
        view.setflags(write=False)
        return view

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def partial_fit(self, chunk: np.ndarray) -> "OnlinePCA":
        """Merge a chunk of ``m`` consecutive timebins into the moments.

        Rows must be in time order (the last row is the most recent bin);
        with forgetting, row ``i`` of an ``m``-row chunk receives weight
        ``λ^(m-1-i)`` and all previously accumulated weight decays by
        ``λ^m``.
        """
        matrix = ensure_2d(chunk, "chunk")
        m, p = matrix.shape
        require(m >= 1, "chunk must contain at least one bin")
        if self._n_features is None:
            self._n_features = p
            self._mean = np.zeros(p)
            self._scatter = np.zeros((p, p))
        require(p == self._n_features, "chunk has the wrong number of OD flows")

        lam = self._forgetting
        if lam == 1.0:
            weights = None
            chunk_weight = float(m)
            chunk_weight_sq = float(m)
            decay = 1.0
            decay_sq = 1.0
            chunk_mean = matrix.mean(axis=0)
            centered = matrix - chunk_mean
            chunk_scatter = centered.T @ centered
        else:
            # Row i of the chunk is (m - 1 - i) bins old inside the chunk.
            weights = lam ** np.arange(m - 1, -1, -1, dtype=float)
            chunk_weight = float(weights.sum())
            chunk_weight_sq = float((weights**2).sum())
            decay = lam**m
            decay_sq = decay**2
            chunk_mean = (weights @ matrix) / chunk_weight
            centered = matrix - chunk_mean
            chunk_scatter = (centered * weights[:, np.newaxis]).T @ centered

        prior_weight = self._weight_sum * decay
        total_weight = prior_weight + chunk_weight
        delta = chunk_mean - self._mean
        self._mean = self._mean + delta * (chunk_weight / total_weight)
        self._scatter = (
            self._scatter * decay
            + chunk_scatter
            + np.outer(delta, delta) * (prior_weight * chunk_weight / total_weight)
        )
        self._weight_sum = total_weight
        self._weight_sq_sum = self._weight_sq_sum * decay_sq + chunk_weight_sq
        self._n_bins_seen += m
        self._version += 1
        return self

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def covariance(self) -> np.ndarray:
        """The maintained sample covariance ``M / (Σw - 1)``.

        With ``λ = 1`` this equals ``np.cov(history, rowvar=False)`` (ddof 1)
        of everything ingested so far.
        """
        require(self._scatter is not None, "no data ingested yet")
        require(self._weight_sum > 1.0,
                "need total weight > 1 for a sample covariance")
        return self._scatter / (self._weight_sum - 1.0)

    def eigenbasis(self) -> Tuple[np.ndarray, np.ndarray]:
        """Eigenvalues (descending, length ``p``) and axes (``p x p``).

        Column ``j`` of the axes matrix is the ``j``-th principal axis in
        OD-flow space — the streaming analogue of
        :meth:`~repro.core.pca.EigenflowDecomposition.principal_axes`.  The
        decomposition is cached until :meth:`partial_fit` is called again.
        """
        if self._basis_version != self._version:
            covariance = self.covariance()
            covariance = (covariance + covariance.T) * 0.5
            eigenvalues, axes = np.linalg.eigh(covariance)
            order = np.argsort(eigenvalues)[::-1]
            eigenvalues = np.clip(eigenvalues[order], 0.0, None)
            axes = axes[:, order]
            eigenvalues.setflags(write=False)
            axes.setflags(write=False)
            self._cached_eigenvalues = eigenvalues
            self._cached_axes = axes
            self._basis_version = self._version
        return self._cached_eigenvalues, self._cached_axes

    @property
    def rank(self) -> int:
        """Upper bound on the covariance rank, ``min(bins seen, p)``.

        Mirrors the batch decomposition's ``rank`` (which counts available
        SVD components, not the numerical rank).
        """
        if self._n_features is None:
            return 0
        return min(self._n_bins_seen, self._n_features)
