"""Incrementally maintained PCA of the OD-flow ensemble.

:class:`OnlinePCA` replaces the batch SVD of the full timeseries history
with running first and second moments updated chunk by chunk:

* the per-OD-flow **mean** and the ``p x p`` centered **scatter matrix** are
  merged with each incoming chunk using the exact parallel-moments update
  (Chan et al.), so with no forgetting the maintained covariance equals the
  batch sample covariance of everything seen so far — bit-for-bit up to
  floating-point accumulation order;
* an optional per-bin **exponential forgetting factor** ``λ < 1`` decays old
  bins geometrically, implementing the sliding window that lets the normal
  subspace track diurnal drift without refitting;
* the **eigenbasis** (principal axes and eigenvalues) is obtained on demand
  from a ``p x p`` symmetric eigendecomposition of the maintained covariance
  — ``O(p³)`` once per recalibration instead of ``O(n p²)`` per chunk for a
  full-history SVD — and cached until new data arrives.

Cost per ingested chunk of ``m`` bins is ``O(m p²)`` (one rank-``m`` scatter
update) with ``O(p²)`` memory, independent of the stream length ``n``.

The weighting/decay bookkeeping lives once in the :class:`_MomentTracker`
base shared with the column-sharded engine
(:class:`~repro.streaming.sharding.ShardedOnlinePCA`); only the scatter
update itself differs between the two, which is what keeps their
arithmetic — and therefore their emitted events — identical.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.utils.validation import ensure_2d, require

__all__ = ["OnlinePCA", "eigh_descending"]


def eigh_descending(covariance: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Descending, clipped eigendecomposition of a (near-)symmetric matrix.

    Symmetrizes first so tiny floating-point asymmetries (e.g. from an
    assembled sharded scatter) cannot perturb the solver, clips negative
    round-off eigenvalues to zero, and returns read-only arrays — the shared
    eigenbasis step of :class:`OnlinePCA` and
    :class:`~repro.streaming.sharding.ShardedOnlinePCA`.
    """
    symmetric = (covariance + covariance.T) * 0.5
    eigenvalues, axes = np.linalg.eigh(symmetric)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.clip(eigenvalues[order], 0.0, None)
    axes = axes[:, order]
    eigenvalues.setflags(write=False)
    axes.setflags(write=False)
    return eigenvalues, axes


#: Memoized λ-power weight vectors and their sums, keyed on ``(m, λ)``.
#: Streams feed constant-size chunks, so without the cache the same vector
#: (and its Σw / Σw² reductions) is rebuilt for every chunk; bounded so a
#: pathological mix of chunk sizes cannot grow it without limit.
_WEIGHT_CACHE: Dict[Tuple[int, float], Tuple[np.ndarray, float, float, float]] = {}
_WEIGHT_CACHE_MAX = 64


def _forgetting_weights(m: int, lam: float) -> Tuple[np.ndarray, float, float, float]:
    """Memoized ``(weights, Σw, Σw², λ^m)`` for an ``m``-row chunk under ``λ``."""
    key = (m, lam)
    entry = _WEIGHT_CACHE.get(key)
    if entry is None:
        if len(_WEIGHT_CACHE) >= _WEIGHT_CACHE_MAX:
            _WEIGHT_CACHE.clear()
        weights = lam ** np.arange(m - 1, -1, -1, dtype=float)
        weights.setflags(write=False)
        entry = (weights, float(weights.sum()), float((weights**2).sum()),
                 lam**m)
        _WEIGHT_CACHE[key] = entry
    return entry


def _chunk_moments(matrix: np.ndarray, lam: float):
    """Per-chunk weighting preamble shared by every moment engine.

    Returns ``(weights, chunk_weight, chunk_weight_sq, decay, decay_sq,
    chunk_mean)`` for an ``m``-row chunk under forgetting ``λ``: row ``i``
    is ``m - 1 - i`` bins old inside the chunk and carries weight
    ``λ^(m-1-i)`` (``weights`` is ``None`` for the unweighted ``λ = 1``
    path), and all previously accumulated weight decays by ``λ^m``.  The
    weight vector and its reductions are memoized on ``(m, λ)``; only the
    chunk mean is computed per call.
    """
    m = matrix.shape[0]
    if lam == 1.0:
        return None, float(m), float(m), 1.0, 1.0, matrix.mean(axis=0)
    weights, chunk_weight, chunk_weight_sq, decay = _forgetting_weights(m, lam)
    chunk_mean = (weights @ matrix) / chunk_weight
    return weights, chunk_weight, chunk_weight_sq, decay, decay**2, chunk_mean


class _MomentTracker:
    """Scalar moment bookkeeping shared by the single and sharded engines.

    Owns the forgetting factor, the running mean, the weight sums, and the
    eigenbasis cache; subclasses implement only how the centered scatter is
    stored (:meth:`_initialize_scatter` / :meth:`_apply_scatter_update`)
    and how it is read back (:meth:`covariance`).
    """

    def __init__(self, forgetting: float = 1.0) -> None:
        require(0.0 < forgetting <= 1.0, "forgetting must be in (0, 1]")
        self._forgetting = float(forgetting)
        self._n_features: Optional[int] = None
        self._mean: Optional[np.ndarray] = None
        self._weight_sum = 0.0
        self._weight_sq_sum = 0.0
        self._n_bins_seen = 0
        self._version = 0
        self._basis_version = -1
        self._cached_eigenvalues: Optional[np.ndarray] = None
        self._cached_axes: Optional[np.ndarray] = None
        # Scratch buffer for the centered chunk, reused across partial_fit
        # calls of the same chunk shape (never serialized).
        self._centered_scratch: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def forgetting(self) -> float:
        """The per-bin forgetting factor ``λ``."""
        return self._forgetting

    @property
    def n_features(self) -> Optional[int]:
        """Number of OD flows ``p`` (``None`` before the first chunk)."""
        return self._n_features

    @property
    def n_bins_seen(self) -> int:
        """Total number of bins ingested (not decayed)."""
        return self._n_bins_seen

    @property
    def weight_sum(self) -> float:
        """Current total weight ``Σ λ^d`` over all ingested bins."""
        return self._weight_sum

    @property
    def weight_sq_sum(self) -> float:
        """Current total squared weight ``Σ λ^{2d}`` over all ingested bins."""
        return self._weight_sq_sum

    @property
    def effective_samples(self) -> float:
        """Kish effective sample size ``(Σw)² / Σw²`` of the moments.

        Equals :attr:`n_bins_seen` when ``λ = 1`` and saturates near
        ``(1 + λ) / (1 - λ)`` for long streams with forgetting.
        """
        if self._weight_sq_sum <= 0.0:
            return 0.0
        return self._weight_sum**2 / self._weight_sq_sum

    @property
    def n_samples(self) -> int:
        """The effective sample count rounded to an integer.

        This is the ``n`` handed to the F-based T² control limit; with no
        forgetting it equals the number of ingested bins exactly.
        """
        return int(round(self.effective_samples))

    @property
    def mean(self) -> np.ndarray:
        """The running per-OD-flow mean (length ``p``), as a read-only view."""
        require(self._mean is not None, "no data ingested yet")
        view = self._mean.view()
        view.setflags(write=False)
        return view

    @property
    def rank(self) -> int:
        """Upper bound on the covariance rank, ``min(bins seen, p)``.

        Mirrors the batch decomposition's ``rank`` (which counts available
        SVD components, not the numerical rank).
        """
        if self._n_features is None:
            return 0
        return min(self._n_bins_seen, self._n_features)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def partial_fit(self, chunk: np.ndarray):
        """Merge a chunk of ``m`` consecutive timebins into the moments.

        Rows must be in time order (the last row is the most recent bin);
        with forgetting, row ``i`` of an ``m``-row chunk receives weight
        ``λ^(m-1-i)`` and all previously accumulated weight decays by
        ``λ^m``.
        """
        matrix = ensure_2d(chunk, "chunk")
        m, p = matrix.shape
        require(m >= 1, "chunk must contain at least one bin")
        if self._n_features is None:
            self._n_features = p
            self._mean = np.zeros(p)
            self._initialize_scatter(p)
        require(p == self._n_features, "chunk has the wrong number of OD flows")

        (weights, chunk_weight, chunk_weight_sq, decay, decay_sq,
         chunk_mean) = _chunk_moments(matrix, self._forgetting)
        centered = self._centered_scratch
        if centered is None or centered.shape != matrix.shape:
            centered = np.empty_like(matrix)
            self._centered_scratch = centered
        np.subtract(matrix, chunk_mean, out=centered)
        self._merge_weighted_chunk(
            chunk_weight, chunk_weight_sq, chunk_mean, decay, decay_sq, m,
            lambda delta, coefficient: self._apply_scatter_update(
                centered, weights, delta, decay, coefficient))
        return self

    def _merge_weighted_chunk(self, chunk_weight: float,
                              chunk_weight_sq: float, chunk_mean: np.ndarray,
                              decay: float, decay_sq: float, n_bins: int,
                              scatter_update) -> None:
        """The pairwise Chan parallel-moments combine, applied in place.

        The single home of the combine arithmetic: :meth:`partial_fit`
        passes a raw chunk's weighted moments here, and
        :func:`~repro.streaming.sharding.merge_online_pca` passes a whole
        engine's moment tuple — both therefore stay exactly in step.
        *scatter_update* receives ``(delta, outer_coefficient)`` and must
        fold the chunk scatter plus ``outer(delta, delta) * coefficient``
        into the stored (decayed) scatter.
        """
        prior_weight = self._weight_sum * decay
        total_weight = prior_weight + chunk_weight
        delta = chunk_mean - self._mean
        scatter_update(delta, prior_weight * chunk_weight / total_weight)
        self._mean = self._mean + delta * (chunk_weight / total_weight)
        self._weight_sum = total_weight
        self._weight_sq_sum = self._weight_sq_sum * decay_sq + chunk_weight_sq
        self._n_bins_seen += n_bins
        self._version += 1

    def _initialize_scatter(self, n_features: int) -> None:
        raise NotImplementedError

    def _apply_scatter_update(self, centered: np.ndarray,
                              weights: Optional[np.ndarray],
                              delta: np.ndarray, decay: float,
                              outer_coefficient: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def covariance(self) -> np.ndarray:
        raise NotImplementedError

    def eigenbasis(self) -> Tuple[np.ndarray, np.ndarray]:
        """Eigenvalues (descending, length ``p``) and axes (``p x p``).

        Column ``j`` of the axes matrix is the ``j``-th principal axis in
        OD-flow space — the streaming analogue of
        :meth:`~repro.core.pca.EigenflowDecomposition.principal_axes`.  The
        decomposition is cached until :meth:`partial_fit` is called again.
        """
        if self._basis_version != self._version:
            eigenvalues, axes = eigh_descending(self.covariance())
            self._cached_eigenvalues = eigenvalues
            self._cached_axes = axes
            self._basis_version = self._version
        return self._cached_eigenvalues, self._cached_axes

    # ------------------------------------------------------------------ #
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def _scalar_state(self, kind: str) -> Dict:
        return {
            "kind": kind,
            "forgetting": self._forgetting,
            "weight_sum": self._weight_sum,
            "weight_sq_sum": self._weight_sq_sum,
            "n_bins_seen": self._n_bins_seen,
            "has_data": self._n_features is not None,
        }

    def _restore_scalars(self, meta: Mapping) -> None:
        self._weight_sum = float(meta["weight_sum"])
        self._weight_sq_sum = float(meta["weight_sq_sum"])
        self._n_bins_seen = int(meta["n_bins_seen"])


class OnlinePCA(_MomentTracker):
    """Running mean/covariance PCA with exponential forgetting.

    Parameters
    ----------
    forgetting:
        Per-bin decay factor ``λ`` in ``(0, 1]``.  With ``λ = 1`` the model
        accumulates all history with uniform weight (and exactly reproduces
        the batch sample covariance); with ``λ < 1`` a bin seen ``d`` bins
        ago carries weight ``λ^d``.
    """

    #: Engine-kind tag written into checkpoint manifests.
    STATE_KIND = "online_pca"

    def __init__(self, forgetting: float = 1.0) -> None:
        super().__init__(forgetting)
        self._scatter: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # scatter storage
    # ------------------------------------------------------------------ #
    def _initialize_scatter(self, n_features: int) -> None:
        self._scatter = np.zeros((n_features, n_features))

    def _apply_scatter_update(self, centered: np.ndarray,
                              weights: Optional[np.ndarray],
                              delta: np.ndarray, decay: float,
                              outer_coefficient: float) -> None:
        if weights is None:
            chunk_scatter = centered.T @ centered
        else:
            chunk_scatter = (centered * weights[:, np.newaxis]).T @ centered
        self._merge_scatter(chunk_scatter, delta, decay, outer_coefficient)

    def _merge_scatter(self, chunk_scatter: np.ndarray, delta: np.ndarray,
                       decay: float, outer_coefficient: float) -> None:
        """Fold an already-computed chunk/segment scatter into the state."""
        self._scatter = (
            self._scatter * decay
            + chunk_scatter
            + np.outer(delta, delta) * outer_coefficient
        )

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def covariance(self) -> np.ndarray:
        """The maintained sample covariance ``M / (Σw - 1)``.

        With ``λ = 1`` this equals ``np.cov(history, rowvar=False)`` (ddof 1)
        of everything ingested so far.
        """
        require(self._scatter is not None, "no data ingested yet")
        require(self._weight_sum > 1.0,
                "need total weight > 1 for a sample covariance")
        return self._scatter / (self._weight_sum - 1.0)

    # ------------------------------------------------------------------ #
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Dict]:
        """The complete moment state as ``{"meta": scalars, "arrays": ndarrays}``.

        The returned arrays are copies; restoring them via :meth:`from_state`
        reproduces the engine bit-for-bit (float64 survives an npz round
        trip exactly), so a restored detector continues the stream on the
        identical numerical trajectory.
        """
        arrays: Dict[str, np.ndarray] = {}
        if self._n_features is not None:
            arrays["mean"] = np.array(self._mean, dtype=float)
            arrays["scatter"] = np.array(self._scatter, dtype=float)
        return {"meta": self._scalar_state(self.STATE_KIND), "arrays": arrays}

    @classmethod
    def from_state(cls, meta: Mapping, arrays: Mapping[str, np.ndarray]) -> "OnlinePCA":
        """Rebuild an engine from :meth:`state_dict` output."""
        require(meta.get("kind") == cls.STATE_KIND,
                f"state is not an {cls.STATE_KIND} state")
        engine = cls(forgetting=float(meta["forgetting"]))
        if meta["has_data"]:
            mean = np.array(arrays["mean"], dtype=float)
            scatter = np.array(arrays["scatter"], dtype=float)
            require(scatter.shape == (mean.size, mean.size),
                    "scatter shape does not match the mean length")
            engine._n_features = mean.size
            engine._mean = mean
            engine._scatter = scatter
        engine._restore_scalars(meta)
        return engine
