"""Multi-process streaming drivers over the shared-memory chunk bus.

:func:`parallel_stream_detect` scales
:func:`~repro.streaming.pipeline.stream_detect` past one core.  Both modes
move chunk payloads through the zero-copy
:class:`~repro.streaming.bus.ChunkBusWriter` ring (one serialize per chunk,
``K`` read-only views) instead of pickling matrices into every worker
queue, and both are bound by the same rule: **they may only change
wall-clock time, never an event**.

* ``mode="type"`` — each worker owns one or more traffic types; a type's
  detector lives in one process for its whole life, and the main process
  fuses per-type results strictly in chunk order.  Simple, but the speedup
  saturates at the number of traffic types (3 for the paper's pipeline).
* ``mode="shard"`` — each worker owns one **column shard**
  (:func:`~repro.streaming.sharding.partition_columns`) of *every*
  per-type detector and maintains its ``|cols| x p`` scatter row block
  (:class:`~repro.streaming.sharding.ShardWorkerMoments`); the coordinator
  keeps the cheap ``O(m p)`` scalar moments plus detection/fusion, and
  assembles the worker blocks into the full scatter only at calibration
  time (a collect barrier).  The heavy ``O(m p²)`` scatter GEMM — the
  throughput cap — is split ``1/K``, so speedup follows the worker count
  instead of the traffic-type count.

Backpressure exists at two layers: every worker input queue is bounded
(``queue_depth`` control messages) and the bus ring itself blocks the
writer once ``config.bus_slots`` chunks are in flight — memory stays
``O(bus_slots)`` chunks no matter how slow a worker is.

Liveness: a blocked feed or drain waits on the workers' process
**sentinels** (:func:`multiprocessing.connection.wait`), so a dead worker
wakes the driver immediately; ``poll_seconds`` (a
:class:`~repro.streaming.config.StreamingConfig` knob) only caps how long
a fully idle wait sleeps between health re-checks.

Per-type/per-shard arithmetic is deterministic and workers do not
interact, so the only parallelism-visible effect is wall-clock time —
enforced by ``tests/test_streaming_parallel.py`` against the
single-process event list.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import queue as queue_module
import random
import time
import traceback
import warnings
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, \
    Tuple, Union

import numpy as np

from repro.flows.timeseries import TrafficType
from repro.streaming.aggregator import OnlineEventAggregator
from repro.streaming.bus import ChunkBusReader, ChunkBusWriter, chunk_slot_bytes
from repro.streaming.config import StreamingConfig
from repro.streaming.detector import ChunkDetections, StreamingSubspaceDetector
from repro.streaming.online_pca import OnlinePCA, _MomentTracker
from repro.streaming.pipeline import (
    StreamingNetworkDetector,
    StreamingReport,
    _coalesce_source,
    _dedup_types,
    _fuse_chunk_results,
)
from repro.streaming.sharding import ShardWorkerMoments, partition_columns
from repro.streaming.sources import (
    FactoryChunkSource,
    TrafficChunk,
    as_chunk_source,
)
from repro.telemetry import MetricsRegistry, Telemetry
from repro.utils.validation import require

__all__ = ["parallel_stream_detect", "WorkerSupervisor"]

#: Sentinel telling a worker its input stream ended.
_STOP = None
#: First element of a result tuple carrying a worker traceback.
_ERROR = "__error__"
#: First element of a result tuple carrying a worker's metrics registry
#: (shipped once per worker, after it saw ``_STOP``).
_TELEMETRY = "__telemetry__"
#: Message kinds of the shard-mode control protocol.
_MSG_CHUNK = "chunk"
_MSG_COLLECT = "collect"
_BLOCKS = "__blocks__"
#: Default seconds an idle wait sleeps before re-checking worker liveness
#: (overridable via ``StreamingConfig.poll_seconds`` / ``poll_seconds=``;
#: worker death wakes every wait immediately through its sentinel).
_POLL_SECONDS = 1.0


class _ChunkSpan:
    """The fusion-relevant footprint of one chunk (start/extent only)."""

    __slots__ = ("start_bin", "n_bins")

    def __init__(self, start_bin: int, n_bins: int) -> None:
        self.start_bin = start_bin
        self.n_bins = n_bins

    @property
    def end_bin(self) -> int:
        return self.start_bin + self.n_bins


def _restricted_chunk(chunk: TrafficChunk,
                      types: Sequence[TrafficType]) -> TrafficChunk:
    """*chunk* narrowed to the analyzed types (no matrix copies)."""
    if list(chunk.matrices.keys()) == list(types):
        return chunk
    return TrafficChunk(start_bin=chunk.start_bin,
                        matrices={t: chunk.matrix(t) for t in types})


# --------------------------------------------------------------------- #
# worker loops
# --------------------------------------------------------------------- #
def _worker_error_text(label: str, detail: str, last_chunk) -> str:
    """The context header + traceback forwarded by a failed worker."""
    last = "none" if last_chunk is None else str(last_chunk)
    return (f"worker {label} ({detail}; last-processed chunk {last}):\n"
            + traceback.format_exc())


def _type_worker(worker_index: int, config: StreamingConfig,
                 own_types: Sequence[str], bus_handle, in_queue,
                 out_queue) -> None:
    """Process the traffic types routed to this worker, off the bus."""
    label = f"type-{worker_index}"
    reader = ChunkBusReader(bus_handle)
    detectors: Dict[str, StreamingSubspaceDetector] = {}
    telemetry = Telemetry.from_config(config, worker=label)
    last_chunk = None
    try:
        while True:
            item = in_queue.get()
            if item is _STOP:
                if telemetry is not None:
                    telemetry.close()
                    out_queue.put((_TELEMETRY, label,
                                   telemetry.registry.to_dict()))
                return
            chunk_index, descriptor = item
            if telemetry is not None:
                telemetry.begin_chunk(chunk_index)
            views = reader.map(descriptor)
            try:
                for type_value in own_types:
                    detector = detectors.get(type_value)
                    if detector is None:
                        detector = StreamingSubspaceDetector(config)
                        if telemetry is not None:
                            detector.bind_telemetry(telemetry,
                                                    {"type": type_value})
                        detectors[type_value] = detector
                    result = detector.process_chunk(views[type_value],
                                                    descriptor.start_bin)
                    out_queue.put((chunk_index, type_value, result))
            finally:
                # Views alias the shared slot: drop them before releasing so
                # reader.close() never sees exported buffers.
                views = None
            reader.release(descriptor)
            if telemetry is not None:
                telemetry.registry.counter(
                    "worker_chunks", {"worker": label},
                    help="Chunks processed per worker").inc()
                telemetry.end_chunk()
            last_chunk = chunk_index
    except BaseException:  # noqa: BLE001 - forwarded verbatim to the driver
        out_queue.put((_ERROR, _worker_error_text(
            label, "types " + ",".join(own_types), last_chunk)))
        # Keep draining so the feeder's bounded put never blocks forever on
        # a full queue; the driver raises once it sees the _ERROR message
        # (an errored worker stops releasing bus slots, so a writer blocked
        # on the ring is woken by its alive_check seeing the error).
        while in_queue.get() is not _STOP:
            pass
    finally:
        try:
            reader.close()
        except BufferError:  # pragma: no cover - a live view on error paths
            pass


def _shard_worker(shard_index: int, n_shards: int, config: StreamingConfig,
                  bus_handle, in_queue, out_queue, seed=None) -> None:
    """Maintain this worker's column shard of every per-type engine.

    *seed* (restart path) maps each type to its checkpointed moments —
    scalar meta, full mean, and this shard's scatter row block — so a
    worker spawned by a supervisor restart resumes exactly where the last
    good checkpoint left off.
    """
    label = f"shard-{shard_index}"
    reader = ChunkBusReader(bus_handle)
    engines: Dict[str, ShardWorkerMoments] = {}
    if seed:
        for type_value, payload in seed.items():
            engines[type_value] = ShardWorkerMoments.from_seed(
                shard_index, n_shards, config.forgetting,
                payload["meta"], payload["mean"], payload["block"])
    telemetry = Telemetry.from_config(config, worker=label)
    last_chunk = None
    n_chunks = 0
    try:
        while True:
            message = in_queue.get()
            if message is _STOP:
                if telemetry is not None:
                    telemetry.close()
                    out_queue.put((_TELEMETRY, label,
                                   telemetry.registry.to_dict()))
                return
            kind = message[0]
            if kind == _MSG_CHUNK:
                descriptor = message[1]
                if telemetry is not None:
                    telemetry.begin_chunk(n_chunks)
                views = reader.map(descriptor)
                view = None
                try:
                    for type_value, view in views.items():
                        engine = engines.get(type_value)
                        if engine is None:
                            engine = ShardWorkerMoments(shard_index, n_shards,
                                                        config.forgetting)
                            engines[type_value] = engine
                        if telemetry is not None:
                            with telemetry.span("update", type=type_value):
                                engine.partial_fit(view)
                        else:
                            engine.partial_fit(view)
                finally:
                    views = view = None
                reader.release(descriptor)
                if telemetry is not None:
                    telemetry.registry.counter(
                        "worker_chunks", {"worker": label},
                        help="Chunks processed per worker").inc()
                    telemetry.end_chunk()
                last_chunk = n_chunks
                n_chunks += 1
            else:  # _MSG_COLLECT
                _, collect_id, type_value = message
                engine = engines.get(type_value)
                payload = (None if engine is None or engine.n_features is None
                           else (engine.columns, engine.block))
                out_queue.put((_BLOCKS, collect_id, shard_index, type_value,
                               payload))
    except BaseException:  # noqa: BLE001 - forwarded verbatim to the driver
        out_queue.put((_ERROR, _worker_error_text(
            label, f"shard {shard_index}/{n_shards}", last_chunk)))
        while in_queue.get() is not _STOP:
            pass
    finally:
        try:
            reader.close()
        except BufferError:  # pragma: no cover - a live view on error paths
            pass


# --------------------------------------------------------------------- #
# worker pools
# --------------------------------------------------------------------- #
class _PoolBase:
    """Processes + bounded control queues + the shared chunk bus.

    Owns the liveness/wakeup machinery both drivers share: every blocking
    wait (queue put, result receive, bus-slot wait) is woken immediately by
    a dying worker's process sentinel instead of sleeping out a fixed poll
    interval, and every wake first surfaces any worker traceback sitting in
    the result queue.
    """

    def __init__(self, n_workers: int, queue_depth: int, poll_seconds: float,
                 context, slot_bytes: int, bus_slots: int) -> None:
        self.n_workers = n_workers
        self.poll_seconds = poll_seconds
        self.bus = ChunkBusWriter(slot_bytes, bus_slots, n_workers, context)
        self.out_queue = context.Queue()
        self.in_queues = [context.Queue(maxsize=queue_depth)
                          for _ in range(n_workers)]
        self.processes: List = []
        # Non-error messages consumed while scanning for failures are
        # buffered here and served to receive() first, in arrival order.
        self._stray: deque = deque()
        # (worker label, registry dict) pairs shipped by workers after
        # _STOP; filled as messages pass through check_failure()/receive().
        self.telemetry_payloads: List[Tuple[str, Dict]] = []

    def _spawn(self, context, target, per_worker_args) -> None:
        self.processes = [
            context.Process(target=target, args=args, daemon=True)
            for args in per_worker_args
        ]
        for process in self.processes:
            process.start()

    # ---------------- liveness ---------------- #
    def _live_sentinels(self) -> List:
        return [p.sentinel for p in self.processes if p.is_alive()]

    def check_alive(self, strict: bool = False) -> None:
        """Raise if a worker died; *strict* also rejects clean exits.

        A clean (exit code 0) worker death is only legal after ``_STOP``;
        a feeder still delivering work treats it as a failure too.
        """
        for process in self.processes:
            if process.is_alive():
                continue
            if process.exitcode not in (0, None):
                raise RuntimeError(
                    f"streaming worker died with exit code {process.exitcode}")
            if strict:
                raise RuntimeError(
                    "streaming worker exited before the end of the stream")

    def check_failure(self, strict: bool = False) -> None:
        """Surface a worker traceback or abnormal death without blocking."""
        while True:
            try:
                message = self.out_queue.get_nowait()
            except queue_module.Empty:
                break
            if message[0] == _ERROR:
                raise RuntimeError(f"streaming worker failed:\n{message[1]}")
            if message[0] == _TELEMETRY:
                self.telemetry_payloads.append((message[1], message[2]))
                continue
            self._stray.append(message)
        self.check_alive(strict=strict)

    # ---------------- sending ---------------- #
    def put(self, in_queue, item) -> None:
        """Bounded put that wakes on worker death instead of deadlocking."""
        while True:
            try:
                in_queue.put_nowait(item)
                return
            except queue_module.Full:
                # Sleep until a worker dies (sentinel) or the poll cadence
                # elapses, then surface failures and retry; the queue
                # draining has no event of its own, so the poll bounds the
                # retry latency for the healthy-but-slow case.
                multiprocessing.connection.wait(self._live_sentinels(),
                                                timeout=self.poll_seconds)
                self.check_failure(strict=True)

    def broadcast(self, item) -> None:
        for in_queue in self.in_queues:
            self.put(in_queue, item)

    def send_stop(self) -> None:
        self.broadcast(_STOP)

    # ---------------- receiving ---------------- #
    def receive(self, block: bool):
        """One worker message, or ``None`` when non-blocking and idle.

        Raises the forwarded traceback of a failed worker.  Blocking waits
        listen on the result pipe *and* every live worker sentinel, so both
        data arrival and worker death wake the driver immediately.
        """
        if self._stray:
            return self._stray.popleft()
        reader = getattr(self.out_queue, "_reader", None)
        while True:
            try:
                message = self.out_queue.get_nowait()
            except queue_module.Empty:
                if not block:
                    return None
                if reader is None:  # pragma: no cover - platform fallback
                    try:
                        message = self.out_queue.get(timeout=self.poll_seconds)
                    except queue_module.Empty:
                        self.check_alive()
                        continue
                else:
                    ready = multiprocessing.connection.wait(
                        [reader] + self._live_sentinels(),
                        timeout=self.poll_seconds)
                    if reader not in ready:
                        # Timeout or a sentinel fired: re-check health,
                        # then retry the non-blocking get.
                        self.check_alive()
                    continue
            if message[0] == _ERROR:
                raise RuntimeError(f"streaming worker failed:\n{message[1]}")
            if message[0] == _TELEMETRY:
                self.telemetry_payloads.append((message[1], message[2]))
                continue
            return message

    def wait_for_telemetry(self) -> List[Tuple[str, Dict]]:
        """Every worker's shipped registry; call only after :meth:`send_stop`.

        Workers ship their registry as the last message before exiting, so
        this blocks until all ``n_workers`` payloads arrived (surfacing any
        worker failure meanwhile).  Data messages encountered on the way
        are preserved for :meth:`receive`.
        """
        reader = getattr(self.out_queue, "_reader", None)
        while len(self.telemetry_payloads) < self.n_workers:
            message = self.receive(block=False)
            if message is not None:
                self._stray.append(message)
                continue
            if len(self.telemetry_payloads) >= self.n_workers:
                break
            sentinels = self._live_sentinels()
            if not sentinels:
                # All workers are gone and the queue drained empty: a
                # missing payload would never arrive, so fail loudly
                # instead of spinning (one last sweep first — the feeder
                # flushes before exit, but give the pipe a poll's grace).
                if self.receive(block=False) is None and \
                        len(self.telemetry_payloads) < self.n_workers:
                    raise RuntimeError(
                        "streaming workers exited without shipping "
                        "telemetry registries")
                continue
            if reader is None:  # pragma: no cover - platform fallback
                multiprocessing.connection.wait(sentinels,
                                                timeout=self.poll_seconds)
            else:
                multiprocessing.connection.wait(
                    [reader] + sentinels, timeout=self.poll_seconds)
            self.check_alive()
        return list(self.telemetry_payloads)

    # ---------------- teardown ---------------- #
    def publish(self, chunk: TrafficChunk):
        """Publish *chunk* on the bus, surfacing worker failures meanwhile."""
        return self.bus.publish(
            chunk,
            alive_check=lambda: self.check_failure(strict=True),
            poll_seconds=self.poll_seconds)

    def shutdown(self, force: bool = False) -> None:
        try:
            for process in self.processes:
                if force and process.is_alive():
                    process.terminate()
                process.join(timeout=30)
        finally:
            self.bus.close()


class _TypeWorkerPool(_PoolBase):
    """One worker per group of traffic types (mode="type")."""

    def __init__(self, types: Sequence[TrafficType], config: StreamingConfig,
                 n_workers: int, queue_depth: int, poll_seconds: float,
                 context, slot_bytes: int) -> None:
        n_workers = max(1, min(n_workers, len(types)))
        super().__init__(n_workers, queue_depth, poll_seconds, context,
                         slot_bytes, config.bus_slots)
        # Round-robin type -> worker; a type never migrates between workers.
        own_types: List[List[str]] = [[] for _ in range(n_workers)]
        for i, traffic_type in enumerate(types):
            own_types[i % n_workers].append(traffic_type.value)
        handle = self.bus.handle()
        self._spawn(context, _type_worker, [
            (i, config, own_types[i], handle, self.in_queues[i],
             self.out_queue)
            for i in range(n_workers)
        ])


class _ShardWorkerPool(_PoolBase):
    """One worker per column shard of every detector (mode="shard")."""

    def __init__(self, config: StreamingConfig, n_workers: int,
                 queue_depth: int, poll_seconds: float, context,
                 slot_bytes: int, seeds: Optional[List[Dict]] = None) -> None:
        super().__init__(n_workers, queue_depth, poll_seconds, context,
                         slot_bytes, config.bus_slots)
        self._collect_id = 0
        handle = self.bus.handle()
        self._spawn(context, _shard_worker, [
            (i, n_workers, config, handle, self.in_queues[i], self.out_queue,
             seeds[i] if seeds is not None else None)
            for i in range(n_workers)
        ])

    def collect_scatter(self, type_value: str, n_features: int) -> np.ndarray:
        """Barrier-collect the assembled ``p x p`` scatter for one type.

        The collect message queues *behind* every chunk already sent, so
        the returned blocks cover exactly the bins the coordinator's scalar
        moments cover — the synchronization that makes calibration-time
        state identical to the single-process run.
        """
        self._collect_id += 1
        self.broadcast((_MSG_COLLECT, self._collect_id, type_value))
        scatter = np.empty((n_features, n_features))
        covered = 0
        pending = set(range(self.n_workers))
        while pending:
            message = self.receive(block=True)
            kind, collect_id, shard_index, received_type, payload = message
            require(kind == _BLOCKS and collect_id == self._collect_id
                    and received_type == type_value,
                    "out-of-order shard collect reply")
            pending.discard(shard_index)
            if payload is not None:
                columns, block = payload
                scatter[columns, :] = block
                covered += columns.size
        require(covered == n_features,
                "shard blocks do not cover every scatter row")
        return scatter


class _ShardScatterProxy(_MomentTracker):
    """Coordinator-side moment engine whose scatter rows live in workers.

    Maintains the exact ``_MomentTracker`` scalar arithmetic locally (mean,
    weights — ``O(m p)`` per chunk) while the ``O(m p²)`` scatter update
    happens remotely in the shard workers, which see the identical float64
    chunk through the bus.  :meth:`covariance` triggers a collect barrier
    that assembles the worker row blocks — by construction the same matrix
    a :class:`~repro.streaming.sharding.ShardedOnlinePCA` would assemble
    in-process, so calibration (and therefore every event) matches the
    single-process run.

    Serializes as a plain :class:`OnlinePCA` state with the assembled
    scatter: **checkpointing a distributed run is checkpointing the merged
    state**, and the checkpoint restores into an ordinary single-process
    detector.
    """

    def __init__(self, forgetting: float, type_value: str,
                 pool: _ShardWorkerPool) -> None:
        super().__init__(forgetting)
        self._type_value = type_value
        self._pool = pool

    def _initialize_scatter(self, n_features: int) -> None:
        pass  # the scatter lives in the shard workers

    def _apply_scatter_update(self, centered, weights, delta, decay,
                              outer_coefficient) -> None:
        pass  # applied remotely by every shard worker from the bus view

    def _collect(self) -> np.ndarray:
        require(self._n_features is not None, "no data ingested yet")
        return self._pool.collect_scatter(self._type_value, self._n_features)

    def covariance(self) -> np.ndarray:
        require(self._weight_sum > 1.0,
                "need total weight > 1 for a sample covariance")
        return self._collect() / (self._weight_sum - 1.0)

    def state_dict(self) -> Dict[str, Dict]:
        """Merged (flat ``OnlinePCA``) state — one collect barrier."""
        arrays: Dict[str, np.ndarray] = {}
        if self._n_features is not None:
            arrays["mean"] = np.array(self._mean, dtype=float)
            arrays["scatter"] = self._collect()
        return {"meta": self._scalar_state(OnlinePCA.STATE_KIND),
                "arrays": arrays}


# --------------------------------------------------------------------- #
# drivers
# --------------------------------------------------------------------- #
def parallel_stream_detect(
    source=None,
    config: StreamingConfig = StreamingConfig(),
    traffic_types: Optional[Sequence[TrafficType]] = None,
    n_workers: Optional[int] = None,
    queue_depth: int = 4,
    mp_context: Optional[str] = None,
    mode: Optional[str] = None,
    poll_seconds: Optional[float] = None,
    checkpoint_dir: Optional[Union[str, os.PathLike]] = None,
    checkpoint_every_chunks: Optional[int] = None,
    on_events=None,
    resume_from: Optional[StreamingNetworkDetector] = None,
    fault_hook: Optional[Callable[[int, "_PoolBase"], None]] = None,
    chunks: Optional[Iterable[TrafficChunk]] = None,
) -> StreamingReport:
    """Multi-process live diagnosis over a chunk source.

    Parameters
    ----------
    source:
        The chunk stream — anything
        :func:`~repro.streaming.sources.as_chunk_source` accepts
        (consumed once, in order).  Chunks may shrink over
        the stream (a short tail chunk is fine) but must not grow: the bus
        ring is sized from the first chunk.  The ``chunks=`` keyword is a
        deprecated alias.
    config:
        Streaming configuration applied by every detector; also supplies
        the defaults for *mode* (``parallel_mode``), the bus ring length
        (``bus_slots``) and *poll_seconds*.
    traffic_types:
        Types to analyze; defaults to the types of the first chunk.
    n_workers:
        Worker process count.  ``mode="type"`` caps it at the number of
        traffic types (a type's detector must live in exactly one process)
        and defaults to one worker per type; ``mode="shard"`` defaults to
        the machine's CPU count and scales past the type count — workers
        beyond the OD-flow count own empty shards.
    queue_depth:
        Bound of every worker input queue, in control messages.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (e.g. ``"spawn"``);
        the platform default is used when ``None``.
    mode:
        ``"type"`` or ``"shard"`` (see the module docstring); defaults to
        ``config.parallel_mode``.
    poll_seconds:
        Idle liveness-poll cadence; defaults to ``config.poll_seconds``.
        Worker death wakes the driver immediately regardless.
    checkpoint_dir:
        Shard mode only: when given, the coordinator writes a **merged**
        (single-process-equivalent) checkpoint of the distributed state
        there every *checkpoint_every_chunks* chunks — restorable by the
        ordinary :func:`~repro.streaming.checkpoint.load_checkpoint`.
    checkpoint_every_chunks:
        Checkpoint cadence in chunks (requires *checkpoint_dir*).
    on_events:
        Optional event hand-off hook, called on the coordinator with every
        batch of newly closed events (and the end-of-stream tail) — the
        same contract as :func:`~repro.streaming.pipeline.stream_detect`.
    resume_from:
        Shard mode only: a restored flat
        :class:`~repro.streaming.pipeline.StreamingNetworkDetector` (from
        :func:`~repro.streaming.checkpoint.load_checkpoint`) whose state
        seeds the coordinator *and* every shard worker, so the run
        continues the checkpointed trajectory exactly.  *source* must then
        be the stream suffix starting at the checkpoint's resume bin —
        this is the :class:`WorkerSupervisor` restart path.
    fault_hook:
        Test-only injection point: called as ``fault_hook(chunk_index,
        pool)`` before each chunk is published (*chunk_index* is
        stream-global, counting any resumed prefix).  The seeded chaos
        harness (:mod:`repro.faults`) uses it to kill workers or stall the
        writer deterministically; production runs leave it ``None``.

    Returns
    -------
    StreamingReport
        Identical (events, detections, counters) to the single-process
        :func:`~repro.streaming.pipeline.stream_detect` on the same stream.
    """
    mode = config.parallel_mode if mode is None else mode
    poll = config.poll_seconds if poll_seconds is None else float(poll_seconds)
    require(mode in ("type", "shard"), "mode must be 'type' or 'shard'")
    require(poll > 0.0, "poll_seconds must be positive")
    require(queue_depth >= 1, "queue_depth must be >= 1")
    require(n_workers is None or n_workers >= 1,
            "n_workers must be >= 1 when given")
    require(config.identify, "event fusion needs identified OD flows")
    require((checkpoint_dir is None) == (checkpoint_every_chunks is None),
            "checkpoint_dir and checkpoint_every_chunks go together")
    require(checkpoint_every_chunks is None or checkpoint_every_chunks >= 1,
            "checkpoint_every_chunks must be >= 1 when given")
    require(checkpoint_dir is None or mode == "shard",
            "mid-stream checkpointing of a parallel run requires "
            "mode='shard' (type mode keeps detector state in the workers)")
    require(mode == "type" or config.engine == "exact",
            "shard-parallel workers maintain the exact scatter; use "
            "mode='type' for low-rank engines (or compress after the run "
            "via compress_engine)")
    require(resume_from is None or mode == "shard",
            "resume_from requires mode='shard' (type mode keeps detector "
            "state in the workers and replays from the stream start)")

    source = _coalesce_source(source, chunks)
    iterator = iter(source)
    try:
        first = next(iterator)
    except StopIteration:
        return StreamingReport()
    if traffic_types is not None:
        types = _dedup_types(traffic_types)
    else:
        types = first.traffic_types
    require(len(types) >= 1, "at least one traffic type must be analyzed")
    iterator = itertools.chain([first], iterator)
    # The ring is sized from the first (largest) chunk's analyzed types.
    slot_bytes = chunk_slot_bytes(_restricted_chunk(first, types))

    context = multiprocessing.get_context(mp_context)
    if mode == "shard":
        workers = (n_workers if n_workers is not None
                   else max(2, os.cpu_count() or 1))
        seeds = (None if resume_from is None
                 else _shard_seeds(resume_from, types, workers))
        pool = _ShardWorkerPool(config, workers, queue_depth, poll, context,
                                slot_bytes, seeds=seeds)
        return _run_shard_mode(iterator, types, config, pool, checkpoint_dir,
                               checkpoint_every_chunks, on_events=on_events,
                               resume_from=resume_from,
                               fault_hook=fault_hook)
    pool = _TypeWorkerPool(types, config,
                           n_workers if n_workers is not None else len(types),
                           queue_depth, poll, context, slot_bytes)
    return _run_type_mode(iterator, types, config, pool, on_events=on_events,
                          fault_hook=fault_hook)


def _finalize_runtime(report: StreamingReport, started: float,
                      telemetry) -> None:
    """Stamp wall-clock throughput on *report* (and the runtime gauge)."""
    runtime = time.perf_counter() - started
    report.runtime_seconds = runtime
    report.bins_per_second = (report.n_bins_processed / runtime
                              if runtime > 0.0 else 0.0)
    if telemetry is not None:
        telemetry.registry.gauge(
            "runtime_seconds",
            help="Wall-clock seconds of the run so far").set(runtime)


def _run_type_mode(iterator, types: List[TrafficType],
                   config: StreamingConfig,
                   pool: _TypeWorkerPool,
                   on_events=None, fault_hook=None) -> StreamingReport:
    aggregator = OnlineEventAggregator()
    report = StreamingReport()
    telemetry = Telemetry.from_config(config)
    if telemetry is not None:
        pool.bus.bind_telemetry(telemetry)
    spans: Dict[int, _ChunkSpan] = {}
    buffered: Dict[int, Dict[TrafficType, ChunkDetections]] = {}
    next_to_fuse = 0
    n_chunks = 0
    started = time.perf_counter()
    try:
        for chunk_index, chunk in enumerate(iterator):
            if fault_hook is not None:
                fault_hook(chunk_index, pool)
            narrowed = _restricted_chunk(chunk, types)
            spans[chunk_index] = _ChunkSpan(narrowed.start_bin,
                                            narrowed.n_bins)
            n_chunks += 1
            descriptor = pool.publish(narrowed)
            pool.broadcast((chunk_index, descriptor))
            next_to_fuse = _drain(pool, buffered, spans, types, aggregator,
                                  report, next_to_fuse, block=False,
                                  telemetry=telemetry, on_events=on_events)
        pool.send_stop()
        while next_to_fuse < n_chunks:
            next_to_fuse = _drain(pool, buffered, spans, types, aggregator,
                                  report, next_to_fuse, block=True,
                                  telemetry=telemetry, on_events=on_events)
        if telemetry is not None:
            # Fold every worker's registry into the coordinator's — the
            # same merge discipline as the moment algebra: counters and
            # histograms add, each worker's gauges carry disjoint labels.
            for _, payload in pool.wait_for_telemetry():
                telemetry.merge_registry(payload)
        pool.shutdown()
    except BaseException:
        pool.shutdown(force=True)
        raise
    tail = aggregator.flush()
    report.events.extend(tail)
    if on_events is not None and tail:
        on_events(tail)
    _finalize_runtime(report, started, telemetry)
    if telemetry is not None:
        telemetry.write_snapshot()
        telemetry.close()
    return report


def _drain(
    pool: _TypeWorkerPool,
    buffered: Dict[int, Dict[TrafficType, ChunkDetections]],
    spans: Dict[int, _ChunkSpan],
    types: List[TrafficType],
    aggregator: OnlineEventAggregator,
    report: StreamingReport,
    next_to_fuse: int,
    block: bool,
    telemetry=None,
    on_events=None,
) -> int:
    """Collect available worker results; fuse every completed chunk in order."""
    while True:
        message = pool.receive(block=block)
        if message is None:
            return next_to_fuse
        chunk_index, type_value, result = message
        buffered.setdefault(chunk_index, {})[TrafficType(type_value)] = result
        # Fuse strictly in order, each chunk only once all types reported.
        while next_to_fuse in buffered and \
                len(buffered[next_to_fuse]) == len(types):
            results = buffered.pop(next_to_fuse)
            span = spans.pop(next_to_fuse)
            if telemetry is not None:
                # The coordinator's chunk clock ticks at fusion time (its
                # only per-chunk work); workers sample their own traces.
                telemetry.begin_chunk(next_to_fuse)
            closed = _fuse_chunk_results(results, span, aggregator, report,
                                         telemetry=telemetry)
            if on_events is not None and closed:
                on_events(closed)
            if any(result.warmup for result in results.values()):
                report.n_warmup_bins += span.n_bins
                if telemetry is not None:
                    telemetry.registry.counter(
                        "warmup_bins",
                        help="Bins consumed during model warmup").inc(
                            span.n_bins)
            if telemetry is not None:
                telemetry.end_chunk()
                telemetry.maybe_write_snapshot(report.n_chunks_processed)
            next_to_fuse += 1
        if block:
            # Progress was made; let the caller re-check its exit condition.
            return next_to_fuse


def _flat_engine(engine):
    """A restored per-type engine as flat ``OnlinePCA`` moments."""
    return engine.merged() if hasattr(engine, "merged") else engine


def _shard_seeds(restored: StreamingNetworkDetector,
                 types: List[TrafficType],
                 n_workers: int) -> List[Dict]:
    """Per-worker seed payloads cut from a restored flat checkpoint.

    Worker ``i`` receives, for every type the checkpoint covers, the flat
    engine's scalar meta + full mean and the ``partition_columns`` row
    block it owns — the same partition the live workers maintain, so the
    reassembled scatter continues the checkpointed one bit-for-bit.
    """
    seeds: List[Dict] = [{} for _ in range(n_workers)]
    for traffic_type in types:
        try:
            detector = restored.detector(traffic_type)
        except KeyError:
            continue
        engine = _flat_engine(detector.engine)
        if engine.n_features is None:
            continue
        state = engine.state_dict()
        mean = state["arrays"]["mean"]
        scatter = state["arrays"]["scatter"]
        partition = partition_columns(mean.size, n_workers)
        for i in range(n_workers):
            columns = (partition[i] if i < len(partition)
                       else np.empty(0, dtype=int))
            seeds[i][traffic_type.value] = {
                "meta": state["meta"], "mean": mean,
                "block": scatter[columns, :]}
    return seeds


def _adopt_scatter_proxies(network: StreamingNetworkDetector,
                           config: StreamingConfig,
                           types: List[TrafficType],
                           pool: _ShardWorkerPool) -> None:
    """Swap a restored network's flat engines for coordinator proxies.

    The proxy adopts the flat engine's scalars (mean, weights, bin count);
    its scatter rows already live in the freshly seeded shard workers, so
    the next collect barrier assembles exactly the checkpointed matrix.
    """
    for traffic_type in types:
        try:
            detector = network.detector(traffic_type)
        except KeyError:
            continue
        flat = _flat_engine(detector.engine)
        proxy = _ShardScatterProxy(config.forgetting, traffic_type.value,
                                   pool)
        if flat.n_features is not None:
            proxy._n_features = flat.n_features
            proxy._mean = np.array(flat.mean, dtype=float)
        proxy._weight_sum = flat.weight_sum
        proxy._weight_sq_sum = flat.weight_sq_sum
        proxy._n_bins_seen = flat.n_bins_seen
        detector._engine = proxy


def _run_shard_mode(iterator, types: List[TrafficType],
                    config: StreamingConfig, pool: _ShardWorkerPool,
                    checkpoint_dir, checkpoint_every_chunks,
                    on_events=None, resume_from=None,
                    fault_hook=None) -> StreamingReport:
    # The whole single-process pipeline — calibration cadence, detection,
    # identification, in-order fusion — runs unchanged inside this
    # coordinator-owned network detector; only the engines differ, farming
    # the scatter out to the shard workers.
    if resume_from is not None:
        network = resume_from
        _adopt_scatter_proxies(network, config, types, pool)
        network.on_events = on_events
        network._engine_factory = lambda t: _ShardScatterProxy(
            config.forgetting, t.value, pool)
    else:
        network = StreamingNetworkDetector(
            config, types,
            engine_factory=lambda t: _ShardScatterProxy(config.forgetting,
                                                        t.value, pool),
            on_events=on_events)
    chunk_offset = network.report.n_chunks_processed
    telemetry = network.telemetry
    if telemetry is not None:
        pool.bus.bind_telemetry(telemetry)
    try:
        for chunk_index, chunk in enumerate(iterator):
            if fault_hook is not None:
                fault_hook(chunk_offset + chunk_index, pool)
            narrowed = _restricted_chunk(chunk, types)
            if telemetry is not None:
                # The coordinator owns this chunk's trace; process_chunk
                # sees the open chunk and does not begin its own.
                telemetry.begin_chunk(chunk_index)
                with telemetry.span("ingest"):
                    descriptor = pool.publish(narrowed)
                    pool.broadcast((_MSG_CHUNK, descriptor))
            else:
                descriptor = pool.publish(narrowed)
                pool.broadcast((_MSG_CHUNK, descriptor))
            # Scalar moments + (collect-barrier) calibration + detection.
            network.process_chunk(narrowed)
            if telemetry is not None:
                telemetry.end_chunk()
            pool.check_failure(strict=True)
            if (checkpoint_every_chunks is not None
                    and (chunk_index + 1) % checkpoint_every_chunks == 0):
                network.save(checkpoint_dir)
        pool.send_stop()
        if telemetry is not None:
            # Fold the shard workers' registries (per-worker chunk counts,
            # remote update-stage timings) into the coordinator's before
            # finish() writes the final merged snapshot.
            for _, payload in pool.wait_for_telemetry():
                telemetry.merge_registry(payload)
        pool.shutdown()
    except BaseException:
        pool.shutdown(force=True)
        raise
    return network.finish()


# --------------------------------------------------------------------- #
# supervision
# --------------------------------------------------------------------- #
class WorkerSupervisor:
    """Restart a parallel run from its last good checkpoint on worker death.

    The distributed drivers are fail-fast by construction: a dead worker
    raises :class:`RuntimeError` and tears the whole attempt down (a shard
    worker's scatter row block dies with its process, so the attempt — not
    the single worker — is the recoverable unit).  This supervisor wraps
    :func:`parallel_stream_detect` in a bounded restart loop:

    * on failure it sleeps an exponential backoff with seeded jitter (the
      same discipline as the alert dispatcher's retry policy), reloads the
      newest checkpoint generation that verifies
      (:func:`~repro.streaming.checkpoint.load_checkpoint` with
      ``fallback=True``), and replays the stream suffix from the
      checkpoint's resume bin through ``source.resume(...)``;
    * restored shard workers are **seeded** with their checkpointed
      scatter row blocks at spawn, so the resumed run continues the exact
      numerical trajectory — the final report (whose prefix rides inside
      the checkpoint) is identical to an undisturbed run's, the invariant
      ``tests/test_chaos.py`` enforces;
    * once *max_restarts* is exhausted the original fail-fast
      :class:`RuntimeError` escalates to the caller.

    In ``mode="type"`` there are no mid-stream checkpoints (detector state
    lives inside the workers), so every restart replays from the stream
    start — correct, just slower; downstream sinks absorb the re-emitted
    events through the idempotent event store.

    Restart activity is visible in :attr:`registry` (and therefore in
    :class:`~repro.telemetry.health.HealthSnapshot` /
    ``prometheus_exposition``): the ``worker_restarts`` counter, the
    ``degraded`` gauge (1 once any restart happened), and the
    ``checkpoint_fallbacks`` / ``checkpoints_quarantined`` counters of the
    fallback loads.

    Parameters
    ----------
    config, traffic_types, n_workers, queue_depth, mp_context, mode,
    poll_seconds, checkpoint_dir, checkpoint_every_chunks, on_events:
        Forwarded to :func:`parallel_stream_detect` on every attempt.
    source:
        The resumable chunk stream — anything
        :func:`~repro.streaming.sources.as_chunk_source` accepts.  Each
        attempt iterates ``source.resume(resume_bin)``, so the source must
        support suffix replay (every provided source does; a plain
        iterable only survives restarts from bin 0 if it is re-iterable).
        A legacy ``source_factory(resume_bin)`` callable still works here
        behind a :class:`DeprecationWarning`, as does the deprecated
        ``source_factory=`` keyword.
    max_restarts:
        Restart budget; ``0`` reproduces the bare fail-fast behavior.
    backoff_base, backoff_factor, jitter, sleep, seed:
        The retry discipline: restart ``k`` (0-based) sleeps
        ``backoff_base * backoff_factor**k``, scaled by ``1 + jitter *
        U[0, 1)`` from a dedicated ``random.Random(seed)``; *sleep* is
        injectable so tests run instantly and deterministically.
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry` to count into;
        a fresh one is created (and exposed as :attr:`registry`) if omitted.
    fault_hook:
        Forwarded to :func:`parallel_stream_detect` — the chaos harness's
        deterministic injection point.
    """

    def __init__(self, config: StreamingConfig, source=None,
                 traffic_types: Optional[Sequence[TrafficType]] = None,
                 n_workers: Optional[int] = None, queue_depth: int = 4,
                 mp_context: Optional[str] = None, mode: Optional[str] = None,
                 poll_seconds: Optional[float] = None,
                 checkpoint_dir: Optional[Union[str, os.PathLike]] = None,
                 checkpoint_every_chunks: Optional[int] = None,
                 on_events=None, max_restarts: int = 3,
                 backoff_base: float = 0.05, backoff_factor: float = 2.0,
                 jitter: float = 0.1, sleep=time.sleep, seed: int = 0,
                 registry: Optional[MetricsRegistry] = None,
                 fault_hook=None, source_factory=None) -> None:
        require(max_restarts >= 0, "max_restarts must be >= 0")
        require(backoff_base >= 0.0, "backoff_base must be >= 0")
        require(backoff_factor >= 1.0, "backoff_factor must be >= 1")
        require(jitter >= 0.0, "jitter must be >= 0")
        if source_factory is not None:
            require(source is None,
                    "pass either source= or source_factory=, not both")
            warnings.warn(
                "WorkerSupervisor(source_factory=...) is deprecated; pass "
                "the stream as source= (any ChunkSource)",
                DeprecationWarning, stacklevel=2)
            source = FactoryChunkSource(source_factory)
        require(source is not None, "source is required")
        self._config = config
        self._source = as_chunk_source(source)
        self._traffic_types = traffic_types
        self._n_workers = n_workers
        self._queue_depth = queue_depth
        self._mp_context = mp_context
        self._mode = config.parallel_mode if mode is None else mode
        self._poll_seconds = poll_seconds
        self._checkpoint_dir = checkpoint_dir
        self._checkpoint_every_chunks = checkpoint_every_chunks
        self._on_events = on_events
        self._max_restarts = int(max_restarts)
        self._backoff_base = float(backoff_base)
        self._backoff_factor = float(backoff_factor)
        self._jitter = float(jitter)
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._fault_hook = fault_hook
        self.registry = registry if registry is not None else MetricsRegistry()
        self.restarts = 0

    # ------------------------------------------------------------------ #
    @property
    def degraded(self) -> bool:
        """Whether any attempt has failed (the run recovered at least once)."""
        return self.restarts > 0

    def _backoff_seconds(self, attempt: int) -> float:
        scale = 1.0 + self._jitter * self._rng.random()
        return self._backoff_base * (self._backoff_factor ** attempt) * scale

    def _record_restart(self) -> None:
        self.restarts += 1
        self.registry.counter(
            "worker_restarts",
            help="Supervised attempts restarted after a worker death").inc()
        self.registry.gauge(
            "degraded",
            help="1 once any supervised restart happened").set(1.0)

    def _resume_state(self):
        """(restored detector or None, resume bin) for the next attempt."""
        from repro.streaming.checkpoint import has_checkpoint, load_checkpoint
        if self._mode != "shard" or self._checkpoint_dir is None or \
                not has_checkpoint(self._checkpoint_dir):
            return None, 0
        restored = load_checkpoint(self._checkpoint_dir, fallback=True,
                                   registry=self.registry)
        return restored, restored.report.n_bins_processed

    def run(self) -> StreamingReport:
        """Drive the stream to completion, restarting on worker failures."""
        while True:
            restored, resume_bin = self._resume_state()
            try:
                return parallel_stream_detect(
                    self._source.resume(resume_bin), self._config,
                    traffic_types=self._traffic_types,
                    n_workers=self._n_workers,
                    queue_depth=self._queue_depth,
                    mp_context=self._mp_context, mode=self._mode,
                    poll_seconds=self._poll_seconds,
                    checkpoint_dir=self._checkpoint_dir,
                    checkpoint_every_chunks=self._checkpoint_every_chunks,
                    on_events=self._on_events, resume_from=restored,
                    fault_hook=self._fault_hook)
            except RuntimeError:
                # Worker death (or a forwarded worker traceback).  Config
                # errors raise ValueError before any worker starts and are
                # never retried.
                if self.restarts >= self._max_restarts:
                    raise
                delay = self._backoff_seconds(self.restarts)
                self._record_restart()
                if delay > 0.0:
                    self._sleep(delay)
