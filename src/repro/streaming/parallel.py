"""Bounded-queue multi-process driver for the 3-type streaming pipeline.

:func:`parallel_stream_detect` scales
:func:`~repro.streaming.pipeline.stream_detect` past one core by running
the per-traffic-type :class:`StreamingSubspaceDetector`s in worker
processes while the main process keeps the one inherently sequential piece
— in-order event fusion through the
:class:`~repro.streaming.aggregator.OnlineEventAggregator`:

* each worker owns one or more traffic types (a detector per type stays in
  one process for its whole life, so its moment state never crosses a
  process boundary mid-stream);
* every worker input queue is **bounded** (``queue_depth`` chunks), so a
  slow worker exerts backpressure on the feeding loop instead of letting
  chunks pile up unboundedly — memory stays ``O(queue_depth)`` chunks;
* the main process fuses per-type results strictly in chunk order, so the
  emitted event list is **identical** to the single-process
  ``stream_detect`` run (enforced by ``tests/test_streaming_parallel.py``).

Per-type detection is deterministic and workers do not interact, so the
only parallelism-visible effect is wall-clock time.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import traceback
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.flows.timeseries import TrafficType
from repro.streaming.aggregator import OnlineEventAggregator
from repro.streaming.config import StreamingConfig
from repro.streaming.detector import ChunkDetections, StreamingSubspaceDetector
from repro.streaming.pipeline import (
    StreamingReport,
    _dedup_types,
    _fuse_chunk_results,
)
from repro.streaming.sources import TrafficChunk
from repro.utils.validation import require

__all__ = ["parallel_stream_detect"]

#: Sentinel telling a worker its input stream ended.
_STOP = None
#: First element of a result tuple carrying a worker traceback.
_ERROR = "__error__"
#: Seconds the result loop waits before re-checking worker liveness.
_POLL_SECONDS = 1.0


class _ChunkSpan:
    """The fusion-relevant footprint of one chunk (start/extent only)."""

    __slots__ = ("start_bin", "n_bins")

    def __init__(self, start_bin: int, n_bins: int) -> None:
        self.start_bin = start_bin
        self.n_bins = n_bins

    @property
    def end_bin(self) -> int:
        return self.start_bin + self.n_bins


def _type_worker(config: StreamingConfig, in_queue, out_queue) -> None:
    """Process chunks for the traffic types routed to this worker."""
    detectors: Dict[str, StreamingSubspaceDetector] = {}
    try:
        while True:
            item = in_queue.get()
            if item is _STOP:
                return
            chunk_index, type_value, start_bin, matrix = item
            detector = detectors.get(type_value)
            if detector is None:
                detector = StreamingSubspaceDetector(config)
                detectors[type_value] = detector
            result = detector.process_chunk(matrix, start_bin)
            out_queue.put((chunk_index, type_value, result))
    except BaseException:  # noqa: BLE001 - forwarded verbatim to the driver
        out_queue.put((_ERROR, traceback.format_exc()))
        # Keep draining so the feeder's bounded put never blocks forever on
        # a full queue; the driver raises once it sees the _ERROR message.
        while in_queue.get() is not _STOP:
            pass


class _WorkerPool:
    """The worker processes plus their bounded input queues."""

    def __init__(self, types: Sequence[TrafficType], config: StreamingConfig,
                 n_workers: int, queue_depth: int, context) -> None:
        self.n_workers = max(1, min(n_workers, len(types)))
        self.out_queue = context.Queue()
        self.in_queues = [context.Queue(maxsize=queue_depth)
                          for _ in range(self.n_workers)]
        # Round-robin type -> worker; a type never migrates between workers.
        self.queue_of = {t: self.in_queues[i % self.n_workers]
                         for i, t in enumerate(types)}
        self.processes = [
            context.Process(target=_type_worker,
                            args=(config, in_queue, self.out_queue),
                            daemon=True)
            for in_queue in self.in_queues
        ]
        for process in self.processes:
            process.start()

    def send(self, traffic_type: TrafficType, item) -> None:
        self._put(self.queue_of[traffic_type], item)

    def send_stop(self) -> None:
        for in_queue in self.in_queues:
            self._put(in_queue, _STOP)

    def _put(self, in_queue, item) -> None:
        # Bounded put with a liveness check so a hard-killed worker (whose
        # queue stays full and is never drained) fails the driver instead
        # of deadlocking it; workers that die with an exception keep
        # draining their queue, so this loop terminates for them too.
        while True:
            try:
                in_queue.put(item, timeout=_POLL_SECONDS)
                return
            except queue_module.Full:
                self.check_alive()

    def check_alive(self) -> None:
        for process in self.processes:
            if not process.is_alive() and process.exitcode not in (0, None):
                raise RuntimeError(
                    f"streaming worker died with exit code {process.exitcode}")

    def shutdown(self, force: bool = False) -> None:
        for process in self.processes:
            if force and process.is_alive():
                process.terminate()
            process.join(timeout=30)


def parallel_stream_detect(
    chunks: Iterable[TrafficChunk],
    config: StreamingConfig = StreamingConfig(),
    traffic_types: Optional[Sequence[TrafficType]] = None,
    n_workers: Optional[int] = None,
    queue_depth: int = 4,
    mp_context: Optional[str] = None,
) -> StreamingReport:
    """Multi-process live diagnosis over an iterable of chunks.

    Parameters
    ----------
    chunks:
        The chunk stream (consumed once, in order).
    config:
        Streaming configuration applied by every per-type detector —
        including ``n_shards``, so workers can run column-sharded engines.
    traffic_types:
        Types to analyze; defaults to the types of the first chunk.
    n_workers:
        Worker process count (capped at the number of traffic types, since
        a type's detector must live in exactly one process).  Defaults to
        one worker per traffic type.
    queue_depth:
        Bound of every worker input queue, in chunks: the backpressure
        window between the feeding loop and the slowest worker.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (e.g. ``"spawn"``);
        the platform default is used when ``None``.

    Returns
    -------
    StreamingReport
        Identical (events, detections, counters) to the single-process
        :func:`~repro.streaming.pipeline.stream_detect` on the same stream.
    """
    require(queue_depth >= 1, "queue_depth must be >= 1")
    require(n_workers is None or n_workers >= 1,
            "n_workers must be >= 1 when given")
    require(config.identify, "event fusion needs identified OD flows")

    iterator = iter(chunks)
    if traffic_types is not None:
        types = _dedup_types(traffic_types)
    else:
        try:
            first = next(iterator)
        except StopIteration:
            return StreamingReport()
        types = first.traffic_types
        iterator = itertools.chain([first], iterator)
    require(len(types) >= 1, "at least one traffic type must be analyzed")

    context = multiprocessing.get_context(mp_context)
    pool = _WorkerPool(types, config,
                       n_workers if n_workers is not None else len(types),
                       queue_depth, context)

    aggregator = OnlineEventAggregator()
    report = StreamingReport()
    spans: Dict[int, _ChunkSpan] = {}
    buffered: Dict[int, Dict[TrafficType, ChunkDetections]] = {}
    next_to_fuse = 0
    n_chunks = 0
    try:
        for chunk_index, chunk in enumerate(iterator):
            spans[chunk_index] = _ChunkSpan(chunk.start_bin, chunk.n_bins)
            n_chunks += 1
            for traffic_type in types:
                matrix = np.ascontiguousarray(chunk.matrix(traffic_type))
                pool.send(traffic_type,
                          (chunk_index, traffic_type.value, chunk.start_bin,
                           matrix))
            next_to_fuse = _drain(pool, buffered, spans, types, aggregator,
                                  report, next_to_fuse, block=False)
        pool.send_stop()
        while next_to_fuse < n_chunks:
            next_to_fuse = _drain(pool, buffered, spans, types, aggregator,
                                  report, next_to_fuse, block=True)
        pool.shutdown()
    except BaseException:
        pool.shutdown(force=True)
        raise
    report.events.extend(aggregator.flush())
    return report


def _drain(
    pool: _WorkerPool,
    buffered: Dict[int, Dict[TrafficType, ChunkDetections]],
    spans: Dict[int, _ChunkSpan],
    types: List[TrafficType],
    aggregator: OnlineEventAggregator,
    report: StreamingReport,
    next_to_fuse: int,
    block: bool,
) -> int:
    """Collect available worker results; fuse every completed chunk in order."""
    while True:
        try:
            if block:
                message = pool.out_queue.get(timeout=_POLL_SECONDS)
            else:
                message = pool.out_queue.get_nowait()
        except queue_module.Empty:
            if not block:
                return next_to_fuse
            pool.check_alive()
            continue
        if message[0] == _ERROR:
            raise RuntimeError(f"streaming worker failed:\n{message[1]}")
        chunk_index, type_value, result = message
        buffered.setdefault(chunk_index, {})[TrafficType(type_value)] = result
        # Fuse strictly in order, each chunk only once all types reported.
        while next_to_fuse in buffered and \
                len(buffered[next_to_fuse]) == len(types):
            results = buffered.pop(next_to_fuse)
            span = spans.pop(next_to_fuse)
            _fuse_chunk_results(results, span, aggregator, report)
            if any(result.warmup for result in results.values()):
                report.n_warmup_bins += span.n_bins
            next_to_fuse += 1
        if block:
            # Progress was made; let the caller re-check its exit condition.
            return next_to_fuse
