"""Network-wide online diagnosis over a chunked multi-type stream.

:class:`StreamingNetworkDetector` is the streaming counterpart of
:func:`~repro.core.pipeline.detect_network_anomalies`: one
:class:`~repro.streaming.detector.StreamingSubspaceDetector` per traffic
type, plus one :class:`~repro.streaming.aggregator.OnlineEventAggregator`
fusing the per-type detections into :class:`AnomalyEvent`s as chunks flow
through.  Memory is bounded by one chunk plus the ``O(p²)`` model state per
traffic type, independent of stream length.

Two driving modes:

* :func:`stream_detect` — single-pass **live** mode: each chunk first
  updates the models (with optional forgetting), then is tested against the
  freshly recalibrated subspace.  Early bins (warmup) are not flagged and
  the model adapts over time, so results approximate the batch method.
* :func:`replay_network_anomalies` — two-pass **replay** mode over a finite
  series: pass 1 streams all chunks into the moment engines (no forgetting),
  pass 2 freezes the calibrated snapshots and streams detection +
  aggregation.  Because the frozen model equals the batch model, the emitted
  events match :func:`detect_network_anomalies` exactly while never
  materializing more than one chunk of statistics.
"""

from __future__ import annotations

import time
import uuid
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.events import AnomalyEvent, Detection, count_by_label
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.streaming.aggregator import OnlineEventAggregator
from repro.streaming.config import StreamingConfig
from repro.streaming.detector import ChunkDetections, StreamingSubspaceDetector
from repro.streaming.sources import (
    ChunkedSeriesSource,
    TrafficChunk,
    as_chunk_source,
)
from repro.telemetry import Telemetry
from repro.utils.validation import require

__all__ = ["StreamingReport", "StreamingNetworkDetector", "stream_detect",
           "replay_network_anomalies"]


def _dedup_types(traffic_types: Iterable[TrafficType]) -> List[TrafficType]:
    """Normalize and dedup traffic types, keeping first-seen order.

    Shared by every driver (single-process, replay, multi-process): a
    duplicate type would fold chunks twice into one detector's moments —
    and stall the parallel driver's fusion completeness count.
    """
    return list(dict.fromkeys(TrafficType(t) for t in traffic_types))


@dataclass
class StreamingReport:
    """Accumulated output of a streaming diagnosis run.

    The same information as a batch
    :class:`~repro.core.pipeline.NetworkAnomalyReport`, gathered
    incrementally: fused events, per-type raw detections, and bookkeeping
    about how much of the stream was consumed.
    """

    events: List[AnomalyEvent] = field(default_factory=list)
    detections: Dict[TrafficType, List[Detection]] = field(default_factory=dict)
    n_bins_processed: int = 0
    n_chunks_processed: int = 0
    n_warmup_bins: int = 0
    # Malformed chunks skipped under on_bad_chunk="quarantine" (bad chunks
    # under "raise" never reach the report — the run dies instead).
    n_bad_chunks: int = 0
    # Wall-clock throughput, maintained by the drivers as chunks flow (a
    # restored run keeps accumulating on top of the checkpointed value).
    # Excluded from evaluation.report_parity: two runs producing identical
    # events legitimately differ here.
    runtime_seconds: float = 0.0
    bins_per_second: float = 0.0

    @property
    def n_events(self) -> int:
        """Number of fused anomaly events."""
        return len(self.events)

    def label_counts(self) -> Dict[str, int]:
        """Event counts per combination label (the rows of Table 1)."""
        return count_by_label(self.events)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by streaming checkpoints)."""
        return {
            "events": [event.to_dict() for event in self.events],
            "detections": {
                TrafficType(t).value: [d.to_dict() for d in per_type]
                for t, per_type in self.detections.items()
            },
            "n_bins_processed": self.n_bins_processed,
            "n_chunks_processed": self.n_chunks_processed,
            "n_warmup_bins": self.n_warmup_bins,
            "n_bad_chunks": self.n_bad_chunks,
            "runtime_seconds": self.runtime_seconds,
            "bins_per_second": self.bins_per_second,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StreamingReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            events=[AnomalyEvent.from_dict(e) for e in data["events"]],
            detections={
                TrafficType(t): [Detection.from_dict(d) for d in per_type]
                for t, per_type in dict(data["detections"]).items()
            },
            n_bins_processed=int(data["n_bins_processed"]),
            n_chunks_processed=int(data["n_chunks_processed"]),
            n_warmup_bins=int(data["n_warmup_bins"]),
            # .get(): checkpoints written before bad-chunk tracking existed.
            n_bad_chunks=int(data.get("n_bad_chunks", 0)),
            # .get(): checkpoints written before the runtime fields existed
            # restore with zeros rather than KeyError.
            runtime_seconds=float(data.get("runtime_seconds", 0.0)),
            bins_per_second=float(data.get("bins_per_second", 0.0)),
        )


def _fuse_chunk_results(
    results: Dict[TrafficType, ChunkDetections],
    chunk: TrafficChunk,
    aggregator: OnlineEventAggregator,
    report: StreamingReport,
    telemetry: Optional[Telemetry] = None,
) -> List[AnomalyEvent]:
    """Fold one chunk's per-type detections into the aggregator and report.

    The single fusion step shared by live mode, the two-pass replay, and
    every distributed driver: once every type delivered its detections for
    the chunk's bins, the aggregator watermark advances and newly closed
    events land in the report.  Being the one shared chokepoint also makes
    it the one place the bins/chunks/events telemetry counters increment —
    no driver can double-count.
    """
    if telemetry is not None:
        with telemetry.span("aggregate"):
            events = _fuse_inner(results, chunk, aggregator, report)
        registry = telemetry.registry
        registry.counter("bins_processed",
                         help="Timebins fused into the report").inc(chunk.n_bins)
        registry.counter("chunks_processed",
                         help="Chunks fused into the report").inc()
        for event in events:
            registry.counter("events", {"type": event.traffic_label},
                             help="Anomaly events by combination label").inc()
        return events
    return _fuse_inner(results, chunk, aggregator, report)


def _fuse_inner(
    results: Dict[TrafficType, ChunkDetections],
    chunk: TrafficChunk,
    aggregator: OnlineEventAggregator,
    report: StreamingReport,
) -> List[AnomalyEvent]:
    for traffic_type, result in results.items():
        per_type = report.detections.setdefault(traffic_type, [])
        for stream_detection in result.detections:
            detection = stream_detection.to_detection(traffic_type)
            per_type.append(detection)
            aggregator.add(detection)
    events = aggregator.advance(chunk.end_bin - 1)
    report.events.extend(events)
    report.n_bins_processed += chunk.n_bins
    report.n_chunks_processed += 1
    return events


class StreamingNetworkDetector:
    """Per-traffic-type online detectors plus incremental event fusion.

    Feed :class:`~repro.streaming.sources.TrafficChunk`s via
    :meth:`process_chunk`; closed events are returned as soon as they can no
    longer change, and :meth:`finish` flushes the tail at end of stream.
    """

    def __init__(
        self,
        config: StreamingConfig = StreamingConfig(),
        traffic_types: Optional[Sequence[TrafficType]] = None,
        engine_factory: Optional[Callable[[TrafficType], object]] = None,
        on_events: Optional[Callable[[List[AnomalyEvent]], None]] = None,
    ) -> None:
        require(config.identify,
                "event fusion needs identified OD flows; use a config with "
                "identify=True (or drive StreamingSubspaceDetector directly)")
        self._config = config
        # Lineage id of this run: survives checkpoint/restore, so a
        # checkpoint directory can tell its own detector's saves apart from
        # a foreign detector's (see repro.streaming.checkpoint).
        self._run_id = uuid.uuid4().hex
        # Event hand-off hook: called with every batch of newly closed
        # events (process_chunk) and the end-of-stream tail (finish).
        # Runtime wiring, deliberately not checkpointed — a restored run
        # re-attaches its own hook.
        self._on_events = on_events
        self._types: Optional[List[TrafficType]] = (
            _dedup_types(traffic_types) if traffic_types is not None else None
        )
        # Per-type moment-engine override: the distributed drivers hand the
        # per-type detectors coordinator-side engines (whose scatter lives
        # in shard workers) while everything else — calibration cadence,
        # detection, fusion — runs through this class unchanged.
        self._engine_factory = engine_factory
        self._detectors: Dict[TrafficType, StreamingSubspaceDetector] = {}
        # OD-flow column count established by the first chunk; later chunks
        # disagreeing with it are malformed (on_bad_chunk policy applies).
        self._n_features: Optional[int] = None
        self._aggregator = OnlineEventAggregator()
        self._report = StreamingReport()
        self._finished = False
        self._telemetry = Telemetry.from_config(config)
        self._run_started: Optional[float] = None
        self._runtime_base = 0.0

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> StreamingConfig:
        """The streaming configuration."""
        return self._config

    @property
    def report(self) -> StreamingReport:
        """The report accumulated so far (shared object, updated in place)."""
        return self._report

    @property
    def aggregator(self) -> OnlineEventAggregator:
        """The incremental event aggregator."""
        return self._aggregator

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The observability bundle (``None`` unless ``config.telemetry``)."""
        return self._telemetry

    @property
    def run_id(self) -> str:
        """Lineage id of this run (stable across checkpoint/restore)."""
        return self._run_id

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has sealed the report."""
        return self._finished

    @property
    def on_events(self) -> Optional[Callable[[List[AnomalyEvent]], None]]:
        """The event hand-off hook (settable; ``None`` disables it)."""
        return self._on_events

    @on_events.setter
    def on_events(self,
                  hook: Optional[Callable[[List[AnomalyEvent]], None]]) -> None:
        self._on_events = hook

    def detector(self, traffic_type: TrafficType) -> StreamingSubspaceDetector:
        """The per-type online detector (created on first chunk)."""
        return self._detectors[TrafficType(traffic_type)]

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def _types_for(self, chunk: TrafficChunk) -> List[TrafficType]:
        if self._types is None:
            self._types = chunk.traffic_types
        return self._types

    def _detector_for(self, traffic_type: TrafficType) -> StreamingSubspaceDetector:
        detector = self._detectors.get(traffic_type)
        if detector is None:
            engine = (self._engine_factory(traffic_type)
                      if self._engine_factory is not None else None)
            detector = StreamingSubspaceDetector(self._config, engine=engine)
            if self._telemetry is not None:
                detector.bind_telemetry(self._telemetry,
                                        {"type": traffic_type.value})
            self._detectors[traffic_type] = detector
        return detector

    def _chunk_error(self, chunk: TrafficChunk) -> Optional[str]:
        """Describe what is malformed about *chunk*, or ``None`` if clean.

        Checks every traffic type's matrix for non-finite values and for a
        column count disagreeing with the stream's established OD-flow
        dimension (learned from the first chunk).
        """
        for traffic_type in self._types_for(chunk):
            matrix = np.asarray(chunk.matrix(traffic_type))
            if matrix.ndim != 2:
                return (f"chunk at bin {chunk.start_bin}: "
                        f"{traffic_type.value} matrix is "
                        f"{matrix.ndim}-dimensional, expected 2")
            if self._n_features is None:
                self._n_features = int(matrix.shape[1])
            elif matrix.shape[1] != self._n_features:
                return (f"chunk at bin {chunk.start_bin}: "
                        f"{traffic_type.value} matrix has {matrix.shape[1]} "
                        f"columns, expected {self._n_features} OD flows")
            if not np.isfinite(matrix).all():
                n_bad = int(matrix.size - np.isfinite(matrix).sum())
                return (f"chunk at bin {chunk.start_bin}: "
                        f"{traffic_type.value} matrix contains {n_bad} "
                        f"non-finite value(s) (NaN/Inf)")
        return None

    def _reject_bad_chunk(self, chunk: TrafficChunk) -> bool:
        """Apply the ``on_bad_chunk`` policy; ``True`` iff chunk is skipped.

        ``"raise"`` turns the defect into a :class:`ValueError`;
        ``"quarantine"`` counts it (``bad_chunks`` metric,
        ``report.n_bad_chunks``) and tells the caller to drop the chunk
        without touching the model or the aggregator watermark.
        """
        error = self._chunk_error(chunk)
        if error is None:
            return False
        if self._config.on_bad_chunk == "raise":
            raise ValueError(
                f"malformed traffic chunk: {error} "
                f"(set on_bad_chunk='quarantine' to count and skip instead)")
        self._report.n_bad_chunks += 1
        if self._telemetry is not None:
            self._telemetry.registry.counter(
                "bad_chunks",
                help="Malformed chunks skipped under "
                "on_bad_chunk='quarantine'").inc()
        return True

    def _update_runtime(self) -> None:
        """Refresh the report's wall-clock throughput fields in place."""
        if self._run_started is None:
            return
        elapsed = time.perf_counter() - self._run_started
        runtime = self._runtime_base + elapsed
        self._report.runtime_seconds = runtime
        self._report.bins_per_second = (
            self._report.n_bins_processed / runtime if runtime > 0 else 0.0)
        if self._telemetry is not None:
            self._telemetry.registry.gauge(
                "runtime_seconds",
                help="Wall-clock processing time so far"
            ).set(runtime)

    def ingest_chunk(self, chunk: TrafficChunk) -> None:
        """Fold a chunk into the per-type moment engines without detecting.

        The training-only half of :meth:`process_chunk`: no calibration, no
        detection, no aggregator advance.  Used to pre-train on history and
        by the hierarchical driver's per-PoP leaves, whose detection happens
        at the global level (:mod:`repro.streaming.hierarchy`).
        """
        require(not self._finished, "detector already finished")
        if self._run_started is None:
            self._run_started = time.perf_counter()
        if self._reject_bad_chunk(chunk):
            return
        for traffic_type in self._types_for(chunk):
            self._detector_for(traffic_type).ingest(chunk.matrix(traffic_type))

    def process_chunk(self, chunk: TrafficChunk) -> List[AnomalyEvent]:
        """Consume one chunk; return events that closed because of it."""
        require(not self._finished, "detector already finished")
        if self._run_started is None:
            self._run_started = time.perf_counter()
        if self._reject_bad_chunk(chunk):
            return []
        tel = self._telemetry
        # Drivers that time their own "ingest" stage open the chunk's trace
        # before handing the chunk over; only start one here if they didn't.
        owns_chunk = tel is not None and not tel.tracer.in_chunk
        if owns_chunk:
            tel.begin_chunk(self._report.n_chunks_processed)
        results: Dict[TrafficType, ChunkDetections] = {}
        for traffic_type in self._types_for(chunk):
            results[traffic_type] = self._detector_for(traffic_type).process_chunk(
                chunk.matrix(traffic_type), chunk.start_bin)
        events = _fuse_chunk_results(results, chunk, self._aggregator,
                                     self._report, tel)
        if any(result.warmup for result in results.values()):
            self._report.n_warmup_bins += chunk.n_bins
            if tel is not None:
                tel.registry.counter(
                    "warmup_bins",
                    help="Bins consumed before the model warmed up"
                ).inc(chunk.n_bins)
        if owns_chunk:
            tel.end_chunk()
        self._update_runtime()
        if tel is not None:
            tel.maybe_write_snapshot(self._report.n_chunks_processed)
        if self._on_events is not None and events:
            self._on_events(events)
        return events

    def finish(self) -> StreamingReport:
        """Flush the aggregator at end of stream and return the report."""
        if not self._finished:
            tail = self._aggregator.flush()
            self._report.events.extend(tail)
            self._finished = True
            self._update_runtime()
            if self._telemetry is not None:
                self._telemetry.write_snapshot()
            if self._on_events is not None and tail:
                self._on_events(tail)
        return self._report

    # ------------------------------------------------------------------ #
    # checkpoint/restore
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Dict]:
        """Complete processing state as ``{"meta": scalars, "arrays": ...}``.

        Covers the config, every per-type detector (moments + snapshot +
        stream position), the aggregator watermark/open-run, and the report
        accumulated so far.  Call between chunks — the state is then
        consistent and :meth:`restore` resumes the stream with the identical
        remaining event list.
        """
        meta = {
            "config": self._config.to_dict(),
            "run_id": self._run_id,
            "types": (None if self._types is None
                      else [t.value for t in self._types]),
            "finished": self._finished,
            "detectors": {},
            "aggregator": self._aggregator.state_dict(),
            "report": self._report.to_dict(),
            # Counters survive the checkpoint; in-flight spans do not (the
            # restored run builds a fresh tracer from the config).
            "telemetry": (None if self._telemetry is None
                          else self._telemetry.state_dict()),
        }
        arrays: Dict[str, np.ndarray] = {}
        for traffic_type, detector in self._detectors.items():
            state = detector.state_dict()
            meta["detectors"][traffic_type.value] = state["meta"]
            arrays.update({f"{traffic_type.value}__{k}": v
                           for k, v in state["arrays"].items()})
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def from_state(cls, meta: Mapping,
                   arrays: Mapping[str, np.ndarray]) -> "StreamingNetworkDetector":
        """Rebuild a network detector from :meth:`state_dict` output."""
        config = StreamingConfig.from_dict(meta["config"])
        types = meta["types"]
        detector = cls(config, traffic_types=types)
        # Adopt the checkpoint's lineage: a restored run *is* the same run,
        # so it may keep overwriting the same checkpoint directory.  .get():
        # pre-lineage checkpoints keep the fresh id.
        detector._run_id = str(meta.get("run_id") or detector._run_id)
        for type_value, detector_meta in dict(meta["detectors"]).items():
            prefix = f"{type_value}__"
            detector._detectors[TrafficType(type_value)] = \
                StreamingSubspaceDetector.from_state(
                    config, detector_meta,
                    {k[len(prefix):]: v for k, v in arrays.items()
                     if k.startswith(prefix)})
        detector._aggregator = OnlineEventAggregator.from_state(
            meta["aggregator"])
        detector._report = StreamingReport.from_dict(meta["report"])
        detector._finished = bool(meta["finished"])
        # Resume the runtime clock from the checkpointed value and fold the
        # checkpointed counters into the fresh telemetry bundle.  .get():
        # pre-telemetry checkpoints carry no "telemetry" entry.
        detector._runtime_base = detector._report.runtime_seconds
        if (detector._telemetry is not None
                and meta.get("telemetry") is not None):
            detector._telemetry.restore_state(meta["telemetry"])
        for traffic_type, per_type in detector._detectors.items():
            if detector._telemetry is not None:
                per_type.bind_telemetry(detector._telemetry,
                                        {"type": traffic_type.value})
        return detector

    def save(self, directory) -> "StreamingNetworkDetector":
        """Write an npz + JSON-manifest checkpoint of this detector.

        See :func:`repro.streaming.checkpoint.save_checkpoint`; returns
        ``self`` so a save can be chained mid-stream.
        """
        from repro.streaming.checkpoint import save_checkpoint
        save_checkpoint(self, directory)
        return self

    @classmethod
    def restore(cls, directory) -> "StreamingNetworkDetector":
        """Load a checkpoint written by :meth:`save` and resume mid-stream."""
        from repro.streaming.checkpoint import load_checkpoint
        return load_checkpoint(directory)


def _coalesce_source(source, chunks, parameter: str = "source"):
    """Resolve the ``source=`` / deprecated ``chunks=`` pair of a driver.

    Exactly one of the two must be given; ``chunks=`` warns and is folded
    into *source*, which then goes through :func:`as_chunk_source`.
    """
    if chunks is not None:
        require(source is None,
                f"pass either {parameter}= or chunks=, not both")
        warnings.warn(
            f"the chunks= keyword is deprecated; pass the stream as "
            f"{parameter}= (any ChunkSource or iterable of chunks)",
            DeprecationWarning, stacklevel=3)
        source = chunks
    require(source is not None, f"{parameter} is required")
    return as_chunk_source(source, parameter=parameter)


def stream_detect(
    source=None,
    config: StreamingConfig = StreamingConfig(),
    traffic_types: Optional[Sequence[TrafficType]] = None,
    on_events: Optional[Callable[[List[AnomalyEvent]], None]] = None,
    chunks: Optional[Iterable[TrafficChunk]] = None,
) -> StreamingReport:
    """Single-pass live diagnosis over a chunk source.

    *source* is anything :func:`~repro.streaming.sources.as_chunk_source`
    accepts: a :class:`~repro.streaming.sources.ChunkSource`, a plain
    iterable of chunks, or (deprecated) a ``factory(start_bin)`` callable.
    The ``chunks=`` keyword is a deprecated alias for *source*.

    *on_events*, when given, receives every batch of newly closed events as
    soon as it can no longer change — the hand-off point for persistence
    and alerting (see :mod:`repro.service`).
    """
    source = _coalesce_source(source, chunks)
    detector = StreamingNetworkDetector(config, traffic_types,
                                        on_events=on_events)
    tel = detector.telemetry
    if tel is None:
        for chunk in source:
            detector.process_chunk(chunk)
        return detector.finish()
    # Instrumented loop: open each chunk's trace before pulling it so the
    # time spent waiting on the source lands in the "ingest" stage.
    iterator = iter(source)
    index = 0
    while True:
        tel.begin_chunk(index)
        with tel.span("ingest"):
            chunk = next(iterator, None)
        if chunk is None:
            tel.end_chunk()
            break
        detector.process_chunk(chunk)
        tel.end_chunk()
        index += 1
    return detector.finish()


def replay_network_anomalies(
    series: TrafficMatrixSeries,
    chunk_size: int,
    config: StreamingConfig = StreamingConfig(),
    traffic_types: Optional[Sequence[TrafficType]] = None,
) -> StreamingReport:
    """Two-pass chunked replay with exact batch parity.

    Pass 1 streams every chunk into the per-type moment engines; pass 2
    freezes the calibrated snapshots and streams detection plus incremental
    aggregation.  With the default ``forgetting = 1`` the frozen model
    equals the batch model fitted on the whole window, so the returned
    events coincide with :func:`detect_network_anomalies` on *series* —
    while only ever holding one chunk of per-bin statistics.  (The SPE is
    computed through the orthonormal-projection identity rather than the
    batch path's residual matrix, so the coincidence is up to float
    round-off at the control limits, not bit-for-bit; see
    :meth:`StreamingSubspaceDetector.detect_chunk`.)
    """
    require(config.forgetting == 1.0,
            "exact replay parity requires forgetting == 1.0")
    require(config.limits == "fixed",
            "exact replay parity requires the fixed control-limit policy "
            "(adaptive quantile limits drift away from the batch limits)")
    require(config.identify, "event fusion needs identified OD flows")
    types = (_dedup_types(traffic_types)
             if traffic_types is not None else series.traffic_types)
    require(len(types) >= 1, "at least one traffic type must be analyzed")
    source = ChunkedSeriesSource(series, chunk_size)

    detectors: Dict[TrafficType, StreamingSubspaceDetector] = {
        t: StreamingSubspaceDetector(config) for t in types
    }
    for chunk in source:
        for traffic_type in types:
            detectors[traffic_type].ingest(chunk.matrix(traffic_type))
    for detector in detectors.values():
        detector.calibrate()

    aggregator = OnlineEventAggregator()
    report = StreamingReport()
    for chunk in source:
        results = {
            traffic_type: detectors[traffic_type].detect_chunk(
                chunk.matrix(traffic_type), chunk.start_bin)
            for traffic_type in types
        }
        _fuse_chunk_results(results, chunk, aggregator, report)
    report.events.extend(aggregator.flush())
    return report
