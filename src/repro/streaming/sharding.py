"""Column-sharded running moments and the exact parallel-moments merge.

Two ways to split the ``O(m p²)`` moment maintenance of
:class:`~repro.streaming.online_pca.OnlinePCA` across workers, both exact:

* **Column sharding** (:class:`ShardedOnlinePCA`): the ``p`` OD-flow columns
  are partitioned into ``K`` shards; shard ``k`` maintains the rows of the
  centered scatter matrix belonging to its columns (an
  ``|cols_k| x p`` block, ``O(m p²/K)`` work per chunk).  Because the full
  scatter is just the stack of those row blocks, assembling them yields a
  covariance that matches the single-engine one bit-compatibly (up to float
  accumulation order inside the BLAS), for **any** ``K`` and any partition
  — the merge is associative and commutative in the partition.  All
  weighting/decay bookkeeping is inherited from the same
  ``_MomentTracker`` base the single engine uses, so the two cannot drift.

* **Temporal sharding** (:func:`merge_online_pca`): engines that ingested
  *disjoint consecutive segments* of the stream are combined with the exact
  pairwise Chan et al. parallel-moments update — the same formula
  ``partial_fit`` applies per chunk, lifted to whole moment tuples.  With
  ``forgetting = 1`` the combine is associative *and* commutative, so
  per-worker moments can be reduced in any order.

Both guarantees are enforced by ``tests/test_streaming_properties.py`` and
``tests/test_streaming_sharding.py``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.streaming.online_pca import OnlinePCA, _MomentTracker
from repro.utils.validation import require

__all__ = ["ShardedOnlinePCA", "ShardWorkerMoments", "merge_online_pca",
           "partition_columns"]


def partition_columns(n_features: int, n_shards: int) -> List[np.ndarray]:
    """Contiguous balanced partition of ``range(n_features)`` into shards.

    Shards never exceed the column count: asking for more shards than
    columns yields one shard per column.
    """
    require(n_features >= 1, "n_features must be >= 1")
    require(n_shards >= 1, "n_shards must be >= 1")
    return list(np.array_split(np.arange(n_features), min(n_shards, n_features)))


def _validated_partition(partition: Sequence[Sequence[int]],
                         n_features: int) -> List[np.ndarray]:
    columns = [np.asarray(cols, dtype=int) for cols in partition]
    require(all(cols.size >= 1 for cols in columns),
            "every shard must own at least one column")
    flat = np.concatenate(columns)
    require(flat.size == n_features and
            np.array_equal(np.sort(flat), np.arange(n_features)),
            "shard columns must partition range(n_features) exactly")
    return columns


class _ColumnShard:
    """One shard's rows of the centered scatter matrix."""

    __slots__ = ("columns", "block")

    def __init__(self, columns: np.ndarray, n_features: int) -> None:
        self.columns = columns
        self.block = np.zeros((columns.size, n_features))

    def update(self, centered: np.ndarray, weights: Optional[np.ndarray],
               delta: np.ndarray, decay: float, outer_coefficient: float) -> None:
        """Apply one chunk's scatter update restricted to this shard's rows."""
        own = centered[:, self.columns]
        if weights is None:
            chunk_block = own.T @ centered
        else:
            chunk_block = (own * weights[:, np.newaxis]).T @ centered
        self.block = (
            self.block * decay
            + chunk_block
            + np.outer(delta[self.columns], delta) * outer_coefficient
        )


class ShardedOnlinePCA(_MomentTracker):
    """Column-sharded drop-in replacement for :class:`OnlinePCA`.

    The per-chunk ``O(m p)`` bookkeeping (weights, chunk mean, centering,
    running mean) comes from the shared ``_MomentTracker`` base — computed
    once, with the identical arithmetic the single engine uses — while the
    ``O(m p²)`` scatter update (the throughput cap) is split across the
    shards' independent row blocks.  The class mirrors the full
    ``OnlinePCA`` accessor/serialization API, so
    :class:`StreamingSubspaceDetector` runs on either engine unchanged
    (select via ``StreamingConfig(n_shards=K)``).

    Parameters
    ----------
    n_shards:
        Number of column shards ``K`` (used when *partition* is ``None``;
        the partition is materialized contiguously on the first chunk).
    forgetting:
        Per-bin decay factor ``λ``, exactly as in :class:`OnlinePCA`.
    partition:
        Explicit column partition: a sequence of index collections that
        together cover ``range(p)`` exactly once.  Overrides *n_shards*.
    """

    #: Engine-kind tag written into checkpoint manifests.
    STATE_KIND = "sharded_online_pca"

    def __init__(self, n_shards: int = 2, forgetting: float = 1.0,
                 partition: Optional[Sequence[Sequence[int]]] = None) -> None:
        require(n_shards >= 1, "n_shards must be >= 1")
        super().__init__(forgetting)
        self._requested_shards = int(n_shards)
        self._partition_spec = partition
        self._shards: Optional[List[_ColumnShard]] = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of column shards (the requested count until data arrives)."""
        if self._shards is None:
            if self._partition_spec is not None:
                return len(self._partition_spec)
            return self._requested_shards
        return len(self._shards)

    @property
    def shard_columns(self) -> List[np.ndarray]:
        """The materialized column partition (empty before the first chunk)."""
        if self._shards is None:
            return []
        return [shard.columns.copy() for shard in self._shards]

    # ------------------------------------------------------------------ #
    # scatter storage (the only piece that differs from OnlinePCA)
    # ------------------------------------------------------------------ #
    def _initialize_scatter(self, n_features: int) -> None:
        if self._partition_spec is not None:
            columns = _validated_partition(self._partition_spec, n_features)
        else:
            columns = partition_columns(n_features, self._requested_shards)
        self._shards = [_ColumnShard(cols, n_features) for cols in columns]

    def _apply_scatter_update(self, centered: np.ndarray,
                              weights: Optional[np.ndarray],
                              delta: np.ndarray, decay: float,
                              outer_coefficient: float) -> None:
        for shard in self._shards:
            shard.update(centered, weights, delta, decay, outer_coefficient)

    # ------------------------------------------------------------------ #
    # merge + derived quantities
    # ------------------------------------------------------------------ #
    def merged_scatter(self) -> np.ndarray:
        """Assemble the full ``p x p`` scatter from the shard row blocks."""
        require(self._shards is not None, "no data ingested yet")
        scatter = np.empty((self._n_features, self._n_features))
        for shard in self._shards:
            scatter[shard.columns, :] = shard.block
        return scatter

    def merged(self) -> OnlinePCA:
        """The assembled moments as an equivalent single :class:`OnlinePCA`."""
        require(self._shards is not None, "no data ingested yet")
        state = self._scalar_state(OnlinePCA.STATE_KIND)
        arrays = {"mean": self._mean.copy(), "scatter": self.merged_scatter()}
        return OnlinePCA.from_state(state, arrays)

    def covariance(self) -> np.ndarray:
        """The merged sample covariance ``M / (Σw - 1)``."""
        require(self._weight_sum > 1.0,
                "need total weight > 1 for a sample covariance")
        return self.merged_scatter() / (self._weight_sum - 1.0)

    # ------------------------------------------------------------------ #
    # serialization (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Dict]:
        """Per-shard state as ``{"meta": scalars, "arrays": ndarrays}``."""
        meta = self._scalar_state(self.STATE_KIND)
        meta["n_shards"] = self.n_shards
        arrays: Dict[str, np.ndarray] = {}
        if self._shards is not None:
            arrays["mean"] = self._mean.copy()
            for i, shard in enumerate(self._shards):
                arrays[f"shard{i}_columns"] = shard.columns.copy()
                arrays[f"shard{i}_block"] = shard.block.copy()
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def from_state(cls, meta: Mapping,
                   arrays: Mapping[str, np.ndarray]) -> "ShardedOnlinePCA":
        """Rebuild a sharded engine from :meth:`state_dict` output."""
        require(meta.get("kind") == cls.STATE_KIND,
                f"state is not a {cls.STATE_KIND} state")
        n_shards = int(meta["n_shards"])
        engine = cls(n_shards=n_shards, forgetting=float(meta["forgetting"]))
        if meta["has_data"]:
            mean = np.array(arrays["mean"], dtype=float)
            engine._n_features = mean.size
            engine._mean = mean
            shards = []
            for i in range(n_shards):
                columns = np.array(arrays[f"shard{i}_columns"], dtype=int)
                shard = _ColumnShard(columns, mean.size)
                block = np.array(arrays[f"shard{i}_block"], dtype=float)
                require(block.shape == shard.block.shape,
                        "shard block shape does not match its column count")
                shard.block = block
                shards.append(shard)
            _validated_partition([s.columns for s in shards], mean.size)
            engine._shards = shards
        engine._restore_scalars(meta)
        return engine


class ShardWorkerMoments(_MomentTracker):
    """One shard's moments, owned end to end by a remote worker process.

    The distributed driver (:mod:`repro.streaming.parallel`, shard mode)
    gives each worker process one column shard of **every** per-type
    detector.  The worker replays the full ``_MomentTracker`` scalar
    arithmetic locally — the ``O(m p)`` mean/weight bookkeeping is
    duplicated across workers so no per-chunk scalar messages are needed,
    and because the arithmetic is deterministic on identical float64 input
    every worker's scalars agree bit-for-bit with the coordinator's — while
    storing only its own ``|cols| x p`` row block of the scatter (the
    ``O(m p²/K)`` share that is the point of the split).

    This is exactly one :class:`_ColumnShard` of a
    :class:`ShardedOnlinePCA` torn out into its own tracker: stacking the
    blocks of all ``K`` workers reproduces the single-engine scatter
    bit-compatibly, which is what the coordinator does at calibration time.
    """

    def __init__(self, shard_index: int, n_shards: int,
                 forgetting: float = 1.0) -> None:
        require(n_shards >= 1, "n_shards must be >= 1")
        require(0 <= shard_index < n_shards,
                "shard_index must lie in [0, n_shards)")
        super().__init__(forgetting)
        self._shard_index = int(shard_index)
        self._total_shards = int(n_shards)
        self._shard: Optional[_ColumnShard] = None

    @property
    def columns(self) -> np.ndarray:
        """This shard's owned columns (empty before the first chunk)."""
        if self._shard is None:
            return np.empty(0, dtype=int)
        return self._shard.columns.copy()

    @property
    def block(self) -> np.ndarray:
        """The owned ``|cols| x p`` scatter row block (copy)."""
        require(self._shard is not None, "no data ingested yet")
        return self._shard.block.copy()

    def _initialize_scatter(self, n_features: int) -> None:
        partition = partition_columns(n_features, self._total_shards)
        # More workers than columns: trailing shards own nothing and their
        # blocks are empty (0 x p) — assembly still covers every row.
        columns = (partition[self._shard_index]
                   if self._shard_index < len(partition)
                   else np.empty(0, dtype=int))
        self._shard = _ColumnShard(columns, n_features)

    @classmethod
    def from_seed(cls, shard_index: int, n_shards: int, forgetting: float,
                  meta: Mapping, mean: np.ndarray,
                  block: np.ndarray) -> "ShardWorkerMoments":
        """A worker tracker resumed from checkpointed flat moments.

        *meta* are the flat engine's scalars (``_scalar_state`` output),
        *mean* its full length-``p`` mean, and *block* the
        ``|cols| x p`` scatter rows this shard owns under
        :func:`partition_columns` — the supervisor's restart path seeds
        replacement workers with exactly the state the dead ones carried
        at the last good checkpoint.
        """
        engine = cls(shard_index, n_shards, forgetting)
        mean = np.array(mean, dtype=float)
        engine._n_features = mean.size
        engine._mean = mean
        engine._initialize_scatter(mean.size)
        block = np.array(block, dtype=float)
        require(block.shape == engine._shard.block.shape,
                "seed block shape does not match this shard's column count")
        engine._shard.block = block
        engine._restore_scalars(meta)
        return engine

    def _apply_scatter_update(self, centered: np.ndarray,
                              weights: Optional[np.ndarray],
                              delta: np.ndarray, decay: float,
                              outer_coefficient: float) -> None:
        self._shard.update(centered, weights, delta, decay, outer_coefficient)

    def covariance(self) -> np.ndarray:
        raise NotImplementedError(
            "a single shard cannot produce the full covariance; assemble "
            "the blocks of all shards in the coordinator")


def merge_online_pca(earlier: OnlinePCA, later: OnlinePCA) -> OnlinePCA:
    """Combine engines over disjoint consecutive stream segments, exactly.

    This is the pairwise Chan et al. parallel-moments update applied to two
    whole moment tuples: *earlier* holds the moments of the first segment,
    *later* those of the segment that follows it.  With ``forgetting = 1``
    the operation is associative and commutative (segment order is
    irrelevant); with ``λ < 1`` it stays associative but weights *earlier*
    down by ``λ^m`` for the ``m`` bins *later* ingested, so order matters —
    exactly as if the segments had been streamed through one engine.

    A pair of :class:`~repro.streaming.low_rank.LowRankEigenTracker`
    engines is dispatched to :func:`~repro.streaming.low_rank.merge_low_rank`
    (the same Chan combine through a small factored core instead of the
    full scatter); mixing a low-rank tracker with an exact engine is
    rejected — compress the exact one first via
    :func:`~repro.streaming.low_rank.compress_engine`.
    """
    from repro.streaming.low_rank import LowRankEigenTracker, merge_low_rank
    low_rank_flags = (isinstance(earlier, LowRankEigenTracker),
                      isinstance(later, LowRankEigenTracker))
    if all(low_rank_flags):
        return merge_low_rank(earlier, later)
    require(not any(low_rank_flags),
            "cannot merge a low-rank tracker with an exact engine; compress "
            "the exact engine via compress_engine first")
    require(earlier.forgetting == later.forgetting,
            "engines must share the same forgetting factor")
    if later.n_features is None:
        return OnlinePCA.from_state(**earlier.state_dict())
    if earlier.n_features is None:
        return OnlinePCA.from_state(**later.state_dict())
    require(earlier.n_features == later.n_features,
            "engines must share the same number of OD flows")

    merged = OnlinePCA.from_state(**earlier.state_dict())
    second = later.state_dict()
    decay = earlier.forgetting ** later.n_bins_seen
    # The shared Chan combine of _MomentTracker, fed a whole moment tuple
    # (the later segment) instead of a raw chunk.
    merged._merge_weighted_chunk(
        chunk_weight=second["meta"]["weight_sum"],
        chunk_weight_sq=second["meta"]["weight_sq_sum"],
        chunk_mean=second["arrays"]["mean"],
        decay=decay,
        decay_sq=decay**2,
        n_bins=later.n_bins_seen,
        scatter_update=lambda delta, coefficient: merged._merge_scatter(
            second["arrays"]["scatter"], delta, decay, coefficient),
    )
    return merged
