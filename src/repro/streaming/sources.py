"""Chunked stream sources feeding the online detection pipeline.

A stream is any iterable of :class:`TrafficChunk` — a block of consecutive
timebins carrying aligned matrices for one or more traffic types.  Two
adapters are provided here:

* :func:`chunk_series` / :class:`ChunkedSeriesSource` replay an in-memory
  :class:`~repro.flows.timeseries.TrafficMatrixSeries` as zero-copy chunks
  (the bridge from every existing dataset to the streaming pipeline);
* :func:`repro.datasets.streaming.synthetic_chunk_stream` (in the datasets
  package) generates an **unbounded** synthetic feed block by block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping

import numpy as np

from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.utils.validation import ensure_2d, require

__all__ = ["TrafficChunk", "ChunkedSeriesSource", "chunk_series"]


@dataclass(frozen=True)
class TrafficChunk:
    """A block of consecutive timebins for one or more traffic types.

    All matrices share the same ``m x p`` shape; ``start_bin`` is the
    stream-global index of the first row.
    """

    start_bin: int
    matrices: Mapping[TrafficType, np.ndarray]

    def __post_init__(self) -> None:
        require(self.start_bin >= 0, "start_bin must be non-negative")
        require(len(self.matrices) >= 1, "a chunk needs at least one traffic type")
        shape = None
        coerced = {}
        for traffic_type, matrix in self.matrices.items():
            array = ensure_2d(matrix, f"matrices[{TrafficType(traffic_type).value}]")
            if shape is None:
                shape = array.shape
            require(array.shape == shape,
                    "all traffic types of a chunk must share one shape")
            coerced[TrafficType(traffic_type)] = array
        object.__setattr__(self, "matrices", coerced)

    @property
    def n_bins(self) -> int:
        """Number of timebins ``m`` in the chunk."""
        return int(next(iter(self.matrices.values())).shape[0])

    @property
    def n_od_pairs(self) -> int:
        """Number of OD flows ``p``."""
        return int(next(iter(self.matrices.values())).shape[1])

    @property
    def end_bin(self) -> int:
        """Exclusive stream-global end bin."""
        return self.start_bin + self.n_bins

    @property
    def traffic_types(self) -> List[TrafficType]:
        """Traffic types present in the chunk."""
        return [TrafficType(t) for t in self.matrices.keys()]

    def matrix(self, traffic_type: TrafficType) -> np.ndarray:
        """The ``m x p`` matrix for *traffic_type*."""
        try:
            return self.matrices[TrafficType(traffic_type)]
        except KeyError:
            raise KeyError(f"traffic type {traffic_type!r} not in chunk") from None


def chunk_series(series: TrafficMatrixSeries, chunk_size: int,
                 start_bin: int = 0) -> Iterator[TrafficChunk]:
    """Replay *series* as consecutive zero-copy :class:`TrafficChunk`s.

    *start_bin* offsets the reported stream-global indices (useful when a
    series is one block of a longer stream).
    """
    for local_start, matrices in series.iter_chunks(chunk_size):
        yield TrafficChunk(start_bin=start_bin + local_start, matrices=matrices)


class ChunkedSeriesSource:
    """Re-iterable chunked view of a :class:`TrafficMatrixSeries`.

    Unlike the one-shot generator :func:`chunk_series`, the source can be
    iterated multiple times — which is what the two-pass replay harness in
    :mod:`repro.streaming.pipeline` needs.

    *start_bin* offsets every chunk's stream-global index (passed through
    to :func:`chunk_series`), so a series can be replayed as a **suffix** of
    a longer stream — the resume path of a checkpoint-restored detector,
    which expects the next chunk to start at its saved watermark.
    """

    def __init__(self, series: TrafficMatrixSeries, chunk_size: int,
                 start_bin: int = 0) -> None:
        require(chunk_size >= 1, "chunk_size must be >= 1")
        require(start_bin >= 0, "start_bin must be non-negative")
        self._series = series
        self._chunk_size = int(chunk_size)
        self._start_bin = int(start_bin)

    @property
    def series(self) -> TrafficMatrixSeries:
        """The underlying series."""
        return self._series

    @property
    def chunk_size(self) -> int:
        """Rows per chunk (the final chunk may be shorter)."""
        return self._chunk_size

    @property
    def start_bin(self) -> int:
        """Stream-global index of the series' first bin."""
        return self._start_bin

    def __len__(self) -> int:
        return -(-self._series.n_bins // self._chunk_size)

    def __iter__(self) -> Iterator[TrafficChunk]:
        return chunk_series(self._series, self._chunk_size, self._start_bin)
