"""Chunked stream sources feeding the online detection pipeline.

A stream is any object satisfying the :class:`ChunkSource` protocol: an
iterable of :class:`TrafficChunk` — blocks of consecutive timebins carrying
aligned matrices for one or more traffic types — plus a ``resume(start_bin)``
method returning the same stream's suffix from a stream-global bin (the
checkpoint-restart path).  Every driver (``stream_detect``,
``parallel_stream_detect``, ``WorkerSupervisor``, ``DetectionService``)
accepts one uniform ``source=`` argument normalized by
:func:`as_chunk_source`:

* a :class:`ChunkSource` is used as-is;
* a plain iterable of chunks is wrapped in :class:`IterableChunkSource`
  (``resume`` skips already-covered chunks — forward-only);
* a legacy ``source_factory(resume_bin)`` callable is wrapped in
  :class:`FactoryChunkSource` behind a :class:`DeprecationWarning`.

Concrete sources provided here:

* :func:`chunk_series` / :class:`ChunkedSeriesSource` replay an in-memory
  :class:`~repro.flows.timeseries.TrafficMatrixSeries` as zero-copy chunks
  (the bridge from every existing dataset to the streaming pipeline);
* :class:`AsyncChunkSource` bridges an :mod:`asyncio` producer (a collector
  polling routers, a network receive loop) to the synchronous detection
  drivers, with bounded backpressure and explicit watermarks;
* :class:`repro.datasets.streaming.SyntheticChunkSource` (in the datasets
  package) generates an **unbounded** synthetic feed block by block;
* :class:`repro.ingest.FlowCsvSource` parses and bins on-disk flow-record
  exports.
"""

from __future__ import annotations

import asyncio
import queue as queue_module
import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Mapping, Optional, Protocol, \
    runtime_checkable

import numpy as np

from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.utils.validation import require

__all__ = ["TrafficChunk", "ChunkSource", "IterableChunkSource",
           "FactoryChunkSource", "as_chunk_source", "ChunkedSeriesSource",
           "AsyncChunkSource", "chunk_series"]


@dataclass(frozen=True)
class TrafficChunk:
    """A block of consecutive timebins for one or more traffic types.

    All matrices share the same ``m x p`` shape; ``start_bin`` is the
    stream-global index of the first row.
    """

    start_bin: int
    matrices: Mapping[TrafficType, np.ndarray]

    def __post_init__(self) -> None:
        require(self.start_bin >= 0, "start_bin must be non-negative")
        require(len(self.matrices) >= 1, "a chunk needs at least one traffic type")
        shape = None
        coerced = {}
        for traffic_type, matrix in self.matrices.items():
            name = f"matrices[{TrafficType(traffic_type).value}]"
            # Shape-only coercion: a chunk is a wire format and may carry a
            # collector's malformed payload (NaN/Inf cells).  Whether that
            # kills the run or is quarantined is the *detector's* policy
            # (StreamingConfig.on_bad_chunk), not the container's.
            array = np.asarray(matrix, dtype=float)
            require(array.ndim == 2,
                    f"{name} must be 2-dimensional, got ndim={array.ndim}")
            require(array.size > 0, f"{name} must be non-empty")
            if shape is None:
                shape = array.shape
            require(array.shape == shape,
                    "all traffic types of a chunk must share one shape")
            coerced[TrafficType(traffic_type)] = array
        object.__setattr__(self, "matrices", coerced)

    @property
    def n_bins(self) -> int:
        """Number of timebins ``m`` in the chunk."""
        return int(next(iter(self.matrices.values())).shape[0])

    @property
    def n_od_pairs(self) -> int:
        """Number of OD flows ``p``."""
        return int(next(iter(self.matrices.values())).shape[1])

    @property
    def end_bin(self) -> int:
        """Exclusive stream-global end bin."""
        return self.start_bin + self.n_bins

    @property
    def traffic_types(self) -> List[TrafficType]:
        """Traffic types present in the chunk."""
        return [TrafficType(t) for t in self.matrices.keys()]

    def matrix(self, traffic_type: TrafficType) -> np.ndarray:
        """The ``m x p`` matrix for *traffic_type*."""
        try:
            return self.matrices[TrafficType(traffic_type)]
        except KeyError:
            raise KeyError(f"traffic type {traffic_type!r} not in chunk") from None


def chunk_series(series: TrafficMatrixSeries, chunk_size: int,
                 start_bin: int = 0) -> Iterator[TrafficChunk]:
    """Replay *series* as consecutive zero-copy :class:`TrafficChunk`s.

    *start_bin* offsets the reported stream-global indices (useful when a
    series is one block of a longer stream).
    """
    for local_start, matrices in series.iter_chunks(chunk_size):
        yield TrafficChunk(start_bin=start_bin + local_start, matrices=matrices)


@runtime_checkable
class ChunkSource(Protocol):
    """The one feed shape every streaming driver consumes.

    A chunk source is (re-)iterable — yielding in-order, gapless
    :class:`TrafficChunk`s — and supports suffix replay: ``resume(k)``
    returns a source yielding the same stream from stream-global bin ``k``
    on, with the **same chunk boundaries** the original stream had past
    ``k`` (live-mode detection results depend on chunking, so a resumed
    run must see the chunks an undisturbed run would have seen).  Sources
    that fundamentally cannot replay (a live feed) implement ``resume`` as
    a positioning assertion instead (see :meth:`AsyncChunkSource.resume`).
    """

    def __iter__(self) -> Iterator[TrafficChunk]:
        ...  # pragma: no cover - protocol signature

    def resume(self, start_bin: int) -> "ChunkSource":
        ...  # pragma: no cover - protocol signature


class IterableChunkSource:
    """A plain iterable of chunks behind the :class:`ChunkSource` protocol.

    The weakest adapter: iteration is whatever the wrapped iterable does
    (a one-shot generator stays one-shot), and :meth:`resume` can only
    skip **forward** — chunks entirely below the resume bin are dropped,
    and the first surviving chunk must start exactly at it.
    """

    def __init__(self, chunks: Iterable[TrafficChunk]) -> None:
        self._chunks = chunks

    def __iter__(self) -> Iterator[TrafficChunk]:
        return iter(self._chunks)

    def resume(self, start_bin: int) -> "IterableChunkSource":
        require(start_bin >= 0, "start_bin must be non-negative")
        if start_bin == 0:
            return self

        def suffix(chunks=self._chunks, start=int(start_bin)):
            first = True
            for chunk in chunks:
                if chunk.end_bin <= start:
                    continue
                if first:
                    require(chunk.start_bin == start,
                            f"cannot resume a plain iterable at bin {start}: "
                            f"the first surviving chunk is "
                            f"[{chunk.start_bin}, {chunk.end_bin}) (use a "
                            f"source with real suffix replay)")
                    first = False
                yield chunk

        return IterableChunkSource(suffix())


class FactoryChunkSource:
    """Deprecated ``source_factory(resume_bin)`` behind the protocol.

    The pre-protocol resumable shape: a callable mapping a resume bin to
    the stream suffix.  Kept as a shim so existing factories keep working;
    new code implements :class:`ChunkSource` directly.
    """

    def __init__(self, factory, start_bin: int = 0) -> None:
        require(callable(factory), "factory must be callable")
        self._factory = factory
        self._start_bin = int(start_bin)

    def __iter__(self) -> Iterator[TrafficChunk]:
        return iter(self._factory(self._start_bin))

    def resume(self, start_bin: int) -> "FactoryChunkSource":
        require(start_bin >= 0, "start_bin must be non-negative")
        return FactoryChunkSource(self._factory, start_bin)


def as_chunk_source(source, parameter: str = "source") -> "ChunkSource":
    """Normalize any accepted feed shape to a :class:`ChunkSource`.

    The single adapter behind every driver's ``source=`` parameter:
    protocol-conforming sources pass through, plain iterables are wrapped,
    and legacy ``source_factory(resume_bin)`` callables are wrapped behind
    a :class:`DeprecationWarning`.
    """
    require(source is not None, f"{parameter} must not be None")
    if isinstance(source, ChunkSource):
        return source
    if callable(source):
        warnings.warn(
            f"passing a source_factory(resume_bin) callable as {parameter} "
            f"is deprecated; pass a ChunkSource (an object with __iter__ "
            f"and resume(start_bin)) instead",
            DeprecationWarning, stacklevel=3)
        return FactoryChunkSource(source)
    if isinstance(source, Iterable):
        return IterableChunkSource(source)
    raise TypeError(
        f"{parameter} must be a ChunkSource, an iterable of TrafficChunk, "
        f"or a source_factory callable; got {type(source).__name__}")


class ChunkedSeriesSource:
    """Re-iterable chunked view of a :class:`TrafficMatrixSeries`.

    Unlike the one-shot generator :func:`chunk_series`, the source can be
    iterated multiple times — which is what the two-pass replay harness in
    :mod:`repro.streaming.pipeline` needs — and it implements the
    :class:`ChunkSource` protocol: :meth:`resume` replays the suffix of
    the stream from any bin, preserving the original chunk boundaries
    (the resume path of a checkpoint-restored detector).

    *start_bin* (deprecated) declares the series to be a pre-cut suffix
    whose first row sits at that stream-global bin.  New code keeps the
    full series and calls ``resume(start_bin)`` instead.
    """

    def __init__(self, series: TrafficMatrixSeries, chunk_size: int,
                 start_bin: int = 0) -> None:
        require(chunk_size >= 1, "chunk_size must be >= 1")
        require(start_bin >= 0, "start_bin must be non-negative")
        if start_bin:
            warnings.warn(
                "ChunkedSeriesSource(start_bin=...) is deprecated; build "
                "the source over the full series and call "
                "resume(start_bin) for suffix replay",
                DeprecationWarning, stacklevel=2)
        self._series = series
        self._chunk_size = int(chunk_size)
        # Stream-global bin of the series' first row, and the bin iteration
        # starts at.  resume() moves only _resume_bin: one set of chunk
        # boundaries (multiples of chunk_size past the origin) serves every
        # suffix, which is what makes a resumed run chunk-identical.
        self._origin_bin = int(start_bin)
        self._resume_bin = int(start_bin)

    @property
    def series(self) -> TrafficMatrixSeries:
        """The underlying series."""
        return self._series

    @property
    def chunk_size(self) -> int:
        """Rows per chunk (the final chunk may be shorter)."""
        return self._chunk_size

    @property
    def start_bin(self) -> int:
        """Stream-global bin iteration starts at."""
        return self._resume_bin

    @property
    def end_bin(self) -> int:
        """Exclusive stream-global bin of the series' end."""
        return self._origin_bin + self._series.n_bins

    def resume(self, start_bin: int) -> "ChunkedSeriesSource":
        """This stream from *start_bin* on, original chunk boundaries kept."""
        require(self._origin_bin <= start_bin <= self.end_bin,
                f"resume bin {start_bin} outside the stream range "
                f"[{self._origin_bin}, {self.end_bin}]")
        clone = ChunkedSeriesSource(self._series, self._chunk_size)
        clone._origin_bin = self._origin_bin
        clone._resume_bin = int(start_bin)
        return clone

    def __len__(self) -> int:
        n_chunks = 0
        local = self._resume_bin - self._origin_bin
        while local < self._series.n_bins:
            local = (local // self._chunk_size + 1) * self._chunk_size
            n_chunks += 1
        return n_chunks

    def __iter__(self) -> Iterator[TrafficChunk]:
        n_bins = self._series.n_bins
        local = self._resume_bin - self._origin_bin
        while local < n_bins:
            # Chunk boundaries are fixed multiples of chunk_size past the
            # origin, so a mid-stream resume emits the identical chunks an
            # uninterrupted iteration would from that point on.
            stop = min(n_bins, (local // self._chunk_size + 1)
                       * self._chunk_size)
            yield TrafficChunk(
                start_bin=self._origin_bin + local,
                matrices={t: self._series.matrix(t)[local:stop, :]
                          for t in self._series.traffic_types})
            local = stop


#: Queue sentinel marking a cleanly closed stream.
_CLOSED = object()


class AsyncChunkSource:
    """Bridge an :mod:`asyncio` producer to the synchronous chunk drivers.

    The detection drivers (:func:`~repro.streaming.pipeline.stream_detect`,
    :func:`~repro.streaming.parallel.parallel_stream_detect`) consume a
    plain iterable; live collectors are naturally asynchronous.  This
    adapter is both at once — an awaitable sink and a blocking iterator —
    over one bounded queue:

    * **backpressure**: :meth:`put` suspends the producer coroutine (via an
      executor thread, never blocking the event loop) while the queue holds
      *maxsize* chunks, so ingestion lag propagates back to the collector
      instead of growing an unbounded buffer;
    * **explicit watermarks**: every accepted chunk must start exactly at
      :attr:`produced_watermark` (in order, gapless — the contract the
      online aggregator's event-closing watermark relies on), and
      :attr:`consumed_watermark` reports how far the consumer got —
      ``produced - consumed`` is the in-flight backlog in bins;
    * **failure propagation**: :meth:`abort` carries a producer-side
      exception to the consumer, which re-raises it instead of silently
      truncating the stream.

    Typical wiring (consumer on a worker thread, producer on the loop)::

        source = AsyncChunkSource(maxsize=4)
        report_future = loop.run_in_executor(None, stream_detect, source)
        async for chunk in collector:
            await source.put(chunk)
        await source.aclose()
        report = await report_future
    """

    def __init__(self, maxsize: int = 4,
                 start_bin: Optional[int] = None) -> None:
        require(maxsize >= 1, "maxsize must be >= 1")
        require(start_bin is None or start_bin >= 0,
                "start_bin must be non-negative")
        self._queue: queue_module.Queue = queue_module.Queue(maxsize)
        self._produced: Optional[int] = start_bin
        self._consumed: Optional[int] = start_bin
        self._closed = False
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # watermarks
    # ------------------------------------------------------------------ #
    @property
    def produced_watermark(self) -> Optional[int]:
        """Exclusive end bin of everything accepted so far (``None``: nothing
        yet and no explicit ``start_bin`` was given)."""
        return self._produced

    @property
    def consumed_watermark(self) -> Optional[int]:
        """Exclusive end bin of everything the consumer iterated past."""
        return self._consumed

    def resume(self, start_bin: int) -> "AsyncChunkSource":
        """Position the live feed at *start_bin* (no replay possible).

        A live feed cannot re-emit the past, so ``resume`` is a
        positioning assertion rather than a suffix replay: on a fresh
        source it pins both watermarks to *start_bin* (the producer must
        then start there); on a source already in flight it requires the
        stream to sit exactly at *start_bin* with no buffered backlog.
        """
        require(start_bin >= 0, "start_bin must be non-negative")
        if self._produced is None and self._consumed is None:
            self._produced = int(start_bin)
            self._consumed = int(start_bin)
            return self
        require(self._produced == start_bin and self._consumed == start_bin,
                f"cannot replay a live feed: resume bin {start_bin} but the "
                f"feed sits at produced={self._produced}, "
                f"consumed={self._consumed}")
        return self

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def put_sync(self, chunk: TrafficChunk) -> None:
        """Blocking put with watermark enforcement (thread producers)."""
        require(not self._closed, "source is closed")
        require(self._error is None, "source was aborted")
        require(self._produced is None or chunk.start_bin == self._produced,
                f"out-of-order chunk: expected start_bin {self._produced}, "
                f"got {chunk.start_bin} (streams must be in order and "
                f"gapless)")
        self._queue.put(chunk)
        self._produced = chunk.end_bin

    async def put(self, chunk: TrafficChunk) -> None:
        """Enqueue *chunk*; suspends (without blocking the loop) when full."""
        await asyncio.get_running_loop().run_in_executor(
            None, self.put_sync, chunk)

    def close(self) -> None:
        """Mark the end of the stream (blocking; idempotent)."""
        if not self._closed:
            self._closed = True
            self._queue.put(_CLOSED)

    async def aclose(self) -> None:
        """Async :meth:`close` (suspends while the queue is full)."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    def abort(self, error: BaseException) -> None:
        """Propagate a producer failure to the consumer (never blocks).

        The consumer re-raises *error* on its next step, before any chunk
        still sitting in the queue — a failed producer means the stream is
        incomplete, so buffered data must not be mistaken for a clean tail.
        """
        self._error = error
        self._closed = True
        try:
            self._queue.put_nowait(_CLOSED)
        except queue_module.Full:
            # The consumer is not blocked on an empty queue; it will see
            # the error flag before its next get.
            pass

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[TrafficChunk]:
        return self

    def __next__(self) -> TrafficChunk:
        if self._error is not None:
            raise self._error
        item = self._queue.get()
        if self._error is not None:
            raise self._error
        if item is _CLOSED:
            # Re-enqueue so a second (accidental) iteration also stops
            # instead of blocking forever.
            self._queue.put(_CLOSED)
            raise StopIteration
        self._consumed = item.end_bin
        return item
