"""Chunked stream sources feeding the online detection pipeline.

A stream is any iterable of :class:`TrafficChunk` — a block of consecutive
timebins carrying aligned matrices for one or more traffic types.  Three
adapters are provided here:

* :func:`chunk_series` / :class:`ChunkedSeriesSource` replay an in-memory
  :class:`~repro.flows.timeseries.TrafficMatrixSeries` as zero-copy chunks
  (the bridge from every existing dataset to the streaming pipeline);
* :class:`AsyncChunkSource` bridges an :mod:`asyncio` producer (a collector
  polling routers, a network receive loop) to the synchronous detection
  drivers, with bounded backpressure and explicit watermarks;
* :func:`repro.datasets.streaming.synthetic_chunk_stream` (in the datasets
  package) generates an **unbounded** synthetic feed block by block.
"""

from __future__ import annotations

import asyncio
import queue as queue_module
from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional

import numpy as np

from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.utils.validation import require

__all__ = ["TrafficChunk", "ChunkedSeriesSource", "AsyncChunkSource",
           "chunk_series"]


@dataclass(frozen=True)
class TrafficChunk:
    """A block of consecutive timebins for one or more traffic types.

    All matrices share the same ``m x p`` shape; ``start_bin`` is the
    stream-global index of the first row.
    """

    start_bin: int
    matrices: Mapping[TrafficType, np.ndarray]

    def __post_init__(self) -> None:
        require(self.start_bin >= 0, "start_bin must be non-negative")
        require(len(self.matrices) >= 1, "a chunk needs at least one traffic type")
        shape = None
        coerced = {}
        for traffic_type, matrix in self.matrices.items():
            name = f"matrices[{TrafficType(traffic_type).value}]"
            # Shape-only coercion: a chunk is a wire format and may carry a
            # collector's malformed payload (NaN/Inf cells).  Whether that
            # kills the run or is quarantined is the *detector's* policy
            # (StreamingConfig.on_bad_chunk), not the container's.
            array = np.asarray(matrix, dtype=float)
            require(array.ndim == 2,
                    f"{name} must be 2-dimensional, got ndim={array.ndim}")
            require(array.size > 0, f"{name} must be non-empty")
            if shape is None:
                shape = array.shape
            require(array.shape == shape,
                    "all traffic types of a chunk must share one shape")
            coerced[TrafficType(traffic_type)] = array
        object.__setattr__(self, "matrices", coerced)

    @property
    def n_bins(self) -> int:
        """Number of timebins ``m`` in the chunk."""
        return int(next(iter(self.matrices.values())).shape[0])

    @property
    def n_od_pairs(self) -> int:
        """Number of OD flows ``p``."""
        return int(next(iter(self.matrices.values())).shape[1])

    @property
    def end_bin(self) -> int:
        """Exclusive stream-global end bin."""
        return self.start_bin + self.n_bins

    @property
    def traffic_types(self) -> List[TrafficType]:
        """Traffic types present in the chunk."""
        return [TrafficType(t) for t in self.matrices.keys()]

    def matrix(self, traffic_type: TrafficType) -> np.ndarray:
        """The ``m x p`` matrix for *traffic_type*."""
        try:
            return self.matrices[TrafficType(traffic_type)]
        except KeyError:
            raise KeyError(f"traffic type {traffic_type!r} not in chunk") from None


def chunk_series(series: TrafficMatrixSeries, chunk_size: int,
                 start_bin: int = 0) -> Iterator[TrafficChunk]:
    """Replay *series* as consecutive zero-copy :class:`TrafficChunk`s.

    *start_bin* offsets the reported stream-global indices (useful when a
    series is one block of a longer stream).
    """
    for local_start, matrices in series.iter_chunks(chunk_size):
        yield TrafficChunk(start_bin=start_bin + local_start, matrices=matrices)


class ChunkedSeriesSource:
    """Re-iterable chunked view of a :class:`TrafficMatrixSeries`.

    Unlike the one-shot generator :func:`chunk_series`, the source can be
    iterated multiple times — which is what the two-pass replay harness in
    :mod:`repro.streaming.pipeline` needs.

    *start_bin* offsets every chunk's stream-global index (passed through
    to :func:`chunk_series`), so a series can be replayed as a **suffix** of
    a longer stream — the resume path of a checkpoint-restored detector,
    which expects the next chunk to start at its saved watermark.
    """

    def __init__(self, series: TrafficMatrixSeries, chunk_size: int,
                 start_bin: int = 0) -> None:
        require(chunk_size >= 1, "chunk_size must be >= 1")
        require(start_bin >= 0, "start_bin must be non-negative")
        self._series = series
        self._chunk_size = int(chunk_size)
        self._start_bin = int(start_bin)

    @property
    def series(self) -> TrafficMatrixSeries:
        """The underlying series."""
        return self._series

    @property
    def chunk_size(self) -> int:
        """Rows per chunk (the final chunk may be shorter)."""
        return self._chunk_size

    @property
    def start_bin(self) -> int:
        """Stream-global index of the series' first bin."""
        return self._start_bin

    def __len__(self) -> int:
        return -(-self._series.n_bins // self._chunk_size)

    def __iter__(self) -> Iterator[TrafficChunk]:
        return chunk_series(self._series, self._chunk_size, self._start_bin)


#: Queue sentinel marking a cleanly closed stream.
_CLOSED = object()


class AsyncChunkSource:
    """Bridge an :mod:`asyncio` producer to the synchronous chunk drivers.

    The detection drivers (:func:`~repro.streaming.pipeline.stream_detect`,
    :func:`~repro.streaming.parallel.parallel_stream_detect`) consume a
    plain iterable; live collectors are naturally asynchronous.  This
    adapter is both at once — an awaitable sink and a blocking iterator —
    over one bounded queue:

    * **backpressure**: :meth:`put` suspends the producer coroutine (via an
      executor thread, never blocking the event loop) while the queue holds
      *maxsize* chunks, so ingestion lag propagates back to the collector
      instead of growing an unbounded buffer;
    * **explicit watermarks**: every accepted chunk must start exactly at
      :attr:`produced_watermark` (in order, gapless — the contract the
      online aggregator's event-closing watermark relies on), and
      :attr:`consumed_watermark` reports how far the consumer got —
      ``produced - consumed`` is the in-flight backlog in bins;
    * **failure propagation**: :meth:`abort` carries a producer-side
      exception to the consumer, which re-raises it instead of silently
      truncating the stream.

    Typical wiring (consumer on a worker thread, producer on the loop)::

        source = AsyncChunkSource(maxsize=4)
        report_future = loop.run_in_executor(None, stream_detect, source)
        async for chunk in collector:
            await source.put(chunk)
        await source.aclose()
        report = await report_future
    """

    def __init__(self, maxsize: int = 4,
                 start_bin: Optional[int] = None) -> None:
        require(maxsize >= 1, "maxsize must be >= 1")
        require(start_bin is None or start_bin >= 0,
                "start_bin must be non-negative")
        self._queue: queue_module.Queue = queue_module.Queue(maxsize)
        self._produced: Optional[int] = start_bin
        self._consumed: Optional[int] = start_bin
        self._closed = False
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # watermarks
    # ------------------------------------------------------------------ #
    @property
    def produced_watermark(self) -> Optional[int]:
        """Exclusive end bin of everything accepted so far (``None``: nothing
        yet and no explicit ``start_bin`` was given)."""
        return self._produced

    @property
    def consumed_watermark(self) -> Optional[int]:
        """Exclusive end bin of everything the consumer iterated past."""
        return self._consumed

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def put_sync(self, chunk: TrafficChunk) -> None:
        """Blocking put with watermark enforcement (thread producers)."""
        require(not self._closed, "source is closed")
        require(self._error is None, "source was aborted")
        require(self._produced is None or chunk.start_bin == self._produced,
                f"out-of-order chunk: expected start_bin {self._produced}, "
                f"got {chunk.start_bin} (streams must be in order and "
                f"gapless)")
        self._queue.put(chunk)
        self._produced = chunk.end_bin

    async def put(self, chunk: TrafficChunk) -> None:
        """Enqueue *chunk*; suspends (without blocking the loop) when full."""
        await asyncio.get_running_loop().run_in_executor(
            None, self.put_sync, chunk)

    def close(self) -> None:
        """Mark the end of the stream (blocking; idempotent)."""
        if not self._closed:
            self._closed = True
            self._queue.put(_CLOSED)

    async def aclose(self) -> None:
        """Async :meth:`close` (suspends while the queue is full)."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    def abort(self, error: BaseException) -> None:
        """Propagate a producer failure to the consumer (never blocks).

        The consumer re-raises *error* on its next step, before any chunk
        still sitting in the queue — a failed producer means the stream is
        incomplete, so buffered data must not be mistaken for a clean tail.
        """
        self._error = error
        self._closed = True
        try:
            self._queue.put_nowait(_CLOSED)
        except queue_module.Full:
            # The consumer is not blocked on an empty queue; it will see
            # the error flag before its next get.
            pass

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[TrafficChunk]:
        return self

    def __next__(self) -> TrafficChunk:
        if self._error is not None:
            raise self._error
        item = self._queue.get()
        if self._error is not None:
            raise self._error
        if item is _CLOSED:
            # Re-enqueue so a second (accidental) iteration also stops
            # instead of blocking forever.
            self._queue.put(_CLOSED)
            raise StopIteration
        self._consumed = item.end_bin
        return item
