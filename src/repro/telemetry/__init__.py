"""Dependency-free observability layer of the streaming detection stack.

Three pieces (see the module docstrings for the contracts):

* :mod:`repro.telemetry.registry` — thread-safe, mergeable counters /
  gauges / fixed-bucket histograms and the Prometheus text formatter;
* :mod:`repro.telemetry.tracer` — per-chunk trace spans with monotonic
  timing, seeded sampling, and a pluggable JSON-lines sink;
* :mod:`repro.telemetry.health` — :class:`HealthSnapshot` + the status
  table behind ``tools/status.py``.

The :class:`Telemetry` facade bundles one registry + one tracer + the
snapshot-writing knobs, and is what the streaming components thread
around: every hook is written ``if telemetry is not None: ...``, so a
disabled run (``StreamingConfig(telemetry=False)``, the default) pays a
single attribute check per hook.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.telemetry.health import HealthSnapshot, render_status_table
from repro.telemetry.registry import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                                      Histogram, MetricsRegistry,
                                      prometheus_exposition)
from repro.telemetry.tracer import (JsonLinesSink, ListSink, NullSink, Span,
                                    Tracer)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "prometheus_exposition", "DEFAULT_LATENCY_BUCKETS",
    "Span", "Tracer", "JsonLinesSink", "ListSink", "NullSink",
    "HealthSnapshot", "render_status_table", "Telemetry",
]


class Telemetry:
    """One run's observability bundle: registry + tracer + snapshot knobs.

    Built with :meth:`from_config` (returns ``None`` when telemetry is
    off, so call sites guard with ``if tel is not None``).  Workers pass
    their ``worker`` id: their spans are labeled, their trace file gets a
    ``.<worker>`` suffix, and snapshot writing stays coordinator-only.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 snapshot_path: str = "",
                 snapshot_every_chunks: int = 16,
                 worker: str = "") -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (tracer if tracer is not None
                       else Tracer(registry=self.registry, worker=worker))
        self.snapshot_path = str(snapshot_path)
        self.snapshot_every_chunks = int(snapshot_every_chunks)
        self.worker = str(worker)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(cls, config, worker: str = "") -> Optional["Telemetry"]:
        """A fresh bundle per the config's ``telemetry_*`` knobs.

        ``None`` when ``config.telemetry`` is falsy — the disabled path.
        Accepts any object carrying the knobs (duck-typed so this module
        never imports :mod:`repro.streaming`).
        """
        if not getattr(config, "telemetry", False):
            return None
        registry = MetricsRegistry()
        trace_path = str(getattr(config, "telemetry_trace_path", ""))
        if trace_path and worker:
            trace_path = f"{trace_path}.{worker}"
        sink = JsonLinesSink(trace_path) if trace_path else None
        tracer = Tracer(
            sample_rate=float(getattr(config, "telemetry_sample_rate", 1.0)),
            seed=int(getattr(config, "telemetry_seed", 0)),
            registry=registry, sink=sink, worker=worker)
        return cls(
            registry=registry, tracer=tracer,
            snapshot_path=("" if worker else
                           str(getattr(config, "telemetry_snapshot_path",
                                       ""))),
            snapshot_every_chunks=int(getattr(
                config, "telemetry_snapshot_every_chunks", 16)),
            worker=worker)

    # ------------------------------------------------------------------ #
    # tracing (thin delegation so call sites hold one object)
    # ------------------------------------------------------------------ #
    def begin_chunk(self, chunk_index: int) -> bool:
        return self.tracer.begin_chunk(chunk_index)

    def end_chunk(self) -> None:
        self.tracer.end_chunk()

    def span(self, stage: str, **attrs) -> Span:
        return self.tracer.span(stage, **attrs)

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self, runtime_seconds: Optional[float] = None
                 ) -> HealthSnapshot:
        return HealthSnapshot.from_registry(self.registry,
                                            runtime_seconds=runtime_seconds)

    def write_snapshot(self, runtime_seconds: Optional[float] = None) -> None:
        if self.snapshot_path:
            self.snapshot(runtime_seconds).write(self.snapshot_path)

    def maybe_write_snapshot(self, chunks_processed: int,
                             runtime_seconds: Optional[float] = None) -> None:
        """Periodic snapshot: every ``snapshot_every_chunks`` chunks."""
        if (self.snapshot_path and chunks_processed > 0
                and chunks_processed % self.snapshot_every_chunks == 0):
            self.snapshot(runtime_seconds).write(self.snapshot_path)

    # ------------------------------------------------------------------ #
    # serialization (checkpoints, worker→coordinator shipping)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """The counters' durable state.  Spans are deliberately absent:
        in-flight spans do not survive checkpoint/restore."""
        return {"registry": self.registry.to_dict()}

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Fold a checkpointed registry into this (fresh) bundle."""
        self.registry.merge(MetricsRegistry.from_dict(state["registry"]))

    def merge_registry(self, data: Mapping[str, object]) -> None:
        """Fold a worker's shipped ``registry.to_dict()`` payload in."""
        self.registry.merge(MetricsRegistry.from_dict(data))

    def close(self) -> None:
        self.tracer.close()
