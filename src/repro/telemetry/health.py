"""Health snapshots: the registry folded into one structured report.

A :class:`HealthSnapshot` is the status surface of a run: the handful of
headline quantities an operator checks first (throughput, events by type,
recalibration cadence, worker liveness, bus pressure) pulled out of the
:class:`~repro.telemetry.registry.MetricsRegistry`, plus the complete
metrics dump for everything else.  The pipeline writes one periodically
(atomic rename, so a reader never sees a torn file); ``tools/status.py``
renders the latest one as a table, and
:func:`~repro.telemetry.registry.prometheus_exposition` turns the same
registry into a scrape payload.
"""

from __future__ import annotations

import json
import os
import time
import uuid
import warnings
from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from typing import Dict, List, Mapping, Optional

from repro.telemetry.registry import MetricsRegistry

__all__ = ["HealthSnapshot", "render_status_table"]

SNAPSHOT_VERSION = 1


@dataclass
class HealthSnapshot:
    """One structured view of a run's telemetry at a point in time."""

    created_unix: float
    bins_processed: int
    chunks_processed: int
    warmup_bins: int
    runtime_seconds: float
    bins_per_second: float
    events_total: int
    events_by_type: Dict[str, int]
    recalibrations: int
    recalibration_seconds: float
    workers: Dict[str, int] = field(default_factory=dict)
    stage_seconds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    # Fault-tolerance surface (defaults keep pre-existing snapshots
    # loading): supervised-worker restarts, checkpoint fallback activity,
    # hierarchy leaf quarantine, and malformed-chunk skips.
    worker_restarts: int = 0
    degraded: bool = False
    checkpoint_fallbacks: int = 0
    checkpoints_quarantined: int = 0
    quarantined_leaves: int = 0
    coverage: float = 1.0
    bad_chunks: int = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_registry(cls, registry: MetricsRegistry,
                      runtime_seconds: Optional[float] = None,
                      created_unix: Optional[float] = None
                      ) -> "HealthSnapshot":
        """Derive the headline fields from the registry's canonical names.

        ``runtime_seconds`` defaults to the registry's own
        ``runtime_seconds`` gauge (set by the pipeline); throughput is
        recomputed from bins/runtime rather than trusted from a gauge so
        the snapshot is internally consistent.
        """
        if runtime_seconds is None:
            runtime_seconds = registry.value("runtime_seconds")
        bins = registry.value("bins_processed")
        events_by_type = {
            dict(labels_key).get("type", ""): int(metric.value)
            for labels_key, metric in registry.labeled("events").items()
        }
        # Recalibrations are counted per traffic type; the headline number
        # is the sum over every labeled child.
        n_recalibrations = sum(
            int(metric.value)
            for metric in registry.labeled("recalibrations").values())
        recal = registry.get("stage_seconds", {"stage": "recalibrate"})
        stage_summary: Dict[str, Dict[str, float]] = {}
        for labels_key, metric in registry.labeled("stage_seconds").items():
            stage = dict(labels_key).get("stage", "")
            stage_summary[stage] = {
                "count": metric.count,
                "total_seconds": metric.total,
                "mean_seconds": metric.mean,
                "p95_seconds": metric.quantile(0.95),
            }
        workers = {
            dict(labels_key).get("worker", ""): int(metric.value)
            for labels_key, metric in registry.labeled("worker_chunks").items()
        }
        # Coverage defaults to full when the run has no hierarchy gauge.
        coverage = registry.value("hierarchy_coverage", default=1.0)
        return cls(
            created_unix=(time.time() if created_unix is None
                          else float(created_unix)),
            bins_processed=int(bins),
            chunks_processed=int(registry.value("chunks_processed")),
            warmup_bins=int(registry.value("warmup_bins")),
            runtime_seconds=float(runtime_seconds),
            bins_per_second=(bins / runtime_seconds
                             if runtime_seconds > 0 else 0.0),
            events_total=sum(events_by_type.values()),
            events_by_type=events_by_type,
            recalibrations=n_recalibrations,
            recalibration_seconds=(recal.total if recal is not None else 0.0),
            workers=workers,
            stage_seconds=stage_summary,
            metrics=registry.to_dict(),
            worker_restarts=int(registry.value("worker_restarts")),
            degraded=bool(registry.value("degraded")),
            checkpoint_fallbacks=int(registry.value("checkpoint_fallbacks")),
            checkpoints_quarantined=int(
                registry.value("checkpoints_quarantined")),
            quarantined_leaves=int(registry.value("quarantined_leaves")),
            coverage=float(coverage),
            bad_chunks=int(registry.value("bad_chunks")),
        )

    def registry(self) -> MetricsRegistry:
        """Rehydrate the full registry captured in this snapshot."""
        return MetricsRegistry.from_dict(self.metrics)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {"version": SNAPSHOT_VERSION, **asdict(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HealthSnapshot":
        fields = dict(data)
        fields.pop("version", None)
        # Forward compatibility: a snapshot written by a newer
        # SNAPSHOT_VERSION may carry fields this reader does not know.  An
        # old status CLI pointed at a new run must keep rendering what it
        # understands, not crash with a TypeError.
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(fields) - known)
        if unknown:
            warnings.warn(
                f"health snapshot carries unknown fields {unknown} "
                f"(written by a newer snapshot version?); ignoring them",
                RuntimeWarning, stacklevel=2)
            for name in unknown:
                fields.pop(name)
        return cls(**fields)

    def write(self, path: str) -> None:
        """Atomically replace *path* with this snapshot as JSON.

        The temp name is unique per write (pid + random suffix): two
        processes snapshotting the same path — a coordinator and a leaf, or
        two overlapping runs — must never rename each other's half-written
        file.  The payload is fsynced before the rename, matching the
        checkpoint module's durability discipline.
        """
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = f"{path}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            # Never leave a stray temp file behind a failed write.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def read(cls, path: str) -> "HealthSnapshot":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def _rows_to_table(rows: List[List[str]], header: List[str]) -> List[str]:
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    def fmt(row):
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(row, widths)).rstrip()
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def render_status_table(snapshot: HealthSnapshot) -> str:
    """The snapshot as a plain-text operator table (``tools/status.py``)."""
    age = time.time() - snapshot.created_unix
    lines = [
        f"snapshot taken {age:.1f}s ago "
        f"(unix {snapshot.created_unix:.0f})",
        "",
        f"bins processed     {snapshot.bins_processed}"
        f"  (+{snapshot.warmup_bins} warm-up)",
        f"chunks processed   {snapshot.chunks_processed}",
        f"runtime            {snapshot.runtime_seconds:.2f}s"
        f"  ({snapshot.bins_per_second:.1f} bins/sec)",
        f"events emitted     {snapshot.events_total}",
        f"recalibrations     {snapshot.recalibrations}"
        f"  ({snapshot.recalibration_seconds:.3f}s total)",
    ]
    faults = (snapshot.worker_restarts or snapshot.degraded
              or snapshot.checkpoint_fallbacks
              or snapshot.checkpoints_quarantined
              or snapshot.quarantined_leaves or snapshot.bad_chunks
              or snapshot.coverage < 1.0)
    if faults:
        lines += [
            "",
            f"degraded           "
            f"{'yes' if snapshot.degraded else 'no'}",
            f"worker restarts    {snapshot.worker_restarts}",
            f"ckpt fallbacks     {snapshot.checkpoint_fallbacks}"
            f"  ({snapshot.checkpoints_quarantined} files quarantined)",
            f"leaf coverage      {snapshot.coverage:.2f}"
            f"  ({snapshot.quarantined_leaves} leaves quarantined)",
            f"bad chunks         {snapshot.bad_chunks}",
        ]
    if snapshot.events_by_type:
        lines.append("")
        lines.extend(_rows_to_table(
            [[label, str(count)]
             for label, count in sorted(snapshot.events_by_type.items())],
            ["event type", "count"]))
    if snapshot.stage_seconds:
        lines.append("")
        lines.extend(_rows_to_table(
            [[stage, str(int(s["count"])), f"{s['mean_seconds'] * 1e3:.3f}",
              f"{s['p95_seconds'] * 1e3:.3f}", f"{s['total_seconds']:.3f}"]
             for stage, s in sorted(snapshot.stage_seconds.items())],
            ["stage", "count", "mean ms", "p95 ms", "total s"]))
    if snapshot.workers:
        lines.append("")
        lines.extend(_rows_to_table(
            [[worker, str(count)]
             for worker, count in sorted(snapshot.workers.items())],
            ["worker", "chunks"]))
    return "\n".join(lines) + "\n"
