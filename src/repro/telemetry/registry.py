"""Mergeable, thread-safe metrics: counters, gauges, fixed-bucket histograms.

The observability layer's ground truth is a :class:`MetricsRegistry` — a
named collection of three metric kinds shared by every runtime component:

* :class:`Counter` — a monotonically increasing float (bins processed,
  events emitted, recalibrations run);
* :class:`Gauge` — a point-in-time value with an explicit **merge mode**
  (``last``/``sum``/``max``/``min``), because "the bus holds 3 slots" and
  "this worker processed 40 chunks" combine differently across processes;
* :class:`Histogram` — fixed upper-bound buckets plus a running sum/count
  (per-stage latencies), so two processes' distributions add bucket-wise.

Registries **merge**: shard/type workers maintain their own registry and
ship its :meth:`~MetricsRegistry.to_dict` form over the existing result
pipes; the coordinator folds them with :meth:`~MetricsRegistry.merge` — the
same discipline as the moment algebra, and (for counters, histograms, and
``sum``/``max``/``min`` gauges) associative and commutative in the same
way, which is what ``tests/test_telemetry.py`` property-checks.

Metric identity is ``(name, labels)`` where labels is a frozen mapping
(Prometheus-style dimensions: ``{"type": "bytes"}``, ``{"stage":
"detect"}``).  Everything is dependency-free and JSON-serializable, so a
registry travels through queues, checkpoint manifests, and snapshot files
unchanged.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.utils.validation import require

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "prometheus_exposition", "DEFAULT_LATENCY_BUCKETS"]

#: Upper bounds (seconds) of the per-stage latency histograms: µs-scale
#: guards through multi-second recalibrations, roughly ×4 per step.
DEFAULT_LATENCY_BUCKETS = (0.0001, 0.0005, 0.002, 0.008, 0.032, 0.128,
                           0.512, 2.048, 8.192)

_LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Mapping[str, str]]) -> _LabelsKey:
    """Canonical (sorted, stringified) form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing float; merge is addition."""

    kind = "counter"

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount

    def merge(self, other: "Counter") -> None:
        with self._lock:
            self.value += other.value

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def restore(self, data: Mapping[str, object]) -> None:
        self.value = float(data["value"])


class Gauge:
    """A point-in-time value with an explicit cross-process merge mode.

    ``last`` (the default) keeps whichever side set the gauge more
    recently in merge order — right for coordinator-owned state like the
    adaptive scale; ``sum``/``max``/``min`` combine worker-local values
    (per-worker chunk counts, worst-case lag) order-independently.
    """

    kind = "gauge"
    MODES = ("last", "sum", "max", "min")

    def __init__(self, lock: threading.RLock, mode: str = "last") -> None:
        require(mode in self.MODES, f"gauge mode must be one of {self.MODES}")
        self._lock = lock
        self.mode = mode
        self.value = 0.0
        self.n_sets = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.n_sets += 1

    def merge(self, other: "Gauge") -> None:
        require(other.mode == self.mode,
                f"cannot merge gauge modes {self.mode!r} and {other.mode!r}")
        with self._lock:
            if other.n_sets == 0:
                return
            if self.n_sets == 0:
                self.value = other.value
            elif self.mode == "sum":
                self.value += other.value
            elif self.mode == "max":
                self.value = max(self.value, other.value)
            elif self.mode == "min":
                self.value = min(self.value, other.value)
            else:  # "last": merge order decides, the other side is newer
                self.value = other.value
            self.n_sets += other.n_sets

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "mode": self.mode, "value": self.value,
                "n_sets": self.n_sets}

    def restore(self, data: Mapping[str, object]) -> None:
        self.value = float(data["value"])
        self.n_sets = int(data["n_sets"])


class Histogram:
    """Fixed-bucket histogram with cumulative-compatible counts.

    ``bounds`` are the finite upper bucket edges (ascending); an implicit
    ``+Inf`` bucket catches the overflow.  ``counts[i]`` is the number of
    observations in ``(bounds[i-1], bounds[i]]`` (*not* cumulative — the
    Prometheus formatter accumulates on the way out), so merging two
    histograms is element-wise addition.
    """

    kind = "histogram"

    def __init__(self, lock: threading.RLock,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        require(len(bounds) >= 1, "a histogram needs at least one bucket")
        require(all(a < b for a, b in zip(bounds, bounds[1:])),
                "histogram bounds must be strictly ascending")
        self._lock = lock
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        """Average observed value (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        holding the ``q``-th observation; the last finite edge for the
        overflow bucket)."""
        require(0.0 <= q <= 1.0, "quantile level must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def merge(self, other: "Histogram") -> None:
        require(other.bounds == self.bounds,
                "cannot merge histograms with different bucket bounds")
        with self._lock:
            for i, bucket_count in enumerate(other.counts):
                self.counts[i] += bucket_count
            self.total += other.total
            self.count += other.count

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "bounds": list(self.bounds),
                "counts": list(self.counts), "total": self.total,
                "count": self.count}

    def restore(self, data: Mapping[str, object]) -> None:
        require(tuple(float(b) for b in data["bounds"]) == self.bounds,
                "cannot restore histogram with different bucket bounds")
        self.counts = [int(c) for c in data["counts"]]
        self.total = float(data["total"])
        self.count = int(data["count"])


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named, labeled collection of counters/gauges/histograms.

    Accessor methods (:meth:`counter`, :meth:`gauge`, :meth:`histogram`)
    get-or-create, so instrumentation sites never pre-register; asking for
    an existing name with a different kind (or different gauge
    mode/histogram bounds) is an error — one name, one schema.  All
    mutation goes through a single re-entrant lock shared with the metric
    objects, so concurrent updates from the driver thread and a status
    reader are safe.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[Tuple[str, _LabelsKey], object] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # accessors (get-or-create)
    # ------------------------------------------------------------------ #
    def _get_or_create(self, name: str, labels, kind: str, factory):
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                for (other_name, _), other in self._metrics.items():
                    require(other_name != name or other.kind == kind,
                            f"metric {name!r} already registered as a "
                            f"{other.kind}, not a {kind}")
                metric = factory()
                self._metrics[key] = metric
            require(metric.kind == kind,
                    f"metric {name!r} already registered as a "
                    f"{metric.kind}, not a {kind}")
            return metric

    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None,
                help: Optional[str] = None) -> Counter:
        """The counter named ``(name, labels)``, created on first use."""
        if help is not None:
            self._help.setdefault(name, help)
        return self._get_or_create(name, labels, "counter",
                                   lambda: Counter(self._lock))

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None,
              mode: str = "last",
              help: Optional[str] = None) -> Gauge:
        """The gauge named ``(name, labels)``, created on first use."""
        if help is not None:
            self._help.setdefault(name, help)
        gauge = self._get_or_create(name, labels, "gauge",
                                    lambda: Gauge(self._lock, mode))
        require(gauge.mode == mode,
                f"gauge {name!r} already registered with merge mode "
                f"{gauge.mode!r}, not {mode!r}")
        return gauge

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  help: Optional[str] = None) -> Histogram:
        """The histogram named ``(name, labels)``, created on first use."""
        if help is not None:
            self._help.setdefault(name, help)
        histogram = self._get_or_create(name, labels, "histogram",
                                        lambda: Histogram(self._lock, bounds))
        require(histogram.bounds == tuple(float(b) for b in bounds),
                f"histogram {name!r} already registered with different "
                f"bucket bounds")
        return histogram

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def get(self, name: str, labels: Optional[Mapping[str, str]] = None):
        """The metric at ``(name, labels)``, or ``None`` if absent."""
        return self._metrics.get((name, _labels_key(labels)))

    def value(self, name: str,
              labels: Optional[Mapping[str, str]] = None,
              default: float = 0.0) -> float:
        """The scalar value of a counter/gauge (*default* if absent)."""
        metric = self.get(name, labels)
        if metric is None:
            return default
        require(metric.kind in ("counter", "gauge"),
                f"metric {name!r} is a {metric.kind}; read histograms "
                f"through .get()")
        return metric.value

    def collect(self) -> Iterator[Tuple[str, Dict[str, str], object]]:
        """Every ``(name, labels, metric)`` triple, sorted by name+labels."""
        with self._lock:
            items = sorted(self._metrics.items())
        for (name, labels_key), metric in items:
            yield name, dict(labels_key), metric

    def labeled(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], object]:
        """All label variants of one metric name (``labels_key -> metric``)."""
        with self._lock:
            return {labels_key: metric
                    for (metric_name, labels_key), metric
                    in self._metrics.items() if metric_name == name}

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------ #
    # merge (the cross-process fold)
    # ------------------------------------------------------------------ #
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry (metric-by-metric) and return self.

        Metrics absent here are created with the other side's schema;
        matching metrics combine per their kind (counters/histograms add,
        gauges follow their merge mode).
        """
        for name, labels, metric in other.collect():
            if metric.kind == "counter":
                self.counter(name, labels).merge(metric)
            elif metric.kind == "gauge":
                self.gauge(name, labels, mode=metric.mode).merge(metric)
            else:
                self.histogram(name, labels, bounds=metric.bounds).merge(metric)
        with self._lock:
            for name, text in other._help.items():
                self._help.setdefault(name, text)
        return self

    # ------------------------------------------------------------------ #
    # serialization (pipes, snapshot files, checkpoints)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (labels flattened into each entry)."""
        with self._lock:
            return {
                "metrics": [
                    {"name": name, "labels": dict(labels_key),
                     **metric.to_dict()}
                    for (name, labels_key), metric
                    in sorted(self._metrics.items())
                ],
                "help": dict(self._help),
            }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict`."""
        registry = cls()
        for entry in data.get("metrics", ()):
            kind = str(entry["kind"])
            require(kind in _METRIC_KINDS, f"unknown metric kind {kind!r}")
            name, labels = str(entry["name"]), dict(entry["labels"])
            if kind == "counter":
                metric = registry.counter(name, labels)
            elif kind == "gauge":
                metric = registry.gauge(name, labels,
                                        mode=str(entry["mode"]))
            else:
                metric = registry.histogram(name, labels,
                                            bounds=entry["bounds"])
            metric.restore(entry)
        registry._help.update({str(k): str(v)
                               for k, v in dict(data.get("help", {})).items()})
        return registry


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_exposition(registry: MetricsRegistry,
                          prefix: str = "repro_") -> str:
    """The registry in the Prometheus text exposition format (version 0.0.4).

    Counter sample names get the conventional ``_total`` suffix only if the
    metric name does not already carry it; histograms expand into
    ``_bucket{le=...}`` (cumulative), ``_sum``, and ``_count`` samples.
    """
    lines: List[str] = []
    seen_names: List[str] = []
    for name, labels, metric in registry.collect():
        full = prefix + name
        if name not in seen_names:
            seen_names.append(name)
            help_text = registry._help.get(name)
            if help_text:
                lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {metric.kind}")
        if metric.kind == "histogram":
            cumulative = 0
            for bound, bucket_count in zip(metric.bounds, metric.counts):
                cumulative += bucket_count
                le = 'le="%s"' % bound
                lines.append(f"{full}_bucket{_format_labels(labels, le)} "
                             f"{cumulative}")
            lines.append(f"{full}_bucket"
                         + _format_labels(labels, 'le="+Inf"')
                         + f" {metric.count}")
            lines.append(f"{full}_sum{_format_labels(labels)} {metric.total}")
            lines.append(f"{full}_count{_format_labels(labels)} "
                         f"{metric.count}")
        else:
            sample = full
            if metric.kind == "counter" and not sample.endswith("_total"):
                sample += "_total"
            lines.append(f"{sample}{_format_labels(labels)} {metric.value}")
    return "\n".join(lines) + "\n"
