"""Per-chunk trace spans: monotonic timing, sampled JSON-lines emission.

Every chunk that flows through the streaming stack passes the same stage
sequence — ``ingest → center → update → detect → aggregate`` — plus the
off-cadence ``recalibrate`` and ``checkpoint`` stages.  The
:class:`Tracer` wraps each stage in a :class:`Span` timed with
``time.perf_counter`` and always folds the duration into the registry's
``stage_seconds{stage=...}`` histogram; the *structured record* (a JSON
line per span, written through a pluggable sink) is emitted only for
**sampled** chunks, so tracing overhead stays bounded at any rate.

Sampling is one Bernoulli draw per chunk from a seeded
``random.Random`` — deterministic given ``(seed, chunk order)``, which is
what the determinism tests pin down.  Spans are process-local and
in-flight spans are deliberately *not* checkpointed: restore rebuilds a
fresh tracer (same seed) while the registry's counters survive.
"""

from __future__ import annotations

import io
import json
import os
import random
import threading
import time
from typing import Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry
from repro.utils.validation import require

__all__ = ["Span", "Tracer", "JsonLinesSink", "NullSink", "ListSink"]

#: The per-chunk stage sequence (off-cadence stages follow).
CHUNK_STAGES = ("ingest", "center", "update", "detect", "aggregate")
AUX_STAGES = ("recalibrate", "checkpoint")


class NullSink:
    """Discards records; the default when no trace path is configured."""

    def emit(self, record: Dict[str, object]) -> None:
        pass

    def close(self) -> None:
        pass


class ListSink:
    """Collects records in memory — for tests and interactive inspection."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Appends one compact JSON object per span to a file.

    Opened lazily (the worker that never samples a chunk never touches the
    file) and line-buffered through a single lock so concurrent spans from
    a driver thread and a checkpoint call interleave whole lines.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOWrapper] = None

    def emit(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class Span:
    """One timed stage.  Use as a context manager; re-entry is an error."""

    __slots__ = ("stage", "attrs", "_tracer", "_start", "duration_seconds")

    def __init__(self, tracer: "Tracer", stage: str,
                 attrs: Dict[str, object]) -> None:
        self.stage = stage
        self.attrs = attrs
        self._tracer = tracer
        self._start: Optional[float] = None
        self.duration_seconds: Optional[float] = None

    def __enter__(self) -> "Span":
        require(self._start is None, "span already entered")
        self._tracer._active.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_seconds = time.perf_counter() - self._start
        self._tracer._finish(self, failed=exc_type is not None)


class Tracer:
    """Per-chunk span recorder with seeded sampling.

    ``begin_chunk(chunk_index)`` draws the chunk's single sampling
    decision; subsequent ``span(stage)`` calls inherit it.  Off-cadence
    spans opened outside any chunk (``recalibrate`` during warm-up,
    ``checkpoint``) are always emitted — they are rare and the ones you
    least want to lose.
    """

    def __init__(self, sample_rate: float = 1.0, seed: int = 0,
                 registry: Optional[MetricsRegistry] = None,
                 sink=None, worker: str = "") -> None:
        require(0.0 <= sample_rate <= 1.0,
                "sample_rate must lie in [0, 1]")
        self.sample_rate = float(sample_rate)
        self.seed = int(seed)
        self.worker = str(worker)
        self.registry = registry
        self.sink = sink if sink is not None else NullSink()
        self._rng = random.Random(self.seed)
        self._active: List[Span] = []
        self._chunk_index: Optional[int] = None
        self._chunk_sampled = False
        self.n_chunks_seen = 0
        self.n_chunks_sampled = 0

    # ------------------------------------------------------------------ #
    def begin_chunk(self, chunk_index: int) -> bool:
        """Draw this chunk's sampling decision; returns it."""
        self._chunk_index = int(chunk_index)
        if self.sample_rate >= 1.0:
            self._chunk_sampled = True
        elif self.sample_rate <= 0.0:
            self._chunk_sampled = False
            self._rng.random()  # keep the stream aligned across rates
        else:
            self._chunk_sampled = self._rng.random() < self.sample_rate
        self.n_chunks_seen += 1
        if self._chunk_sampled:
            self.n_chunks_sampled += 1
        return self._chunk_sampled

    def end_chunk(self) -> None:
        self._chunk_index = None
        self._chunk_sampled = False

    @property
    def in_chunk(self) -> bool:
        """Whether a chunk trace is currently open (begin without end)."""
        return self._chunk_index is not None

    def span(self, stage: str, **attrs) -> Span:
        """A new span for *stage*; time it with ``with tracer.span(...)``."""
        return Span(self, stage, attrs)

    @property
    def active_spans(self) -> List[Span]:
        """Spans currently open (in-flight; dropped on checkpoint/restore)."""
        return list(self._active)

    # ------------------------------------------------------------------ #
    def _finish(self, span: Span, failed: bool) -> None:
        if span in self._active:
            self._active.remove(span)
        if self.registry is not None:
            self.registry.histogram(
                "stage_seconds", {"stage": span.stage},
                help="Per-stage wall time (seconds)",
            ).observe(span.duration_seconds)
        inside_chunk = self._chunk_index is not None
        emit = self._chunk_sampled if inside_chunk else True
        if emit and not isinstance(self.sink, NullSink):
            record: Dict[str, object] = {
                "stage": span.stage,
                "duration_seconds": round(span.duration_seconds, 9),
            }
            if inside_chunk:
                record["chunk"] = self._chunk_index
            if self.worker:
                record["worker"] = self.worker
            if failed:
                record["failed"] = True
            record.update(span.attrs)
            self.sink.emit(record)

    def close(self) -> None:
        self.sink.close()
