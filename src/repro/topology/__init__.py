"""Network topology substrate.

Models a backbone network as a set of Points of Presence (PoPs), backbone
routers, inter-PoP links, and attached customers/peers.  The concrete
topology used throughout the reproduction is the 11-PoP Abilene backbone
(:func:`abilene_topology`), but everything downstream (routing, traffic
generation, the detector) works with any :class:`Network`.
"""

from repro.topology.network import (
    Customer,
    Link,
    Network,
    PoP,
    Router,
)
from repro.topology.abilene import ABILENE_POP_NAMES, abilene_topology
from repro.topology.builder import TopologyBuilder, random_backbone

__all__ = [
    "PoP",
    "Router",
    "Link",
    "Customer",
    "Network",
    "ABILENE_POP_NAMES",
    "abilene_topology",
    "TopologyBuilder",
    "random_backbone",
]
