"""The Abilene (Internet2) backbone topology used in the paper.

Abilene had 11 points of presence spanning the continental US, giving the
121 OD pairs the paper analyzes.  The link set below follows the published
Abilene map of 2003/2004; IGP weights are representative (roughly
proportional to fiber distance), which is all shortest-path routing needs.

Each PoP is given a set of synthetic customers with address prefixes so the
ingress/egress resolution pipeline has something realistic to work on.  The
CALREN customer at LOSA is multihomed to SNVA — the paper's INGRESS-SHIFT
example involves exactly this customer shifting traffic from LOSA to SNVA
during the LOSA outage.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.network import Customer, Link, Network, PoP, Router

__all__ = ["ABILENE_POP_NAMES", "ABILENE_LINKS", "abilene_topology"]

#: The 11 Abilene PoP codes (as used in Abilene operational reports).
ABILENE_POP_NAMES: Tuple[str, ...] = (
    "ATLA",  # Atlanta
    "CHIN",  # Chicago
    "DNVR",  # Denver
    "HSTN",  # Houston
    "IPLS",  # Indianapolis
    "KSCY",  # Kansas City
    "LOSA",  # Los Angeles
    "NYCM",  # New York
    "SNVA",  # Sunnyvale
    "STTL",  # Seattle
    "WASH",  # Washington DC
)

_POP_CITIES: Dict[str, str] = {
    "ATLA": "Atlanta, GA",
    "CHIN": "Chicago, IL",
    "DNVR": "Denver, CO",
    "HSTN": "Houston, TX",
    "IPLS": "Indianapolis, IN",
    "KSCY": "Kansas City, MO",
    "LOSA": "Los Angeles, CA",
    "NYCM": "New York, NY",
    "SNVA": "Sunnyvale, CA",
    "STTL": "Seattle, WA",
    "WASH": "Washington, DC",
}

#: Relative traffic weight of each PoP (drives the gravity model).  The
#: values loosely track the size of the research community each PoP serves.
_POP_WEIGHTS: Dict[str, float] = {
    "ATLA": 1.1,
    "CHIN": 1.6,
    "DNVR": 0.8,
    "HSTN": 0.9,
    "IPLS": 1.0,
    "KSCY": 0.7,
    "LOSA": 1.5,
    "NYCM": 1.8,
    "SNVA": 1.4,
    "STTL": 0.9,
    "WASH": 1.6,
}

#: Bidirectional Abilene backbone adjacencies with representative IS-IS
#: weights.  Each entry is (pop_a, pop_b, igp_weight).
ABILENE_LINKS: Tuple[Tuple[str, str, float], ...] = (
    ("STTL", "SNVA", 861.0),
    ("STTL", "DNVR", 1295.0),
    ("SNVA", "LOSA", 366.0),
    ("SNVA", "DNVR", 1893.0),
    ("LOSA", "HSTN", 1705.0),
    ("DNVR", "KSCY", 639.0),
    ("KSCY", "HSTN", 902.0),
    ("KSCY", "IPLS", 548.0),
    ("HSTN", "ATLA", 1045.0),
    ("IPLS", "CHIN", 260.0),
    ("IPLS", "ATLA", 700.0),
    ("CHIN", "NYCM", 1000.0),
    ("ATLA", "WASH", 740.0),
    ("NYCM", "WASH", 277.0),
)

#: Synthetic customers attached at each PoP: (customer name, pop, prefix
#: count, weight, multihomed PoPs).  Prefixes themselves are assigned
#: deterministically below from a per-PoP /12 aggregate.
_CUSTOMER_SPECS: Tuple[Tuple[str, str, int, float, Tuple[str, ...]], ...] = (
    ("GATECH", "ATLA", 3, 1.0, ()),
    ("UFL", "ATLA", 2, 0.8, ()),
    ("UCHICAGO", "CHIN", 3, 1.2, ()),
    ("WISCNET", "CHIN", 3, 1.0, ()),
    ("MERIT", "CHIN", 2, 0.9, ()),
    ("FRGP", "DNVR", 3, 0.9, ()),
    ("UTAH", "DNVR", 2, 0.6, ()),
    ("LEARN", "HSTN", 3, 0.9, ()),
    ("IU", "IPLS", 3, 1.1, ()),
    ("PURDUE", "IPLS", 2, 0.8, ()),
    ("GPN", "KSCY", 3, 0.7, ()),
    ("CALREN", "LOSA", 4, 1.4, ("SNVA",)),
    ("USC", "LOSA", 2, 0.9, ()),
    ("NYSERNET", "NYCM", 3, 1.3, ()),
    ("MAGPI", "NYCM", 2, 1.0, ()),
    ("CENIC", "SNVA", 3, 1.2, ()),
    ("STANFORD", "SNVA", 2, 1.0, ()),
    ("PNWGP", "STTL", 3, 0.9, ()),
    ("MAX", "WASH", 3, 1.2, ()),
    ("NIH", "WASH", 2, 1.1, ()),
    ("GEANT-PEER", "NYCM", 3, 1.2, ()),
    ("APAN-PEER", "LOSA", 2, 0.8, ()),
)


def _customer_prefixes(pop_index: int, customer_index: int, count: int) -> Tuple[str, ...]:
    """Deterministic /16 prefixes for a customer.

    Each PoP owns the 10.<16*pop_index>.0.0/12 aggregate; customers carve
    successive /16s out of it.  Peers additionally receive prefixes from the
    198.<x>.0.0 space so that the egress-resolution path exercises
    non-RFC1918 lookups too.
    """
    base_second_octet = (pop_index * 16) % 240
    prefixes: List[str] = []
    for i in range(count):
        second = base_second_octet + (customer_index * count + i) % 16
        prefixes.append(f"10.{second}.0.0/16")
    return tuple(prefixes)


def abilene_topology(customers_per_pop: int | None = None) -> Network:
    """Build the 11-PoP Abilene network used throughout the reproduction.

    Parameters
    ----------
    customers_per_pop:
        When given, keep only the first *customers_per_pop* customers at each
        PoP (useful for small, fast test scenarios).  ``None`` keeps the full
        customer set.
    """
    pops = [
        PoP(name=name, city=_POP_CITIES[name], region_weight=_POP_WEIGHTS[name])
        for name in ABILENE_POP_NAMES
    ]
    routers = [Router(name=f"{name}-rtr", pop=name) for name in ABILENE_POP_NAMES]

    links: List[Link] = []
    for pop_a, pop_b, weight in ABILENE_LINKS:
        links.append(Link(source=f"{pop_a}-rtr", target=f"{pop_b}-rtr", igp_weight=weight))
        links.append(Link(source=f"{pop_b}-rtr", target=f"{pop_a}-rtr", igp_weight=weight))

    customers: List[Customer] = []
    per_pop_count: Dict[str, int] = {name: 0 for name in ABILENE_POP_NAMES}
    for spec_index, (name, pop, prefix_count, weight, multihomed) in enumerate(_CUSTOMER_SPECS):
        if customers_per_pop is not None and per_pop_count[pop] >= customers_per_pop:
            continue
        per_pop_count[pop] += 1
        pop_index = ABILENE_POP_NAMES.index(pop)
        prefixes = _customer_prefixes(pop_index, spec_index, prefix_count)
        customers.append(
            Customer(name=name, pop=pop, prefixes=prefixes, weight=weight,
                     multihomed_pops=multihomed)
        )

    return Network(pops=pops, routers=routers, links=links,
                   customers=customers, name="abilene")
