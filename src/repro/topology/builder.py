"""Programmatic topology construction.

:class:`TopologyBuilder` offers a fluent interface for assembling arbitrary
backbones (used heavily in tests), and :func:`random_backbone` generates
random connected PoP-level topologies so that property-based tests can check
that nothing in the pipeline is Abilene-specific.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.topology.network import Customer, Link, Network, PoP, Router
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.validation import require

__all__ = ["TopologyBuilder", "random_backbone"]


class TopologyBuilder:
    """Fluent builder for :class:`~repro.topology.network.Network` objects.

    Example
    -------
    >>> net = (TopologyBuilder("toy")
    ...        .add_pop("A").add_pop("B")
    ...        .connect("A", "B", weight=10)
    ...        .add_customer("cust-a", "A", prefixes=("10.0.0.0/16",))
    ...        .build())
    >>> net.n_pops
    2
    """

    def __init__(self, name: str = "backbone") -> None:
        self._name = name
        self._pops: List[PoP] = []
        self._links: List[Link] = []
        self._customers: List[Customer] = []

    def add_pop(self, name: str, city: str = "", weight: float = 1.0) -> "TopologyBuilder":
        """Add a PoP (and its default backbone router)."""
        self._pops.append(PoP(name=name, city=city, region_weight=weight))
        return self

    def connect(self, pop_a: str, pop_b: str, weight: float = 1.0,
                capacity_bps: float = 10e9, bidirectional: bool = True) -> "TopologyBuilder":
        """Add a backbone link between the default routers of two PoPs."""
        src, dst = f"{pop_a}-rtr", f"{pop_b}-rtr"
        self._links.append(Link(source=src, target=dst, igp_weight=weight,
                                capacity_bps=capacity_bps))
        if bidirectional:
            self._links.append(Link(source=dst, target=src, igp_weight=weight,
                                    capacity_bps=capacity_bps))
        return self

    def add_customer(self, name: str, pop: str, prefixes: Sequence[str],
                     weight: float = 1.0,
                     multihomed_pops: Sequence[str] = ()) -> "TopologyBuilder":
        """Attach a customer with the given prefixes at *pop*."""
        self._customers.append(
            Customer(name=name, pop=pop, prefixes=tuple(prefixes), weight=weight,
                     multihomed_pops=tuple(multihomed_pops))
        )
        return self

    def build(self) -> Network:
        """Assemble and validate the network."""
        require(len(self._pops) >= 2, "a network needs at least two PoPs")
        routers = [Router(name=f"{p.name}-rtr", pop=p.name) for p in self._pops]
        return Network(pops=self._pops, routers=routers, links=self._links,
                       customers=self._customers, name=self._name)


def random_backbone(
    n_pops: int,
    seed: RandomState = None,
    extra_edge_probability: float = 0.25,
    customers_per_pop: int = 2,
) -> Network:
    """Generate a random connected backbone with *n_pops* PoPs.

    The topology is a random spanning tree plus a sprinkling of extra edges,
    which guarantees connectivity while producing varied path structure.
    Each PoP gets *customers_per_pop* customers with one /16 prefix each.
    """
    require(n_pops >= 2, "n_pops must be >= 2")
    rng = spawn_rng(seed, stream="random-backbone")

    names = [f"POP{i:02d}" for i in range(n_pops)]
    builder = TopologyBuilder(name=f"random-{n_pops}")
    for name in names:
        builder.add_pop(name, weight=float(rng.uniform(0.5, 2.0)))

    # Random spanning tree: connect node i to a random earlier node.
    for i in range(1, n_pops):
        j = int(rng.integers(0, i))
        builder.connect(names[i], names[j], weight=float(rng.uniform(100, 2000)))

    # Extra edges.
    for i in range(n_pops):
        for j in range(i + 1, n_pops):
            if rng.random() < extra_edge_probability:
                builder.connect(names[i], names[j], weight=float(rng.uniform(100, 2000)))

    prefix_counter = 0
    for pop_index, name in enumerate(names):
        for c in range(customers_per_pop):
            prefix = f"10.{prefix_counter % 256}.0.0/16"
            prefix_counter += 1
            builder.add_customer(f"{name}-cust{c}", name, prefixes=(prefix,),
                                 weight=float(rng.uniform(0.5, 1.5)))

    return builder.build()
